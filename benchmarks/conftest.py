"""Shared fixtures for the benchmark harness.

Each paper artifact (table/figure) has one module.  Benchmarks are
generated once per session and shared; every analysis cell runs under
``benchmark.pedantic(rounds=1)`` because the workloads are deterministic
(step counts are exact) and wall-clock variance is reported alongside.

Set ``REPRO_BENCH_SCALE`` (e.g. ``0.5``) to shrink the suite for smoke
runs; the shipped EXPERIMENTS.md numbers use the default scale of 1.0.
"""

import os

import pytest

from repro.bench.suite import BENCHMARK_NAMES, load_benchmark

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: The three programs the paper uses for Figures 4 and 5 (Section 5.3).
FIGURE_BENCHMARKS = ("soot-c", "bloat", "jython")


@pytest.fixture(scope="session")
def instances():
    """All nine benchmark instances, generated once."""
    return {name: load_benchmark(name, scale=SCALE) for name in BENCHMARK_NAMES}


@pytest.fixture(scope="session")
def figure_instances(instances):
    return {name: instances[name] for name in FIGURE_BENCHMARKS}


def perf_fields(batch_stats):
    """Both measurement dimensions for one batch, BENCH-row ready.

    Steps are deterministic (the comparison dimension CI can gate on);
    wall-clock varies by host but is recorded alongside so committed
    BENCH files carry the throughput trajectory too — the
    ``repro-perf`` harness (``BENCH_hotpath.json``) owns the
    fast-vs-reference comparison itself.
    """
    return {
        "steps": batch_stats.steps,
        "time_sec": round(batch_stats.time_sec, 6),
        "steps_per_sec": (
            round(batch_stats.steps / batch_stats.time_sec)
            if batch_stats.time_sec
            else None
        ),
    }
