"""Warm-start persistence — cold vs. snapshot-replayed engines.

For each Figure-4 benchmark and client, the paper-protocol workload
(published query stream, no dedup/reorder) runs twice:

* **cold** — a fresh DYNSUM engine, empty summary store (the baseline
  every prior benchmark measures);
* **warm** — the same engine configuration restarted from the cold
  run's saved :class:`~repro.api.snapshot.SummarySnapshot`
  (``EnginePolicy(warm_start=path)``), modelling a host restart or the
  next CI run.

Asserted per cell: element-wise identical results (summaries are pure
memos — replaying them moves cost, never answers) and **strictly
fewer** traversal steps.  Reported per cell: deterministic step counts,
wall time for both modes, the snapshot's entry/fact/byte size, and the
warm run's hit rate.

Set ``REPRO_WRITE_BASELINE=1`` to (re)write ``BENCH_persist.json`` next
to this file.  Wall-clock fields vary by host; the committed baseline
records the step comparison and snapshot shape, not timings.
"""

import json
import os
import pathlib
from dataclasses import replace

import pytest

from repro.bench.runner import bench_engine_policy
from repro.clients import ALL_CLIENTS
from repro.engine import PointsToEngine

from conftest import FIGURE_BENCHMARKS

BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_persist.json"

_ROWS = []


@pytest.mark.parametrize("client_cls", ALL_CLIENTS, ids=lambda c: c.name)
@pytest.mark.parametrize("name", FIGURE_BENCHMARKS)
def test_warm_start_steps(benchmark, figure_instances, tmp_path, name, client_cls):
    instance = figure_instances[name]
    client = client_cls(instance.pag)
    n_queries = len(client.queries())
    policy = bench_engine_policy()

    cold = PointsToEngine(instance.pag, policy)
    _cold_verdicts, cold_batch = cold.run_client(client, dedupe=False, reorder=False)
    path = tmp_path / f"{name}-{client.name}.json"
    snapshot = cold.save_cache(path)
    snapshot_bytes = path.stat().st_size

    def warm_run():
        engine = PointsToEngine(
            instance.pag, replace(policy, warm_start=str(path))
        )
        return engine, engine.run_client(client, dedupe=False, reorder=False)

    warm_engine, (warm_verdicts, warm_batch) = benchmark.pedantic(
        warm_run, rounds=1, iterations=1
    )

    # Round-trip fidelity: answers and verdicts are element-wise
    # identical, and the warm engine did strictly less traversal work.
    assert warm_engine.warm_loaded == len(snapshot.entries)
    for cold_result, warm_result in zip(cold_batch.results, warm_batch.results):
        assert warm_result.pairs == cold_result.pairs
        assert warm_result.complete == cold_result.complete
    assert warm_batch.stats.steps < cold_batch.stats.steps

    _ROWS.append(
        {
            "benchmark": name,
            "client": client.name,
            "n_queries": n_queries,
            "cold": {
                "steps": cold_batch.stats.steps,
                "time_sec": cold_batch.stats.time_sec,
                "hit_rate": round(cold_batch.stats.hit_rate, 4),
            },
            "warm": {
                "steps": warm_batch.stats.steps,
                "time_sec": warm_batch.stats.time_sec,
                "hit_rate": round(warm_batch.stats.hit_rate, 4),
            },
            "step_ratio": round(
                warm_batch.stats.steps / cold_batch.stats.steps, 4
            ),
            "snapshot": {
                "entries": len(snapshot.entries),
                "facts": snapshot.stats.facts,
                "bytes": snapshot_bytes,
            },
        }
    )


def test_print_warm_start(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("series did not run")
    header = (
        f"{'bench/client':22s} {'queries':>7s} {'cold steps':>10s} "
        f"{'warm steps':>10s} {'ratio':>6s} {'snap entries':>12s} "
        f"{'snap bytes':>10s}"
    )
    print("\n\nWarm-start persistence — cold vs. snapshot-replayed engines")
    print(header)
    print("-" * len(header))
    for row in _ROWS:
        print(
            f"{row['benchmark'] + '/' + row['client']:22s} "
            f"{row['n_queries']:>7d} {row['cold']['steps']:>10d} "
            f"{row['warm']['steps']:>10d} {row['step_ratio']:>6.2f} "
            f"{row['snapshot']['entries']:>12d} {row['snapshot']['bytes']:>10d}"
        )
    if os.environ.get("REPRO_WRITE_BASELINE"):
        payload = {
            "protocol": "bench_warm_start",
            "scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
            "rows": _ROWS,
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote baseline {BASELINE_PATH}")
