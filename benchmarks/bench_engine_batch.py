"""Engine batching — what the scheduler buys over one-at-a-time queries.

For each Figure-4 benchmark and client, the same workload runs twice
against a fresh DYNSUM engine:

* **one-at-a-time** — ``engine.query(spec)`` per query, in the client's
  published order (the cache still persists across queries, as in the
  paper's protocol);
* **engine-batched** — one ``engine.query_batch`` call with dedup and
  warmth reordering enabled.

Reported per cell: deterministic traversal steps, wall time, queries
executed vs. requested (dedup), and the summary-cache hit rate.  A third
column replays the batched run under an LRU cache capped at 64 entries —
the long-running-host configuration — to show bounded memory costs steps
but keeps answers (asserted) identical.

Set ``REPRO_WRITE_BASELINE=1`` to (re)write ``BENCH_engine.json`` next to
this file; the committed baseline pins the deterministic fields (steps,
executed counts, hit rates) so regressions in the scheduler or cache are
visible in review.
"""

import json
import os
import pathlib

import pytest

from repro.bench.runner import bench_engine_policy
from repro.clients import ALL_CLIENTS
from repro.engine import CachePolicy, PointsToEngine

from conftest import FIGURE_BENCHMARKS

BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_engine.json"
BOUNDED_CAP = 64

_ROWS = []


def _run_one_at_a_time(instance, client):
    engine = PointsToEngine(instance.pag, bench_engine_policy())
    specs = client.specs()
    for spec in specs:
        engine.query(spec)
    stats = engine.stats()
    return {
        "steps": stats.steps,
        "executed": stats.executed,
        "hit_rate": round(stats.cache.hit_rate, 4),
    }


def _run_batched(instance, client, cache=None):
    engine = PointsToEngine(instance.pag, bench_engine_policy(cache=cache))
    _verdicts, batch = engine.run_client(client, dedupe=True, reorder=True)
    results = batch.results
    return {
        "steps": batch.stats.steps,
        "executed": batch.stats.n_unique,
        "hit_rate": round(batch.stats.hit_rate, 4),
        "time_sec": batch.stats.time_sec,
        "evictions": batch.stats.evictions,
    }, results


@pytest.mark.parametrize("client_cls", ALL_CLIENTS, ids=lambda c: c.name)
@pytest.mark.parametrize("name", FIGURE_BENCHMARKS)
def test_engine_batch_throughput(benchmark, figure_instances, name, client_cls):
    instance = figure_instances[name]
    client = client_cls(instance.pag)
    n_queries = len(client.queries())

    sequential = _run_one_at_a_time(instance, client)
    batched, batched_results = _run_batched(instance, client)
    bounded, bounded_results = _run_batched(
        instance, client, CachePolicy(max_entries=BOUNDED_CAP)
    )

    # Bounded memory must never change an answer.
    for capped, full in zip(bounded_results, batched_results):
        assert capped.pairs == full.pairs

    # Dedup + reordering must not cost steps over the sequential order.
    assert batched["steps"] <= sequential["steps"]
    assert batched["executed"] <= n_queries

    benchmark.pedantic(
        lambda: _run_batched(instance, client), rounds=1, iterations=1
    )
    _ROWS.append(
        {
            "benchmark": name,
            "client": client.name,
            "n_queries": n_queries,
            "sequential": sequential,
            "batched": batched,
            "bounded": bounded,
        }
    )


def test_print_engine_batch(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("series did not run")
    header = (
        f"{'bench/client':22s} {'queries':>7s} {'seq steps':>10s} "
        f"{'batch steps':>11s} {'executed':>8s} {'hit seq':>8s} "
        f"{'hit batch':>9s} {'hit capped':>10s}"
    )
    print("\n\nEngine batching — one-at-a-time vs. batched (DYNSUM)")
    print(header)
    print("-" * len(header))
    for row in _ROWS:
        print(
            f"{row['benchmark'] + '/' + row['client']:22s} "
            f"{row['n_queries']:>7d} {row['sequential']['steps']:>10d} "
            f"{row['batched']['steps']:>11d} {row['batched']['executed']:>8d} "
            f"{row['sequential']['hit_rate']:>8.2%} "
            f"{row['batched']['hit_rate']:>9.2%} "
            f"{row['bounded']['hit_rate']:>10.2%}"
        )
    if os.environ.get("REPRO_WRITE_BASELINE"):
        payload = {
            "protocol": "bench_engine_batch",
            "scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
            "bounded_cap": BOUNDED_CAP,
            "rows": _ROWS,
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote baseline {BASELINE_PATH}")
