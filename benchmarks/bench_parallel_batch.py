"""Parallel batch execution — sequential vs. thread-pooled, per shard.

For each Figure-4 benchmark and client, the same workload runs through
fresh DYNSUM engines three ways:

* **sequential** — ``parallelism=1`` over an *unsharded* cache (the
  PR-1 configuration, the reference);
* **sequential/sharded** — ``parallelism=1`` over the 8-shard store, to
  isolate what partitioning alone costs (per-shard stats recorded here
  are deterministic, thanks to the CRC-32 method partition);
* **parallel** — ``parallelism=4`` over the same 8-shard store.

Every run is asserted element-wise identical to the reference — answers
are memo-pure, parallelism is only a cost lever — and the aggregated
shard stats must reconcile (hits + misses == probes; entries and facts
equal the shard sums).  Reported per cell: wall time for each mode,
deterministic steps for the sequential modes (parallel steps can differ:
two workers may both miss one summary and compute it twice), and the
per-shard entry/fact distribution.

Set ``REPRO_WRITE_BASELINE=1`` to (re)write ``BENCH_parallel.json`` next
to this file.  Wall-clock fields vary by host; the committed baseline
exists to record the sequential-vs-parallel comparison and the
deterministic shard distribution, not to pin timings.
"""

import json
import os
import pathlib

import pytest

from repro.bench.runner import bench_engine_policy
from repro.clients import ALL_CLIENTS
from repro.engine import CachePolicy, EnginePolicy, PointsToEngine

from conftest import FIGURE_BENCHMARKS

BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_parallel.json"
WORKERS = 4
SHARDS = 8

_ROWS = []


def _policy(parallelism, shards=None):
    base = bench_engine_policy()
    return EnginePolicy(
        analysis=base.analysis,
        max_field_depth=base.max_field_depth,
        cache=CachePolicy(shards=shards),
        parallelism=parallelism,
    )


def _run(instance, client, parallelism, shards=None):
    engine = PointsToEngine(instance.pag, _policy(parallelism, shards))
    _verdicts, batch = engine.run_client(client, dedupe=True, reorder=True)
    return engine, batch


def _shard_cells(engine):
    return [
        {
            "entries": snap.entries,
            "facts": snap.facts,
            "hits": snap.hits,
            "misses": snap.misses,
            "evictions": snap.evictions,
        }
        for snap in engine.cache.shard_snapshots()
    ]


@pytest.mark.parametrize("client_cls", ALL_CLIENTS, ids=lambda c: c.name)
@pytest.mark.parametrize("name", FIGURE_BENCHMARKS)
def test_parallel_batch_throughput(benchmark, figure_instances, name, client_cls):
    instance = figure_instances[name]
    client = client_cls(instance.pag)
    n_queries = len(client.queries())

    _seq_engine, sequential = _run(instance, client, parallelism=1)
    sharded_engine, sharded = _run(instance, client, parallelism=1, shards=SHARDS)
    parallel_engine, parallel = _run(instance, client, parallelism=WORKERS, shards=SHARDS)

    # Parallelism and sharding never change an answer.
    for reference, a, b in zip(sequential.results, sharded.results, parallel.results):
        assert a.pairs == reference.pairs
        assert b.pairs == reference.pairs

    # Sequential execution over shards is step-identical to unsharded.
    assert sharded.stats.steps == sequential.stats.steps
    assert parallel.stats.parallelism == WORKERS

    # Aggregated shard stats reconcile exactly, even after parallel
    # runs: the batch's probe deltas match the shard-recorded totals,
    # and the aggregate snapshot equals the shard sums.
    for engine, batch in ((sharded_engine, sharded), (parallel_engine, parallel)):
        snap = engine.cache.stats_snapshot()
        shards = engine.cache.shard_snapshots()
        assert batch.stats.cache_hits + batch.stats.cache_misses == snap.probes
        assert snap.hits == sum(s.hits for s in shards)
        assert snap.misses == sum(s.misses for s in shards)
        assert sum(s.entries for s in shards) == len(engine.cache)
        assert sum(s.facts for s in shards) == engine.cache.total_facts()
        assert batch.stats.summaries_after == len(engine.cache)

    benchmark.pedantic(
        lambda: _run(instance, client, parallelism=WORKERS, shards=SHARDS),
        rounds=1,
        iterations=1,
    )
    _ROWS.append(
        {
            "benchmark": name,
            "client": client.name,
            "n_queries": n_queries,
            "sequential": {
                "steps": sequential.stats.steps,
                "time_sec": sequential.stats.time_sec,
                "hit_rate": round(sequential.stats.hit_rate, 4),
            },
            "parallel": {
                "workers": WORKERS,
                "shards": SHARDS,
                "time_sec": parallel.stats.time_sec,
                "hit_rate": round(parallel.stats.hit_rate, 4),
            },
            # Deterministic (sequential run, CRC-32 partition): the
            # per-shard entry/fact distribution of the workload.
            "shard_distribution": _shard_cells(sharded_engine),
        }
    )


def test_print_parallel_batch(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("series did not run")
    header = (
        f"{'bench/client':22s} {'queries':>7s} {'seq steps':>10s} "
        f"{'seq time':>9s} {'par time':>9s} {'hit seq':>8s} {'hit par':>8s}"
    )
    print(f"\n\nParallel batches — sequential vs. {WORKERS} workers / {SHARDS} shards")
    print(header)
    print("-" * len(header))
    for row in _ROWS:
        print(
            f"{row['benchmark'] + '/' + row['client']:22s} "
            f"{row['n_queries']:>7d} {row['sequential']['steps']:>10d} "
            f"{row['sequential']['time_sec']:>8.4f}s "
            f"{row['parallel']['time_sec']:>8.4f}s "
            f"{row['sequential']['hit_rate']:>8.2%} "
            f"{row['parallel']['hit_rate']:>8.2%}"
        )
    if os.environ.get("REPRO_WRITE_BASELINE"):
        payload = {
            "protocol": "bench_parallel_batch",
            "scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
            "workers": WORKERS,
            "shards": SHARDS,
            "rows": _ROWS,
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote baseline {BASELINE_PATH}")
