"""Table 4 — analysis cost of NOREFINE / REFINEPTS / DYNSUM per client.

The full grid: 9 benchmarks x 3 clients x 3 analyses.  Each cell issues
every query of the client through a fresh analysis instance, exactly as
the paper measures a batch run.  Wall-clock is what pytest-benchmark
records; the printed table additionally reports the deterministic
traversal-step counts, which are the numbers EXPERIMENTS.md compares
against the paper (shape, not absolute seconds).
"""

import pytest

from repro import DynSum, NoRefine, RefinePts
from repro.bench.runner import bench_analysis_config, run_client
from repro.bench.suite import BENCHMARK_NAMES
from repro.bench.tables import format_speedup_summary, format_table4
from repro.clients import ALL_CLIENTS

ANALYSES = (NoRefine, RefinePts, DynSum)
ANALYSIS_NAMES = tuple(cls.name for cls in ANALYSES)
CLIENT_NAMES = tuple(cls.name for cls in ALL_CLIENTS)

_RESULTS = []


@pytest.mark.parametrize("analysis_cls", ANALYSES, ids=lambda c: c.name)
@pytest.mark.parametrize("client_cls", ALL_CLIENTS, ids=lambda c: c.name)
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_cell(benchmark, instances, name, client_cls, analysis_cls):
    instance = instances[name]

    def run():
        analysis = analysis_cls(instance.pag, bench_analysis_config())
        return run_client(instance, client_cls, analysis)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.append(result)
    assert result.n_queries > 0


def test_print_table4(benchmark, instances):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("cells did not run")
    print("\n\nTable 4 — analysis steps (deterministic)")
    print(
        format_table4(
            _RESULTS, BENCHMARK_NAMES, CLIENT_NAMES, ANALYSIS_NAMES, use_steps=True
        )
    )
    print("\nTable 4 — wall-clock seconds")
    print(
        format_table4(
            _RESULTS, BENCHMARK_NAMES, CLIENT_NAMES, ANALYSIS_NAMES, use_steps=False
        )
    )
    print("\nHeadline speedups (paper: DYNSUM vs REFINEPTS = 1.95x / 2.28x / 1.37x)")
    print(
        format_speedup_summary(
            _RESULTS, "REFINEPTS", "DYNSUM", CLIENT_NAMES, BENCHMARK_NAMES
        )
    )
    print(
        format_speedup_summary(
            _RESULTS, "NOREFINE", "DYNSUM", CLIENT_NAMES, BENCHMARK_NAMES
        )
    )

    by_key = {(r.client, r.analysis, r.benchmark): r for r in _RESULTS}

    def total(client, analysis):
        return sum(
            by_key[(client, analysis, b)].steps
            for b in BENCHMARK_NAMES
            if (client, analysis, b) in by_key
        )

    # The paper's directional claims, on aggregate step counts:
    for client in CLIENT_NAMES:
        assert total(client, "DYNSUM") <= total(client, "NOREFINE"), client
    # DYNSUM beats REFINEPTS overall on the cast/factory clients.
    assert total("SafeCast", "DYNSUM") < total("SafeCast", "REFINEPTS")
    assert total("FactoryM", "DYNSUM") < total("FactoryM", "REFINEPTS")
