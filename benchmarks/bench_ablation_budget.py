"""Ablation — budget sensitivity (Section 5.2's 75,000-step cap).

Sweeps the per-query budget and reports, per analysis, how many queries
go unanswered ("unknown") and the total steps spent.  The paper claim
under test: a lower budget hurts the unsummarised analyses first —
DYNSUM answers at least as many queries as NOREFINE at every budget,
because summaries let it cover the same paths in fewer steps.
"""

import pytest

from repro import AnalysisConfig, DynSum, NoRefine, RefinePts
from repro.bench.runner import BENCH_FIELD_DEPTH_LIMIT, run_client
from repro.clients import NullDerefClient

BUDGETS = (500, 2_000, 75_000)

_ROWS = []


@pytest.mark.parametrize("budget", BUDGETS)
@pytest.mark.parametrize(
    "analysis_cls", (NoRefine, RefinePts, DynSum), ids=lambda c: c.name
)
def test_budget_cell(benchmark, instances, analysis_cls, budget):
    instance = instances["soot-c"]
    config = AnalysisConfig(budget=budget, max_field_depth=BENCH_FIELD_DEPTH_LIMIT)

    def run():
        return run_client(instance, NullDerefClient, analysis_cls(instance.pag, config))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append((budget, result.analysis, result.unknown, result.steps))


def test_print_and_check(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("cells did not run")
    print("\n\nAblation — budget sweep (soot-c / NullDeref)")
    print(f"  {'budget':>8s}  {'analysis':12s} {'unknown':>8s} {'steps':>10s}")
    table = {}
    for budget, analysis, unknown, steps in _ROWS:
        table[(budget, analysis)] = unknown
        print(f"  {budget:>8d}  {analysis:12s} {unknown:>8d} {steps:>10d}")
    for budget in BUDGETS:
        assert table[(budget, "DYNSUM")] <= table[(budget, "NOREFINE")]
    # Unknowns shrink (weakly) as the budget grows.
    for analysis in ("NOREFINE", "REFINEPTS", "DYNSUM"):
        unknowns = [table[(b, analysis)] for b in BUDGETS]
        assert unknowns == sorted(unknowns, reverse=True)
