"""Table 3 — benchmark statistics.

Per program: reachable methods, node counts by kind (O/V/G), edge counts
by kind, the locality metric, and the number of queries each client
issues.  The benchmark times the full frontend pipeline (generate ->
Andersen -> PAG), i.e. everything Table 3 is computed from.
"""

import pytest

from repro.bench.suite import BENCHMARK_NAMES, load_benchmark
from repro.bench.tables import format_table3
from repro.clients import ALL_CLIENTS

from conftest import SCALE


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_frontend_pipeline(benchmark, name):
    """Time generation + call graph + PAG for each program."""
    instance = benchmark.pedantic(
        load_benchmark, args=(name,), kwargs={"scale": SCALE}, rounds=1, iterations=1
    )
    assert instance.pag.node_counts()["V"] > 0


def test_print_table3(benchmark, instances):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    stats_rows = [instances[name].stats for name in BENCHMARK_NAMES]
    query_counts = {}
    for name in BENCHMARK_NAMES:
        pag = instances[name].pag
        query_counts[name] = {
            client_cls.name: len(client_cls(pag).queries())
            for client_cls in ALL_CLIENTS
        }
    print("\n\nTable 3 — benchmark statistics")
    print(format_table3(stats_rows, query_counts))

    # Shape assertions mirroring the paper's Table 3:
    for name in BENCHMARK_NAMES:
        stats = instances[name].stats
        # local edges dominate (the basis of DYNSUM's optimisation)
        assert stats.locality > 0.55, name
        # every client has work to do
        assert all(count > 0 for count in query_counts[name].values()), name
        # NullDeref issues the most queries, FactoryM the fewest
        counts = query_counts[name]
        assert counts["NullDeref"] >= counts["SafeCast"] >= counts["FactoryM"], name
