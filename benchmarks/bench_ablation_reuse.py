"""Ablation — where does DYNSUM's win come from?

Three configurations isolate the design choices DESIGN.md calls out:

* ``dynsum``       — the full analysis, one cache across all queries;
* ``per-query``    — the cache is cleared before every query: summaries
                     still batch local edges (intra-query reuse across
                     contexts) but nothing survives between queries;
* ``no-summaries`` — NOREFINE, i.e. no batching of local edges at all.

The paper's claim that *cross-query, cross-context* reuse is the point
(Section 4's motivating discussion) translates to:
steps(dynsum) <= steps(per-query) <= steps(no-summaries) on aggregate.
"""

import pytest

from repro import DynSum, NoRefine
from repro.bench.runner import bench_analysis_config, run_client
from repro.clients import NullDerefClient, SafeCastClient

from conftest import FIGURE_BENCHMARKS

_ROWS = []


class _PerQueryDynSum(DynSum):
    """DYNSUM with the cache dropped before every query."""

    name = "DYNSUM/per-query"

    def _run_query(self, var, context, client):
        self.cache.clear()
        return super()._run_query(var, context, client)


CONFIGS = (
    ("dynsum", DynSum),
    ("per-query", _PerQueryDynSum),
    ("no-summaries", NoRefine),
)


@pytest.mark.parametrize("label,analysis_cls", CONFIGS, ids=lambda x: str(x))
@pytest.mark.parametrize("client_cls", (SafeCastClient, NullDerefClient), ids=lambda c: c.name)
@pytest.mark.parametrize("name", FIGURE_BENCHMARKS)
def test_reuse_ablation(benchmark, figure_instances, name, client_cls, label, analysis_cls):
    instance = figure_instances[name]

    def run():
        analysis = analysis_cls(instance.pag, bench_analysis_config())
        return run_client(instance, client_cls, analysis)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append((name, client_cls.name, label, result.steps))


def test_print_and_check(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("cells did not run")
    by_label = {}
    print("\n\nAblation — summary reuse (total steps)")
    for name, client, label, steps in _ROWS:
        by_label.setdefault(label, 0)
        by_label[label] += steps
        print(f"  {name:8s} {client:10s} {label:14s} {steps}")
    print(f"  totals: {by_label}")
    assert by_label["dynsum"] <= by_label["per-query"]
