"""Shared cache service — multi-process warm-client step reduction.

The deployment protocol of the process-level cache service: for each
Figure-4 benchmark, a 2-shard server cluster is spawned (real
processes, via ``python -m repro.cacheserver --serve-shard``) and two
analysis *processes* replay the SafeCast paper-protocol workload
(``python -m repro.cacheserver.workload``) against it:

* **cold** — first client: empty service, every summary computed
  locally and published (write-through);
* **warm** — second client: fresh process, empty local tier, warm
  service — summaries arrive over the socket instead of being
  recomputed.

Asserted per benchmark: all clients' answers are element-wise identical
to a single-process engine's (the canonical-results digest), the warm
client saw zero remote errors, and the warm client completed in
**< 75 %** of the cold client's steps — the acceptance bar of the
shared-cache milestone.  Reported: steps, step ratio, remote hit/store
traffic, and wall time per client.

A second protocol sweeps the **serving tier**: a warm cluster serves
1/4/16 concurrent pipelined clients, once on the default asyncio tier
(one event loop per shard) and once thread-per-connection
(``--threaded``), recording wall-clock and round trips per client
count — the async tier must cost no more than the threaded one at a
single client while multiplexing 16 from one loop.

Set ``REPRO_WRITE_BASELINE=1`` to (re)write ``BENCH_shared.json``.
Wall-clock fields vary by host; the committed baseline records the
deterministic step comparison and service traffic, not timings.
"""

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.bench.runner import bench_engine_policy
from repro.bench.suite import load_benchmark
from repro.cacheserver.server import CacheCluster
from repro.cacheserver.workload import canonical_results, results_digest
from repro.clients import SafeCastClient
from repro.engine import PointsToEngine

from conftest import FIGURE_BENCHMARKS, SCALE, perf_fields

BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_shared.json"

_ROWS = []


def _run_client_process(addresses, name, pipeline=None):
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "repro.cacheserver.workload",
        "--benchmark", name, "--scale", str(SCALE),
        "--client", "SafeCast", "--remote", ",".join(addresses),
    ]
    # None rides the default (pipelined since protocol 1.4); the cold
    # and warm rows pin the per-lookup regime explicitly so the series
    # keeps measuring what it always measured.
    if pipeline is True:
        command.append("--pipeline")
    elif pipeline is False:
        command.append("--no-pipeline")
    started = time.perf_counter()
    proc = subprocess.run(
        command, capture_output=True, text=True, env=env, timeout=580,
    )
    elapsed = time.perf_counter() - started
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    report["time_sec"] = elapsed
    return report


@pytest.mark.parametrize("name", FIGURE_BENCHMARKS)
def test_shared_cache_warm_client(benchmark, figure_instances, name):
    instance = figure_instances[name]
    client = SafeCastClient(instance.pag)
    engine = PointsToEngine(instance.pag, bench_engine_policy())
    _verdicts, batch = client.run_engine(engine, dedupe=False, reorder=False)
    single_digest = results_digest(canonical_results(batch.results))

    def deployment():
        with CacheCluster.spawn(shards=2) as cluster:
            cold = _run_client_process(cluster.addresses, name, pipeline=False)
            warm = _run_client_process(cluster.addresses, name, pipeline=False)
            piped = _run_client_process(cluster.addresses, name, pipeline=True)
        assert not any(cluster.alive())
        return cold, warm, piped

    cold, warm, piped = benchmark.pedantic(deployment, rounds=1, iterations=1)

    # Element-wise identity across the process boundary, all clients.
    assert cold["digest"] == single_digest
    assert warm["digest"] == single_digest
    assert piped["digest"] == single_digest
    assert warm["remote"]["remote_errors"] == 0
    assert warm["remote"]["remote_hits"] > 0
    # The acceptance bar: a warm second client rides the service.
    assert warm["steps"][0] < 0.75 * cold["steps"][0]
    # Protocol 1.2: a pipelined warm client pays O(shards) round trips
    # (prefetch + flush), far below the per-lookup exchanges of the
    # plain warm client — and answers stay identical.
    assert piped["remote"]["prefetched"] > 0
    assert piped["remote"]["round_trips"] < warm["remote"]["round_trips"]

    _ROWS.append(
        {
            "benchmark": name,
            "client": "SafeCast",
            "n_queries": cold["n_queries"],
            "shards": 2,
            "single_process": perf_fields(batch.stats),
            "cold": {
                "steps": cold["steps"][0],
                "time_sec": cold["time_sec"],
                "stores": cold["remote"]["stores"],
                "round_trips": cold["remote"]["round_trips"],
            },
            "warm": {
                "steps": warm["steps"][0],
                "time_sec": warm["time_sec"],
                "remote_hits": warm["remote"]["remote_hits"],
                "remote_misses": warm["remote"]["remote_misses"],
                "round_trips": warm["remote"]["round_trips"],
            },
            "warm_pipelined": {
                "steps": piped["steps"][0],
                "time_sec": piped["time_sec"],
                "prefetched": piped["remote"]["prefetched"],
                "round_trips": piped["remote"]["round_trips"],
            },
            "step_ratio": round(warm["steps"][0] / cold["steps"][0], 4),
        }
    )


def _concurrent_pipelined_clients(addresses, pag, n_clients):
    """``n_clients`` pipelined clients (each its own connection, each a
    full prefetch + flush cycle) hammering the cluster at once from
    this process.  Returns (wall_sec, per-client RemoteStoreStats)."""
    import threading

    from repro.cacheserver.client import RemoteSummaryCache

    stats = [None] * n_clients
    errors = []

    def one_client(slot):
        try:
            cache = RemoteSummaryCache(addresses, timeout=10.0, pipeline=True)
            cache.bind_pag(pag)
            cache.begin_batch()
            cache.end_batch()
            stats[slot] = cache.remote_stats()
            cache.close()
        except Exception as exc:  # surfaced below: threads must not die silently
            errors.append(exc)

    threads = [
        threading.Thread(target=one_client, args=(slot,))
        for slot in range(n_clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    wall = time.perf_counter() - started
    assert not errors, errors
    assert all(s is not None for s in stats)
    return wall, stats


_SWEEP = {}


def test_async_vs_threaded_concurrency_sweep(benchmark, figure_instances):
    """The serving-tier scaling protocol: a warm 2-shard cluster serves
    1 / 4 / 16 concurrent pipelined clients, once on the asyncio tier
    (the default: one event loop per shard) and once on the
    thread-per-connection tier (``--threaded``).  Wall-clock and round
    trips are recorded per client count; the acceptance bar is that
    async costs no more than threaded at 1 client (tolerance for
    scheduler noise) while serving 16 clients from one loop."""
    from repro.engine import CachePolicy

    name = FIGURE_BENCHMARKS[0]
    instance = figure_instances[name]
    client = SafeCastClient(instance.pag)

    def sweep(threaded):
        rows = {}
        with CacheCluster.spawn(shards=2, threaded=threaded) as cluster:
            # Seed the service once so every sweep client runs warm —
            # the sweep measures the serving tier, not the analysis.
            seeder = PointsToEngine(
                instance.pag,
                bench_engine_policy(
                    cache=CachePolicy(
                        remote=cluster.addresses, remote_timeout=10.0
                    )
                ),
            )
            client.run_engine(seeder, dedupe=False, reorder=False)
            seeded = sum(
                1 for _ in seeder.cache.local_tier.entries()
            )
            assert seeded > 0
            for n_clients in (1, 4, 16):
                wall, stats = _concurrent_pipelined_clients(
                    cluster.addresses, instance.pag, n_clients
                )
                prefetched = [s.prefetched for s in stats]
                assert all(count > 0 for count in prefetched)
                assert len(set(prefetched)) == 1  # every client saw the same service
                rows[str(n_clients)] = {
                    "wall_sec": wall,
                    "round_trips_per_client": stats[0].round_trips,
                    "prefetched_per_client": prefetched[0],
                }
        assert not any(cluster.alive())
        return rows

    def both():
        return sweep(threaded=False), sweep(threaded=True)

    async_rows, threaded_rows = benchmark.pedantic(both, rounds=1, iterations=1)

    # O(shards) pipelined cost regardless of tier or client count.
    for rows in (async_rows, threaded_rows):
        for row in rows.values():
            assert row["round_trips_per_client"] <= 2 * 2
    # The 1-client bar: the event loop must not cost more than the
    # thread-per-connection transport it replaces (generous tolerance —
    # single-digit-millisecond exchanges are scheduler-noise bound).
    assert (
        async_rows["1"]["wall_sec"]
        <= threaded_rows["1"]["wall_sec"] * 1.25 + 0.25
    )
    _SWEEP.update(
        {
            "benchmark": name,
            "shards": 2,
            "clients": [1, 4, 16],
            "async": async_rows,
            "threaded": threaded_rows,
        }
    )


def test_print_shared_cache(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("series did not run")
    header = (
        f"{'benchmark':10s} {'queries':>7s} {'cold steps':>10s} "
        f"{'warm steps':>10s} {'ratio':>6s} {'warm rt':>8s} "
        f"{'piped rt':>8s} {'published':>9s}"
    )
    print("\n\nShared cache service — 2 shard processes, 3 client processes")
    print(header)
    print("-" * len(header))
    for row in _ROWS:
        print(
            f"{row['benchmark']:10s} {row['n_queries']:>7d} "
            f"{row['cold']['steps']:>10d} {row['warm']['steps']:>10d} "
            f"{row['step_ratio']:>6.2f} {row['warm']['round_trips']:>8d} "
            f"{row['warm_pipelined']['round_trips']:>8d} "
            f"{row['cold']['stores']:>9d}"
        )
    if _SWEEP:
        print(
            "\nServing-tier sweep — warm 2-shard cluster, "
            f"{_SWEEP['benchmark']}, concurrent pipelined clients"
        )
        print(f"{'clients':>7s} {'async sec':>10s} {'threaded sec':>12s}")
        for n in _SWEEP["clients"]:
            print(
                f"{n:>7d} {_SWEEP['async'][str(n)]['wall_sec']:>10.3f} "
                f"{_SWEEP['threaded'][str(n)]['wall_sec']:>12.3f}"
            )
    if os.environ.get("REPRO_WRITE_BASELINE"):
        payload = {
            "protocol": "bench_shared_cache",
            "scale": SCALE,
            "rows": _ROWS,
        }
        if _SWEEP:
            payload["concurrency_sweep"] = _SWEEP
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote baseline {BASELINE_PATH}")
