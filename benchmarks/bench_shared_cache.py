"""Shared cache service — multi-process warm-client step reduction.

The deployment protocol of the process-level cache service: for each
Figure-4 benchmark, a 2-shard server cluster is spawned (real
processes, via ``python -m repro.cacheserver --serve-shard``) and two
analysis *processes* replay the SafeCast paper-protocol workload
(``python -m repro.cacheserver.workload``) against it:

* **cold** — first client: empty service, every summary computed
  locally and published (write-through);
* **warm** — second client: fresh process, empty local tier, warm
  service — summaries arrive over the socket instead of being
  recomputed.

Asserted per benchmark: all clients' answers are element-wise identical
to a single-process engine's (the canonical-results digest), the warm
client saw zero remote errors, and the warm client completed in
**< 75 %** of the cold client's steps — the acceptance bar of the
shared-cache milestone.  Reported: steps, step ratio, remote hit/store
traffic, and wall time per client.

Set ``REPRO_WRITE_BASELINE=1`` to (re)write ``BENCH_shared.json``.
Wall-clock fields vary by host; the committed baseline records the
deterministic step comparison and service traffic, not timings.
"""

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.bench.runner import bench_engine_policy
from repro.bench.suite import load_benchmark
from repro.cacheserver.server import CacheCluster
from repro.cacheserver.workload import canonical_results, results_digest
from repro.clients import SafeCastClient
from repro.engine import PointsToEngine

from conftest import FIGURE_BENCHMARKS, SCALE, perf_fields

BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_shared.json"

_ROWS = []


def _run_client_process(addresses, name, pipeline=False):
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "repro.cacheserver.workload",
        "--benchmark", name, "--scale", str(SCALE),
        "--client", "SafeCast", "--remote", ",".join(addresses),
    ]
    if pipeline:
        command.append("--pipeline")
    started = time.perf_counter()
    proc = subprocess.run(
        command, capture_output=True, text=True, env=env, timeout=580,
    )
    elapsed = time.perf_counter() - started
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    report["time_sec"] = elapsed
    return report


@pytest.mark.parametrize("name", FIGURE_BENCHMARKS)
def test_shared_cache_warm_client(benchmark, figure_instances, name):
    instance = figure_instances[name]
    client = SafeCastClient(instance.pag)
    engine = PointsToEngine(instance.pag, bench_engine_policy())
    _verdicts, batch = client.run_engine(engine, dedupe=False, reorder=False)
    single_digest = results_digest(canonical_results(batch.results))

    def deployment():
        with CacheCluster.spawn(shards=2) as cluster:
            cold = _run_client_process(cluster.addresses, name)
            warm = _run_client_process(cluster.addresses, name)
            piped = _run_client_process(cluster.addresses, name, pipeline=True)
        assert not any(cluster.alive())
        return cold, warm, piped

    cold, warm, piped = benchmark.pedantic(deployment, rounds=1, iterations=1)

    # Element-wise identity across the process boundary, all clients.
    assert cold["digest"] == single_digest
    assert warm["digest"] == single_digest
    assert piped["digest"] == single_digest
    assert warm["remote"]["remote_errors"] == 0
    assert warm["remote"]["remote_hits"] > 0
    # The acceptance bar: a warm second client rides the service.
    assert warm["steps"][0] < 0.75 * cold["steps"][0]
    # Protocol 1.2: a pipelined warm client pays O(shards) round trips
    # (prefetch + flush), far below the per-lookup exchanges of the
    # plain warm client — and answers stay identical.
    assert piped["remote"]["prefetched"] > 0
    assert piped["remote"]["round_trips"] < warm["remote"]["round_trips"]

    _ROWS.append(
        {
            "benchmark": name,
            "client": "SafeCast",
            "n_queries": cold["n_queries"],
            "shards": 2,
            "single_process": perf_fields(batch.stats),
            "cold": {
                "steps": cold["steps"][0],
                "time_sec": cold["time_sec"],
                "stores": cold["remote"]["stores"],
                "round_trips": cold["remote"]["round_trips"],
            },
            "warm": {
                "steps": warm["steps"][0],
                "time_sec": warm["time_sec"],
                "remote_hits": warm["remote"]["remote_hits"],
                "remote_misses": warm["remote"]["remote_misses"],
                "round_trips": warm["remote"]["round_trips"],
            },
            "warm_pipelined": {
                "steps": piped["steps"][0],
                "time_sec": piped["time_sec"],
                "prefetched": piped["remote"]["prefetched"],
                "round_trips": piped["remote"]["round_trips"],
            },
            "step_ratio": round(warm["steps"][0] / cold["steps"][0], 4),
        }
    )


def test_print_shared_cache(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("series did not run")
    header = (
        f"{'benchmark':10s} {'queries':>7s} {'cold steps':>10s} "
        f"{'warm steps':>10s} {'ratio':>6s} {'warm rt':>8s} "
        f"{'piped rt':>8s} {'published':>9s}"
    )
    print("\n\nShared cache service — 2 shard processes, 3 client processes")
    print(header)
    print("-" * len(header))
    for row in _ROWS:
        print(
            f"{row['benchmark']:10s} {row['n_queries']:>7d} "
            f"{row['cold']['steps']:>10d} {row['warm']['steps']:>10d} "
            f"{row['step_ratio']:>6.2f} {row['warm']['round_trips']:>8d} "
            f"{row['warm_pipelined']['round_trips']:>8d} "
            f"{row['cold']['stores']:>9d}"
        )
    if os.environ.get("REPRO_WRITE_BASELINE"):
        payload = {
            "protocol": "bench_shared_cache",
            "scale": SCALE,
            "rows": _ROWS,
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote baseline {BASELINE_PATH}")
