"""Figure 4 — per-batch cost of DYNSUM normalised to REFINEPTS.

Protocol (Section 5.3): the query stream of each client is split into 10
batches; one persistent DYNSUM instance processes them in order (its
summary cache warming across batches) while REFINEPTS processes the same
batches with its per-query-only reuse.  The paper plots
``time(DYNSUM batch i) / time(REFINEPTS batch i)``.

Alongside the paper's metric we print a *warm/cold* series — the same
batch replayed on a cold-cache DYNSUM — which isolates exactly the
cross-batch reuse the paper attributes the trend to, independent of
REFINEPTS's volatility on small programs.
"""

import pytest

from repro import DynSum, NoRefine, RefinePts
from repro.bench.batching import split_batches
from repro.bench.runner import bench_analysis_config, run_batches
from repro.bench.tables import format_figure4
from repro.clients import ALL_CLIENTS

from conftest import FIGURE_BENCHMARKS

N_BATCHES = 10

_SERIES = []


@pytest.mark.parametrize("client_cls", ALL_CLIENTS, ids=lambda c: c.name)
@pytest.mark.parametrize("name", FIGURE_BENCHMARKS)
def test_batch_series(benchmark, figure_instances, name, client_cls):
    instance = figure_instances[name]

    def run():
        dynsum = DynSum(instance.pag, bench_analysis_config())
        refinepts = RefinePts(instance.pag, bench_analysis_config())
        dyn_series = run_batches(instance, client_cls, dynsum, N_BATCHES)
        ref_series = run_batches(instance, client_cls, refinepts, N_BATCHES)
        return dyn_series, ref_series

    dyn_series, ref_series = benchmark.pedantic(run, rounds=1, iterations=1)
    _SERIES.append((dyn_series, ref_series))
    assert len(dyn_series.batch_steps) == N_BATCHES


def test_warm_vs_cold_reuse(benchmark, figure_instances):
    """Cross-batch reuse, isolated: replay each batch against a cold
    cache and compare.  The warm instance must never lose, and must win
    on aggregate over the later batches."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n\nFigure 4 companion — DYNSUM warm/cold per-batch step ratio")
    for name, instance in figure_instances.items():
        for client_cls in ALL_CLIENTS:
            client = client_cls(instance.pag)
            queries = client.queries()
            warm = DynSum(instance.pag, bench_analysis_config())
            ratios = []
            warm_late = cold_late = 0
            for index, batch in enumerate(split_batches(queries, N_BATCHES)):
                cold = DynSum(instance.pag, bench_analysis_config())
                w0 = warm.total_steps
                c0 = cold.total_steps
                for query in batch:
                    node = query.node(instance.pag)
                    warm.points_to(node)
                    cold.points_to(node)
                warm_steps = warm.total_steps - w0
                cold_steps = cold.total_steps - c0
                ratios.append(warm_steps / cold_steps if cold_steps else 1.0)
                if index >= N_BATCHES // 2:
                    warm_late += warm_steps
                    cold_late += cold_steps
            print(
                f"  {name}/{client_cls.name}: "
                + " ".join(f"{r:.2f}" for r in ratios)
            )
            if cold_late:
                assert warm_late <= cold_late, (name, client_cls.name)


def test_print_figure4(benchmark, figure_instances):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _SERIES:
        pytest.skip("series did not run")
    print("\n\nFigure 4 — DYNSUM / REFINEPTS per-batch step ratio")
    print(format_figure4(_SERIES, n_batches=N_BATCHES))
