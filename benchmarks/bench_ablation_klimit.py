"""Ablation — the field-stack k-limit (a harness deviation from the paper).

The paper bounds queries only by the 75,000-step budget; our harness
additionally k-limits the field stack (see
``repro.bench.runner.BENCH_FIELD_DEPTH_LIMIT``) because a few synthetic
queries otherwise pump the stack through store/load webs and burn the
whole budget for every analysis, telling us nothing.  This sweep makes
the deviation inspectable: per limit, the unknowns produced by the
limit, the unknowns produced by the budget, and total cost.

Expected shape: a tiny limit aborts many queries cheaply; a generous
limit answers everything the budget allows; between them the answer set
stabilises while cost stays bounded — i.e. the k-limit changes cost, not
(completed) answers, which the monotonicity test pins.
"""

import pytest

from repro import AnalysisConfig, DynSum, NoRefine
from repro.bench.runner import run_client
from repro.clients import NullDerefClient

LIMITS = (2, 4, 16, 64)

_ROWS = []


@pytest.mark.parametrize("limit", LIMITS)
@pytest.mark.parametrize("analysis_cls", (NoRefine, DynSum), ids=lambda c: c.name)
def test_klimit_cell(benchmark, instances, analysis_cls, limit):
    instance = instances["jack"]
    config = AnalysisConfig(max_field_depth=limit)

    def run():
        return run_client(instance, NullDerefClient, analysis_cls(instance.pag, config))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append((limit, result.analysis, result.unknown, result.safe, result.steps))


def test_print_and_check(benchmark, instances):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("cells did not run")
    print("\n\nAblation — field-stack k-limit sweep (jack / NullDeref)")
    print(f"  {'limit':>6s}  {'analysis':10s} {'unknown':>8s} {'safe':>6s} {'steps':>9s}")
    by_key = {}
    for limit, analysis, unknown, safe, steps in _ROWS:
        by_key[(limit, analysis)] = (unknown, safe)
        print(f"  {limit:>6d}  {analysis:10s} {unknown:>8d} {safe:>6d} {steps:>9d}")
    # Raising the limit only converts unknowns into answers:
    for analysis in ("NOREFINE", "DYNSUM"):
        unknowns = [by_key[(limit, analysis)][0] for limit in LIMITS]
        assert unknowns == sorted(unknowns, reverse=True), analysis
    # The two deep settings agree on how many queries get answered.
    assert by_key[(16, "NOREFINE")][1] == by_key[(64, "NOREFINE")][1]
