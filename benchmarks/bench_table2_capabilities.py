"""Table 2 — strengths and weaknesses of the four demand analyses.

The table is qualitative; the benchmark times analysis construction
(which for STASUM includes the whole offline summarisation phase — the
cost Table 2's "Partly" on-demandness hides) and prints the rendered
capability matrix.
"""

import pytest

from repro import DynSum, NoRefine, RefinePts, StaSum
from repro.bench.runner import bench_analysis_config
from repro.bench.tables import format_capability_table

ANALYSES = (NoRefine, RefinePts, DynSum, StaSum)


@pytest.mark.parametrize("analysis_cls", ANALYSES, ids=lambda c: c.name)
def test_construction_cost(benchmark, instances, analysis_cls):
    """Time to stand up each analysis on soot-c (STASUM pays offline)."""
    pag = instances["soot-c"].pag

    def construct():
        return analysis_cls(pag, bench_analysis_config())

    analysis = benchmark.pedantic(construct, rounds=1, iterations=1)
    assert analysis.name == analysis_cls.name


def test_print_table2(benchmark, instances):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pag = instances["soot-c"].pag
    analyses = [cls(pag, bench_analysis_config()) for cls in ANALYSES]
    print("\n\nTable 2 — capability matrix")
    print(format_capability_table(analyses))
    rows = {a.name: a.capabilities() for a in analyses}
    # The paper's qualitative claims, pinned:
    assert rows["NOREFINE"]["full_precision"] is True
    assert rows["REFINEPTS"]["reuse"] == "context-dependent"
    assert rows["STASUM"]["full_precision"] is False
    assert rows["STASUM"]["on_demand"] == "partly"
    assert rows["DYNSUM"]["full_precision"] is True
    assert rows["DYNSUM"]["memoization"] == "dynamic-across"
    assert rows["DYNSUM"]["reuse"] == "context-independent"
