"""Figure 5 — cumulative DYNSUM summaries as a fraction of STASUM's.

After each of the 10 query batches we record how many boundary points
DYNSUM has summarised so far and normalise by the size of STASUM's
offline all-methods table (see ``SummaryCache.summary_point_count`` for
the unit discussion).  The paper reports DYNSUM ending at 37-48% of
STASUM on average; the claim under test is the *shape*: the fraction
grows with query volume and stays well below 100%.
"""

import pytest

from repro import DynSum, StaSum
from repro.bench.runner import bench_analysis_config, run_summary_series
from repro.bench.tables import format_figure5
from repro.clients import ALL_CLIENTS

from conftest import FIGURE_BENCHMARKS

N_BATCHES = 10

_SERIES = []


@pytest.mark.parametrize("client_cls", ALL_CLIENTS, ids=lambda c: c.name)
@pytest.mark.parametrize("name", FIGURE_BENCHMARKS)
def test_summary_series(benchmark, figure_instances, name, client_cls):
    instance = figure_instances[name]
    stasum = StaSum(instance.pag, bench_analysis_config())

    def run():
        dynsum = DynSum(instance.pag, bench_analysis_config())
        return run_summary_series(instance, client_cls, dynsum, stasum, N_BATCHES)

    series, total = benchmark.pedantic(run, rounds=1, iterations=1)
    _SERIES.append((series, total))

    counts = series.summary_counts
    assert counts == sorted(counts), "cache only grows"
    assert counts[-1] <= total, "DYNSUM must not exceed the static table"
    assert counts[-1] > 0


def test_print_figure5(benchmark, figure_instances):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _SERIES:
        pytest.skip("series did not run")
    print("\n\nFigure 5 — cumulative DYNSUM summaries (% of STASUM)")
    print(format_figure5(_SERIES, n_batches=N_BATCHES))
    finals = [
        series.summary_counts[-1] / total for series, total in _SERIES if total
    ]
    average = sum(finals) / len(finals)
    print(f"\naverage final fraction: {average:.1%} (paper: 37-48%)")
    assert 0.05 <= average <= 0.95
