"""Shared summary-cache service: many processes, one warm cache.

Spawns a 2-shard cache cluster (real server processes, exactly what
``repro-cached --shards 2`` launches), then runs two independent
engines against it — modelling two analysis processes working on the
same program.  The first computes and publishes; the second is served
by the shard servers and traverses a fraction of the steps.  Killing
the cluster mid-session demonstrates the fail-open guarantee: answers
never change, only cost.

Run:  PYTHONPATH=src python examples/shared_cache.py
"""

from repro import CachePolicy, EnginePolicy, PointsToEngine, build_pag, parse_program
from repro.cacheserver import CacheCluster

SHARED_CACHE_SOURCE = """
class Document { }
class Cache { }
class Parser {
  method parse() {
    d = new Document;
    return d;
  }
}
class Indexer {
  method index(p) {
    doc = p.parse();
    return doc;
  }
}
class Main {
  static method main() {
    parser = new Parser;
    indexer = new Indexer;
    d1 = indexer.index(parser);
    d2 = parser.parse();
    c = new Cache;
  }
}
"""

QUERIES = [
    ("Main.main", "d1"),
    ("Main.main", "d2"),
    ("Indexer.index", "doc"),
    ("Parser.parse", "d"),
]


def fresh_engine(addresses):
    """One 'analysis process': its own PAG, its own local tier, shared
    shard servers."""
    return PointsToEngine(
        build_pag(parse_program(SHARED_CACHE_SOURCE)),
        EnginePolicy(
            cache=CachePolicy(remote=addresses, remote_timeout=2.0),
            parallelism=1,
        ),
    )


def show(label, engine, batch):
    remote = engine.stats().remote
    print(
        f"{label}: steps={batch.stats.steps:3d}  "
        f"remote hits={remote.remote_hits}  misses={remote.remote_misses}  "
        f"errors={remote.remote_errors}  published={remote.stores}"
    )
    return {
        (query, frozenset(str(obj.object_id) for obj, _ in result.pairs))
        for query, result in zip(QUERIES, batch.results)
    }


def main():
    with CacheCluster.spawn(shards=2) as cluster:
        print(f"cluster up: {', '.join(cluster.addresses)}\n")

        first = fresh_engine(cluster.addresses)
        answers_cold = show("client 1 (cold service)", first, first.query_batch(QUERIES))

        second = fresh_engine(cluster.addresses)
        answers_warm = show("client 2 (warm service)", second, second.query_batch(QUERIES))
        assert answers_warm == answers_cold

        print("\nkilling the cluster mid-session ...")
        cluster.kill()
        third = fresh_engine(cluster.addresses)
        answers_down = show("client 3 (service dead)", third, third.query_batch(QUERIES))
        assert answers_down == answers_cold
        print("\nanswers identical in all three regimes — the service only moves cost")


if __name__ == "__main__":
    main()
