"""Quickstart: parse a program, build its PAG, ask points-to queries.

Run with::

    python examples/quickstart.py

Covers the three ways into the library: the PIR parser, the demand
analyses, and the clients.
"""

from repro import (
    ContextInsensitivePta,
    DynSum,
    NoRefine,
    SafeCastClient,
    build_pag,
    parse_program,
)

SOURCE = """
class Animal { }
class Dog extends Animal { }
class Cat extends Animal { }

class Kennel {
  field occupant;
  method put(a) { this.occupant = a; }
  method get() {
    r = this.occupant;
    return r;
  }
}

class Main {
  static method main() {
    dogHouse = new Kennel;
    catHouse = new Kennel;
    rex = new Dog;
    tom = new Cat;
    dogHouse.put(rex);
    catHouse.put(tom);
    d = dogHouse.get();
    c = catHouse.get();
    sure = (Dog) d;
    oops = (Dog) c;
  }
}
"""


def main():
    program = parse_program(SOURCE)
    pag = build_pag(program)
    print(f"program: {program}")
    print(f"PAG: {pag}\n")

    # 1. Demand queries: what may `d` point to?
    dynsum = DynSum(pag)
    for var in ("d", "c"):
        result = dynsum.points_to_name("Main.main", var)
        names = sorted(obj.class_name for obj in result.objects)
        print(f"pointsTo({var}) = {names}   [{result.steps} steps]")

    # 2. Context-sensitivity is what separates the two kennels:
    cipta = ContextInsensitivePta(pag)
    merged = sorted(
        obj.class_name for obj in cipta.points_to_name("Main.main", "d").objects
    )
    print(f"\ncontext-INsensitive pointsTo(d) = {merged}  (kennels conflated)")

    # 3. A client consumes the analysis: check every downcast.
    print("\nSafeCast verdicts (DYNSUM):")
    client = SafeCastClient(pag)
    for verdict in client.run(DynSum(pag)):
        print(f"  {verdict.query.description:40s} -> {verdict.status}")

    # 4. The summary cache is why repeated queries get cheaper:
    warm = DynSum(pag)
    first = warm.points_to_name("Main.main", "d")
    second = warm.points_to_name("Main.main", "c")
    print(
        f"\nsummary reuse: first query {first.steps} steps, "
        f"related second query {second.steps} steps "
        f"({warm.cache.hits} cache hits)"
    )


if __name__ == "__main__":
    main()
