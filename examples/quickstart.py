"""Quickstart: parse a program, build its PAG, ask points-to queries.

Run with::

    python examples/quickstart.py

Covers the ways into the library: the PIR parser, the query engine
(single queries, batches, client workloads), and the low-level analyses.
"""

from repro import (
    ContextInsensitivePta,
    PointsToEngine,
    SafeCastClient,
    build_pag,
    parse_program,
)

SOURCE = """
class Animal { }
class Dog extends Animal { }
class Cat extends Animal { }

class Kennel {
  field occupant;
  method put(a) { this.occupant = a; }
  method get() {
    r = this.occupant;
    return r;
  }
}

class Main {
  static method main() {
    dogHouse = new Kennel;
    catHouse = new Kennel;
    rex = new Dog;
    tom = new Cat;
    dogHouse.put(rex);
    catHouse.put(tom);
    d = dogHouse.get();
    c = catHouse.get();
    sure = (Dog) d;
    oops = (Dog) c;
  }
}
"""


def main():
    program = parse_program(SOURCE)
    pag = build_pag(program)
    print(f"program: {program}")
    print(f"PAG: {pag}\n")

    # 1. One engine per program is the front door: demand queries on it.
    engine = PointsToEngine(pag)
    for var in ("d", "c"):
        result = engine.query_name("Main.main", var)
        names = sorted(obj.class_name for obj in result.objects)
        print(f"pointsTo({var}) = {names}   [{result.steps} steps]")

    # 2. Context-sensitivity is what separates the two kennels (the
    #    low-level analyses stay available for experiments):
    cipta = ContextInsensitivePta(pag)
    merged = sorted(
        obj.class_name for obj in cipta.points_to_name("Main.main", "d").objects
    )
    print(f"\ncontext-INsensitive pointsTo(d) = {merged}  (kennels conflated)")

    # 3. A client workload runs as one engine batch: every downcast.
    print("\nSafeCast verdicts (DYNSUM engine):")
    verdicts, batch = engine.run_client(SafeCastClient)
    for verdict in verdicts:
        print(f"  {verdict.query.description:40s} -> {verdict.status}")

    # 4. Batching shares the summary cache across queries — dedup and
    #    warm summaries are why the batch is cheaper than cold queries:
    batch = engine.query_batch(
        [("Main.main", "d"), ("Main.main", "c"), ("Main.main", "d")]
    )
    stats = batch.stats
    print(
        f"\nsummary reuse: batch of {stats.n_requests} queries ran "
        f"{stats.n_unique} traversals in {stats.steps} steps "
        f"(cache hit rate {stats.hit_rate:.0%})"
    )


if __name__ == "__main__":
    main()
