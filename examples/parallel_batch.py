"""Parallel batches over a sharded summary store, end to end.

DYNSUM summaries are pure, context-independent memos, so a batch of
demand queries is embarrassingly parallel once the cache has a
concurrency story.  This example runs the same client workload on one of
the paper's Figure-4 programs twice through the engine:

* sequentially (the paper's protocol, ``parallelism=1``);
* on a 4-worker thread pool over an 8-shard summary store
  (``EnginePolicy(parallelism=4, cache=CachePolicy(shards=8))``) —
  shards are partitioned by the key node's *method*, the invalidation
  granularity, each behind its own lock.

Parallelism is only a cost lever: the answers are asserted element-wise
identical, and the aggregated shard statistics still reconcile exactly
(hits + misses == probes; entries/facts equal the shard sums).

Run with::

    python examples/parallel_batch.py
"""

from repro import CachePolicy, EnginePolicy, PointsToEngine, SafeCastClient
from repro.bench.suite import load_benchmark

WORKERS = 4
SHARDS = 8


def run(instance, parallelism, shards=None):
    cache = CachePolicy(shards=shards) if shards else CachePolicy()
    engine = PointsToEngine(
        instance.pag,
        EnginePolicy(max_field_depth=16, parallelism=parallelism, cache=cache),
    )
    _verdicts, batch = engine.run_client(SafeCastClient)
    return engine, batch


def main():
    instance = load_benchmark("soot-c", scale=0.5)
    print(f"program: {instance.name}  ({instance.pag!r})\n")

    _seq_engine, seq = run(instance, parallelism=1)
    par_engine, par = run(instance, parallelism=WORKERS, shards=SHARDS)

    print(f"{'':14s} {'queries':>8s} {'executed':>9s} {'steps':>7s} {'time':>9s}")
    for label, batch in (("sequential", seq), (f"parallel x{WORKERS}", par)):
        print(
            f"{label:14s} {batch.stats.n_requests:>8d} "
            f"{batch.stats.n_unique:>9d} {batch.stats.steps:>7d} "
            f"{batch.stats.time_sec:>8.4f}s"
        )

    # Parallelism never changes an answer — only who pays for a summary.
    for sequential_result, parallel_result in zip(seq.results, par.results):
        assert sequential_result.pairs == parallel_result.pairs
    print("\nidentical answers: yes (asserted element-wise)")

    # Per-shard accounting still reconciles exactly: the aggregate
    # snapshot must equal the shard sums, probe deltas seen by the batch
    # must match what the shards recorded, and entry/fact totals must
    # match what is actually resident.
    cache = par_engine.cache
    total = cache.stats_snapshot()
    shard_snaps = cache.shard_snapshots()
    print(
        f"\nshard stats ({cache.n_shards} shards, partitioned by method):"
        f"\n  {'shard':>5s} {'entries':>8s} {'facts':>6s} {'hits':>5s} {'misses':>7s}"
    )
    for index, snap in enumerate(shard_snaps):
        print(
            f"  {index:>5d} {snap.entries:>8d} {snap.facts:>6d} "
            f"{snap.hits:>5d} {snap.misses:>7d}"
        )
    assert total.hits == sum(s.hits for s in shard_snaps)
    assert total.misses == sum(s.misses for s in shard_snaps)
    assert par.stats.cache_hits + par.stats.cache_misses == total.probes
    assert total.entries == sum(s.entries for s in shard_snaps) == len(cache)
    assert total.facts == sum(s.facts for s in shard_snaps) == cache.total_facts()
    print(
        f"  total {total.entries:>8d} {total.facts:>6d} {total.hits:>5d} "
        f"{total.misses:>7d}   (aggregate == shard sums: reconciled)"
    )


if __name__ == "__main__":
    main()
