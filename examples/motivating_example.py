"""The paper's motivating example (Figure 2, Table 1, Section 3.4).

Builds the Vector/Client program exactly as in Figure 2, answers the two
queries ``pointsTo(s1)`` and ``pointsTo(s2)`` with every analysis, and
shows the reuse effect Table 1 illustrates: the second query is cheaper
because DYNSUM reuses the PPTA summaries cached during the first —
something the paper stresses no ad-hoc (context-dependent) cache can do,
since s1 and s2 reach the shared code under different calling contexts.

Run with::

    python examples/motivating_example.py [--dot]

``--dot`` additionally prints the PAG in Graphviz format (the paper's
Figure 2 rendering).
"""

import sys

from repro import (
    ContextInsensitivePta,
    DynSum,
    NoRefine,
    RefinePts,
    StaSum,
    build_pag,
    parse_program,
)
from repro.pag.dot import to_dot

FIGURE2 = """
class Object { }
class ObjectArray { field arr; }
class Integer { }
class String { }

class Vector {
  field elems;
  field count;
  method init() {           // Vector() constructor, lines 4-6
    t = new ObjectArray;
    this.elems = t;
  }
  method add(p) {           // lines 7-9 (t[count++]=p collapses to .arr)
    t = this.elems;
    t.arr = p;
  }
  method get(i) {           // lines 10-12
    t = this.elems;
    r = t.arr;
    return r;
  }
}

class Client {
  field vec;
  method initEmpty() { }    // Client(), line 15
  method initWith(v) { this.vec = v; }   // Client(Vector), lines 16-17
  method set(v) { this.vec = v; }        // lines 18-19
  method retrieve() {                    // lines 20-22
    t = this.vec;
    s = t.get(zero);
    return s;
  }
}

class Main {
  static method main() {    // lines 24-33
    v1 = new Vector;        // line 25
    v1.init();
    tmp1 = new Integer;     // line 26
    v1.add(tmp1);
    c1 = new Client;        // line 27
    c1.initWith(v1);
    v2 = new Vector;        // line 28
    v2.init();
    tmp2 = new String;      // line 29
    v2.add(tmp2);
    c2 = new Client;        // line 30
    c2.initEmpty();
    c2.set(v2);
    s1 = c1.retrieve();     // line 32
    s2 = c2.retrieve();     // line 33
  }
}
"""


def describe(result):
    names = sorted(obj.class_name for obj in result.objects)
    return f"{names}  ({result.steps} steps)"


def main():
    program = parse_program(FIGURE2)
    pag = build_pag(program)
    print(f"Figure 2 PAG: {pag}")
    print(f"locality: {pag.locality():.1%}\n")

    if "--dot" in sys.argv:
        print(to_dot(pag, graph_name="figure2"))

    print("The paper's expected answers: pointsTo(s1)={o26:Integer}, "
          "pointsTo(s2)={o29:String}\n")

    for analysis_cls in (NoRefine, RefinePts, DynSum, StaSum):
        analysis = analysis_cls(pag)
        r1 = analysis.points_to_name("Main.main", "s1")
        r2 = analysis.points_to_name("Main.main", "s2")
        print(f"{analysis.name:10s} s1 -> {describe(r1)}")
        print(f"{'':10s} s2 -> {describe(r2)}")
        if isinstance(analysis, DynSum):
            print(
                f"{'':10s} Table 1's reuse: s2 needed fewer steps than s1 "
                f"({r2.steps} < {r1.steps}); cache: {analysis.cache}"
            )
        print()

    cipta = ContextInsensitivePta(pag)
    print(
        "CIPTA      s1 -> "
        + describe(cipta.points_to_name("Main.main", "s1"))
        + "   <- context-insensitive: payloads merge (Section 3.2)"
    )


if __name__ == "__main__":
    main()
