"""IDE scenario: demand queries under *real* code edits.

The paper motivates DYNSUM for "environments such as JIT compilers and
IDEs, particularly when the program constantly undergoes a lot of
edits".  This example drives :class:`IncrementalAnalysisSession`, the
host-side machinery for that scenario: a long-lived analysis accepts
method-body edits, drops exactly the summaries the edit can invalidate
(the edited method plus any method whose boundary surface changed),
migrates the rest across the PAG rebuild, and keeps answering queries —
with post-edit answers identical to a cold start.

Run with::

    python examples/ide_session.py
"""

from repro import IncrementalAnalysisSession, SafeCastClient, parse_program

WORKSPACE = """
class Shape { }
class Circle extends Shape { }
class Square extends Shape { }

class ShapeFactory {
  static method create() {
    s = new Circle;
    return s;
  }
}

class Canvas {
  field current;
  method hold(x) { this.current = x; }
  method fetch() {
    r = this.current;
    return r;
  }
}

class Main {
  static method main() {
    shape = ShapeFactory::create();
    canvas = new Canvas;
    canvas.hold(shape);
    back = canvas.fetch();
    c = (Circle) back;
  }
}
"""


def report_queries(session, label):
    client = SafeCastClient(session.pag)
    steps_before = session.analysis.total_steps
    verdicts = client.run(session.analysis)
    steps = session.analysis.total_steps - steps_before
    summary = ", ".join(f"{v.query.description}: {v.status}" for v in verdicts)
    print(f"{label:28s} [{steps:4d} steps, {session.summary_count:3d} summaries] {summary}")


def main():
    session = IncrementalAnalysisSession(parse_program(WORKSPACE))
    print(f"workspace: {session.pag}\n")

    report_queries(session, "initial state")
    report_queries(session, "re-run (warm cache)")

    # Edit 1: the user changes the factory to produce Squares.
    def squares(m):
        m.alloc("s", "Square").ret("s")

    edit = session.replace_body("ShapeFactory.create", squares)
    print(f"\nedit ShapeFactory.create -> Square   {edit!r}")
    report_queries(session, "after factory edit")

    # Edit 2: revert.  Only the factory's summaries are repaid again.
    def circles(m):
        m.alloc("s", "Circle").ret("s")

    edit = session.replace_body("ShapeFactory.create", circles)
    print(f"\nedit ShapeFactory.create -> Circle   {edit!r}")
    report_queries(session, "after revert")

    # Edit 3: touch an unrelated method; Canvas summaries survive.
    edit = session.edit("Canvas.hold", lambda method: None)
    print(f"\nno-op edit of Canvas.hold            {edit!r}")
    report_queries(session, "after no-op edit")

    print(
        "\nthe cast verdict tracked every edit, and each edit repaid only "
        "the summaries it could have staled — the paper's low-budget "
        "IDE/JIT story, end to end."
    )


if __name__ == "__main__":
    main()
