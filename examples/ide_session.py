"""IDE scenario: demand queries under *real* code edits, via the engine.

The paper motivates DYNSUM for "environments such as JIT compilers and
IDEs, particularly when the program constantly undergoes a lot of
edits".  This example is that scenario end to end, driven entirely
through the :class:`~repro.engine.core.PointsToEngine` a host would own:
queries (whole SafeCast workloads, as engine batches) keep flowing while
an :class:`~repro.engine.session.EditSession` applies method-body edits.
Each edit drops exactly the summaries it can invalidate (the edited
method plus any method whose boundary surface changed), migrates the
rest across the PAG rebuild, and post-edit answers are identical to a
cold start — only cheaper.

Run with::

    python examples/ide_session.py
"""

from repro import PointsToEngine, SafeCastClient, parse_program

WORKSPACE = """
class Shape { }
class Circle extends Shape { }
class Square extends Shape { }

class ShapeFactory {
  static method create() {
    s = new Circle;
    return s;
  }
}

class Canvas {
  field current;
  method hold(x) { this.current = x; }
  method fetch() {
    r = this.current;
    return r;
  }
}

class Main {
  static method main() {
    shape = ShapeFactory::create();
    canvas = new Canvas;
    canvas.hold(shape);
    back = canvas.fetch();
    c = (Circle) back;
  }
}
"""


def report_queries(engine, label):
    verdicts, batch = engine.run_client(SafeCastClient)
    summary = ", ".join(f"{v.query.description}: {v.status}" for v in verdicts)
    print(
        f"{label:28s} [{batch.stats.steps:4d} steps, "
        f"{engine.analysis.summary_count:3d} summaries, "
        f"hit rate {batch.stats.hit_rate:4.0%}] {summary}"
    )


def main():
    engine = PointsToEngine.for_program(parse_program(WORKSPACE))
    session = engine.edit_session()
    print(f"workspace: {engine.pag}\n")

    report_queries(engine, "initial state")
    report_queries(engine, "re-run (warm cache)")

    # Edit 1: the user changes the factory to produce Squares.
    def squares(m):
        m.alloc("s", "Square").ret("s")

    edit = session.replace_body("ShapeFactory.create", squares)
    print(f"\nedit ShapeFactory.create -> Square   {edit!r}")
    report_queries(engine, "after factory edit")

    # Edit 2: revert.  Only the factory's summaries are repaid again.
    def circles(m):
        m.alloc("s", "Circle").ret("s")

    edit = session.replace_body("ShapeFactory.create", circles)
    print(f"\nedit ShapeFactory.create -> Circle   {edit!r}")
    report_queries(engine, "after revert")

    # Edit 3: touch an unrelated method; Canvas summaries survive.
    edit = session.edit("Canvas.hold", lambda method: None)
    print(f"\nno-op edit of Canvas.hold            {edit!r}")
    report_queries(engine, "after no-op edit")

    stats = engine.stats()
    print(
        f"\nsession totals: {stats.queries} queries over {stats.batches} "
        f"batches, {stats.edits} edits, cache at {stats.cache.entries} "
        f"summaries ({stats.cache.approx_bytes} bytes est.)"
    )
    print(
        "the cast verdict tracked every edit, and each edit repaid only "
        "the summaries it could have staled — the paper's low-budget "
        "IDE/JIT story, end to end."
    )


if __name__ == "__main__":
    main()
