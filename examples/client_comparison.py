"""Run the paper's three clients over one benchmark with all analyses.

A miniature of the Table 4 experiment on a single generated program:
for each client (SafeCast, NullDeref, FactoryM) and each analysis
(NOREFINE, REFINEPTS, DYNSUM, STASUM), issue every query — through a
per-analysis :class:`~repro.engine.core.PointsToEngine`, the same
surface a production host would use — and report steps, wall time and
verdict counts.

Run with::

    python examples/client_comparison.py [benchmark-name]

where ``benchmark-name`` is one of the paper's nine (default soot-c).
"""

import sys

from repro import DynSum, NoRefine, RefinePts, StaSum
from repro.bench.runner import bench_engine_policy, run_client
from repro.bench.suite import BENCHMARK_NAMES, load_benchmark
from repro.clients import ALL_CLIENTS


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "soot-c"
    if name not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark {name!r}; pick from {BENCHMARK_NAMES}")
    instance = load_benchmark(name)
    print(f"benchmark {name}: {instance.pag}")
    print(f"{instance.stats}\n")

    header = f"{'client':10s} {'analysis':10s} {'queries':>7s} {'steps':>9s} {'time':>7s} {'safe':>5s} {'viol':>5s} {'unk':>4s}"
    print(header)
    print("-" * len(header))
    for client_cls in ALL_CLIENTS:
        for analysis_cls in (NoRefine, RefinePts, DynSum, StaSum):
            engine = instance.engine(bench_engine_policy(analysis_cls.name))
            run = run_client(instance, client_cls, engine)
            print(
                f"{run.client:10s} {run.analysis:10s} {run.n_queries:>7d} "
                f"{run.steps:>9d} {run.time_sec:>6.2f}s "
                f"{run.safe:>5d} {run.violations:>5d} {run.unknown:>4d}"
            )
        print()


if __name__ == "__main__":
    main()
