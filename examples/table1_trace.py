"""Reproduce the paper's Table 1: a step-by-step DYNSUM query trace.

Table 1 shows DYNSUM answering ``pointsTo(s1)`` and ``pointsTo(s2)`` on
the Figure 2 program, step by step — node, field stack, RSM state,
context stack — with "reuse" marking the rows where the second query
rides summaries cached by the first.  This example prints the same view
from a live tracer.

Run with::

    python examples/table1_trace.py
"""

from repro import DynSum, QueryTracer, build_pag, format_trace, parse_program

from motivating_example import FIGURE2  # the Figure 2 program text


def main():
    program = parse_program(FIGURE2)
    pag = build_pag(program)
    dynsum = DynSum(pag)

    print("=== query 1: pointsTo(s1)  (paper: 23 steps, ends at o26) ===")
    with QueryTracer(dynsum) as tracer1:
        r1 = dynsum.points_to_name("Main.main", "s1")
    print(format_trace(tracer1.steps, max_rows=30))
    print(f"\nanswer: {sorted(o.class_name for o in r1.objects)}, "
          f"{r1.steps} steps, {tracer1.reuse_count} summary reuses\n")

    print("=== query 2: pointsTo(s2)  (paper: 15 steps thanks to reuse) ===")
    with QueryTracer(dynsum) as tracer2:
        r2 = dynsum.points_to_name("Main.main", "s2")
    print(format_trace(tracer2.steps, max_rows=30))
    print(f"\nanswer: {sorted(o.class_name for o in r2.objects)}, "
          f"{r2.steps} steps, {tracer2.reuse_count} summary reuses")
    print(
        f"\nthe Table 1 effect: query 2 used {r2.steps} steps vs "
        f"{r1.steps} for query 1, reusing {tracer2.reuse_count} summaries "
        "cached under *different* calling contexts — exactly what the "
        "paper notes ad-hoc (context-dependent) caches cannot do."
    )


if __name__ == "__main__":
    main()
