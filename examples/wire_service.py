"""The wire API: JSON queries, a service façade, warm-start persistence.

Run with::

    python examples/wire_service.py

Shows the three layers ISSUE'd over the engine: the versioned protocol
(typed requests/responses in canonical JSON), the ``PointsToService``
dispatcher (the same loop ``repro-serve`` runs over stdio), and summary
persistence — save a store, restart an engine warm, watch it answer the
same queries identically in strictly fewer steps.
"""

import tempfile
from dataclasses import replace
from pathlib import Path

from repro import EnginePolicy, PointsToEngine, build_pag, parse_program
from repro.api import BatchRequest, PointsToService, QueryRequest, encode

SOURCE = """
class Connection { }
class Pool {
  field slot;
  method put(c) { this.slot = c; }
  method borrow() {
    r = this.slot;
    return r;
  }
}
class Main {
  static method main() {
    pool = new Pool;
    conn = new Connection;
    pool.put(conn);
    first = pool.borrow();
    second = pool.borrow();
  }
}
"""


def main():
    pag = build_pag(parse_program(SOURCE))
    policy = EnginePolicy()
    engine = PointsToEngine(pag, policy)
    service = PointsToService(engine)

    # 1. The wire protocol: one JSON line in, one JSON line out.  This
    #    is exactly what `repro-serve` speaks over stdio — any host (an
    #    IDE plugin, another process, a shard server) can drive it.
    print("request/response over the wire:")
    for line in (
        encode(QueryRequest("Main.main", "first")),
        encode(
            BatchRequest(
                queries=(
                    QueryRequest("Main.main", "first"),
                    QueryRequest("Main.main", "second"),
                )
            )
        ),
        '{"kind":"stats","protocol_version":"1.0"}',
        "{malformed",  # errors come back typed, never as tracebacks
    ):
        print(f"  -> {line[:76]}")
        print(f"  <- {service.handle_line(line)[:76]}")

    # 2. Persistence: summaries are pure memos keyed by nominal node
    #    identity, so the whole store serializes.  Save it ...
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "summaries.json"
        snapshot = engine.save_cache(path)
        print(
            f"\nsaved {len(snapshot.entries)} summaries "
            f"({path.stat().st_size} bytes of canonical JSON)"
        )

        # ... and 3. warm-start a "restarted host" from it: answers are
        # element-wise identical, the traversal work strictly smaller.
        cold = PointsToEngine(pag, policy)
        warm = PointsToEngine(pag, replace(policy, warm_start=str(path)))
        items = [("Main.main", "first"), ("Main.main", "second")]
        cold_batch = cold.query_batch(items, dedupe=False)
        warm_batch = warm.query_batch(items, dedupe=False)
        assert [r.pairs for r in cold_batch] == [r.pairs for r in warm_batch]
        print(
            f"cold engine: {cold_batch.stats.steps} steps; warm engine "
            f"(loaded {warm.warm_loaded} summaries): "
            f"{warm_batch.stats.steps} steps, "
            f"hit rate {warm_batch.stats.hit_rate:.0%}"
        )


if __name__ == "__main__":
    main()
