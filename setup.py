"""Optional ahead-of-time build of the native traversal kernel.

The kernel (``src/repro/native/kernel.c``) is a plain C shared library
loaded through :mod:`ctypes` — it has no ``PyInit_*`` entry point and no
dependency on the Python C API.  Building it at install time is purely
an optimisation: if this extension is skipped or fails (no compiler,
exotic toolchain), the wheel still installs and the runtime binding
compiles the shipped ``kernel.c`` on first use — or, failing that too,
the ``native`` traversal impl silently degrades to the pure-Python
``array`` loop with the reason surfaced in engine stats.

Hence every failure path below is non-fatal by design.
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class ctypes_build_ext(build_ext):
    """Build a ctypes-loaded shared object: no ``PyInit_`` symbol is
    exported (there is none), and any build failure downgrades to a
    warning instead of failing the install."""

    def get_export_symbols(self, ext):
        # The default asks for PyInit_<name>, which a ctypes library
        # does not define; export whatever the source exports.
        return None

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - toolchain-specific
            self.warn(
                f"skipping optional native kernel build ({exc}); "
                "the runtime will compile it on demand or fall back "
                "to the pure-Python traversal"
            )


setup(
    ext_modules=[
        Extension(
            # The binding probes for a prebuilt ``_rk*.so`` next to the
            # package before shelling out to a compiler, so the module
            # name must keep the ``_rk`` prefix.
            "repro.native._rk",
            sources=["src/repro/native/kernel.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": ctypes_build_ext},
)
