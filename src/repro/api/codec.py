"""Canonical JSON encoding/decoding for the wire protocol.

One encoding, one validator:

* :func:`encode` renders any protocol dataclass as **canonical JSON** —
  sorted keys, no whitespace, a ``"kind"`` discriminator at the top
  level — so byte-identical messages mean identical requests and
  transcripts diff cleanly;
* :func:`decode_request` / :func:`decode_response` parse and validate a
  line: malformed JSON, a non-object payload, a missing or unknown
  ``kind``, an unsupported major version, missing required fields, or
  ill-typed values all raise a typed
  :class:`~repro.api.protocol.ProtocolError` — never anything else.
  Requests additionally reject *unknown* fields (a server never
  guesses); responses ignore them (a client keeps working when a
  same-major server adds fields — the forward-compatibility half of
  the versioning policy).

The validator derives each message's schema from the dataclass
annotations (``Optional``/``Tuple`` included, nested dataclasses
recursively), so the classes in :mod:`repro.api.protocol` are the single
source of truth for both the Python API and the wire format.  That is
why the annotations must be honest — ``Optional[int]`` where null is
legal — rather than the ``int = None`` drift this layer replaced.
"""

import dataclasses
import json
import typing

from repro.api.protocol import (
    KIND_OF,
    REQUEST_KINDS,
    RESPONSE_KINDS,
    ProtocolError,
    check_version,
)

#: ``typing.get_type_hints`` resolved once per dataclass (the protocol
#: classes are module-level constants, so the cache never invalidates).
_HINTS_CACHE = {}


def _type_hints(cls):
    hints = _HINTS_CACHE.get(cls)
    if hints is None:
        hints = typing.get_type_hints(cls)
        _HINTS_CACHE[cls] = hints
    return hints


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def to_wire(message):
    """The JSON-ready dict form of a protocol dataclass.

    The top-level message carries its ``kind``; nested dataclasses are
    plain field dicts (the decoder recovers their type from the field
    annotation, so repeating the discriminator would be noise).
    """
    cls = type(message)
    kind = KIND_OF.get(cls)
    if kind is None:
        raise ProtocolError(
            "invalid-request", f"{cls.__name__} is not a wire message type"
        )
    payload = _value_to_wire(message)
    payload["kind"] = kind
    return payload


def _value_to_wire(value):
    if dataclasses.is_dataclass(value):
        return {
            f.name: _value_to_wire(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (tuple, list)):
        return [_value_to_wire(item) for item in value]
    return value


def encode(message):
    """Canonical JSON for one message: sorted keys, compact separators."""
    return json.dumps(to_wire(message), sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# decoding + strict validation
# ----------------------------------------------------------------------
def decode_request(text):
    """Parse one request line; raises :class:`ProtocolError` on anything
    that is not a well-formed, version-compatible request."""
    return _decode(text, REQUEST_KINDS, "request")


def decode_response(text):
    """Parse one response line (the client side of the wire).

    Unlike requests — which a server must validate strictly — responses
    are decoded *forward-compatibly*: fields this build does not know
    are ignored when the major version matches.  That is what makes the
    versioning policy real: a minor revision may add response fields,
    and a client built before the addition must keep decoding the new
    server's replies (requests stay strict, so the old client also
    never emits anything the server would have to guess about).
    """
    return _decode(text, RESPONSE_KINDS, "response", ignore_unknown=True)


# ----------------------------------------------------------------------
# the transport id envelope (protocol 1.4)
# ----------------------------------------------------------------------
# The async tier multiplexes many in-flight requests per socket by
# correlating each response with its request's ``"id"`` — a top-level
# JSON key that belongs to the *transport*, not the message schema (the
# strict request validator has never heard of it).  These helpers strip
# the id before decoding and graft it back onto the response line.


def split_request_id(line):
    """``(line_without_id, request_id)`` for one raw request line.

    Lines without an ``"id"`` key pass through untouched (``None`` id),
    so the envelope costs nothing on the common single-flight path.
    Malformed JSON also passes through — the downstream decoder owns
    producing the typed error for it.  Ids may be strings or ints (the
    JSON scalars that compare reliably); anything else is rejected with
    a :class:`ProtocolError` so a client can never desynchronise its
    correlation table silently.
    """
    if '"id"' not in line:
        return line, None
    try:
        payload = json.loads(line)
    except (ValueError, TypeError, RecursionError):
        return line, None
    if not isinstance(payload, dict) or "id" not in payload:
        return line, None
    request_id = payload.pop("id")
    if not isinstance(request_id, (str, int)) or isinstance(request_id, bool):
        raise ProtocolError(
            "invalid-request",
            f"transport id must be a string or integer, got "
            f"{type(request_id).__name__}",
        )
    return json.dumps(payload, sort_keys=True, separators=(",", ":")), request_id


def attach_response_id(line, request_id):
    """Graft a transport ``"id"`` onto an encoded response line."""
    if request_id is None:
        return line
    payload = json.loads(line)
    payload["id"] = request_id
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _decode(text, registry, direction, ignore_unknown=False):
    try:
        payload = json.loads(text)
    except (ValueError, TypeError, RecursionError) as exc:
        # RecursionError: pathologically nested input must yield the
        # same typed error as any other malformed line, not a crash.
        raise ProtocolError("malformed-json", f"not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            "invalid-request",
            f"a {direction} must be a JSON object, got {type(payload).__name__}",
        )
    version = payload.get("protocol_version")
    if version is None:
        raise ProtocolError(
            "invalid-request", f"{direction} is missing 'protocol_version'"
        )
    check_version(version)
    kind = payload.get("kind")
    if kind is None:
        raise ProtocolError("invalid-request", f"{direction} is missing 'kind'")
    cls = registry.get(kind)
    if cls is None:
        known = ", ".join(sorted(registry))
        raise ProtocolError(
            "unknown-kind", f"unknown {direction} kind {kind!r}; known: {known}"
        )
    return build_message(cls, payload, path=kind, ignore_unknown=ignore_unknown)


def build_message(cls, payload, path, ignore_unknown=False):
    """Validate ``payload`` against ``cls``'s annotations and build it.

    Exposed for the snapshot layer, which embeds protocol structs
    (:class:`~repro.analysis.summaries.CacheStats`) in its own format.
    ``ignore_unknown`` is the response-side forward-compatibility rule
    (see :func:`decode_response`); known fields are always validated
    strictly either way.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            "invalid-request",
            f"{path}: expected an object, got {type(payload).__name__}",
        )
    hints = _type_hints(cls)
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(payload) - known - {"kind"}
    if unknown and not ignore_unknown:
        raise ProtocolError(
            "invalid-request",
            f"{path}: unknown field(s) {sorted(unknown)!r}",
        )
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.name in payload:
            kwargs[f.name] = _coerce(
                payload[f.name], hints[f.name], f"{path}.{f.name}", ignore_unknown
            )
        elif (
            f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        ):
            raise ProtocolError(
                "invalid-request", f"{path}: missing required field {f.name!r}"
            )
    return cls(**kwargs)


def _coerce(value, annotation, path, ignore_unknown=False):
    """Check ``value`` against one annotation, recursively; JSON arrays
    become tuples, nested objects become their annotated dataclass."""
    if annotation is typing.Any:
        # Opaque JSON payload: the field carries a foreign format (the
        # store-level ops carry snapshot entries/keys) whose validation
        # belongs to that format's own checker, not the wire schema —
        # the dispatcher validates it before trusting it.
        return value
    origin = typing.get_origin(annotation)
    if origin is typing.Union:  # Optional[X] is Union[X, None]
        args = typing.get_args(annotation)
        if type(None) in args and value is None:
            return None
        non_null = [a for a in args if a is not type(None)]
        if len(non_null) == 1:
            return _coerce(value, non_null[0], path, ignore_unknown)
        raise ProtocolError(
            "invalid-request", f"{path}: unsupported union annotation {annotation!r}"
        )
    if origin is tuple:
        (item_type, ellipsis) = typing.get_args(annotation)
        assert ellipsis is Ellipsis, f"non-variadic tuple annotation at {path}"
        if not isinstance(value, (list, tuple)):
            raise ProtocolError(
                "invalid-request",
                f"{path}: expected an array, got {type(value).__name__}",
            )
        return tuple(
            _coerce(item, item_type, f"{path}[{i}]", ignore_unknown)
            for i, item in enumerate(value)
        )
    if dataclasses.is_dataclass(annotation):
        return build_message(annotation, value, path, ignore_unknown)
    if annotation is bool:
        if not isinstance(value, bool):
            raise ProtocolError(
                "invalid-request",
                f"{path}: expected a boolean, got {type(value).__name__}",
            )
        return value
    if annotation is int:
        # bool is an int subclass; true/false are not integers on the wire.
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProtocolError(
                "invalid-request",
                f"{path}: expected an integer, got {type(value).__name__}",
            )
        return value
    if annotation is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(
                "invalid-request",
                f"{path}: expected a number, got {type(value).__name__}",
            )
        return float(value)
    if annotation is str:
        if not isinstance(value, str):
            raise ProtocolError(
                "invalid-request",
                f"{path}: expected a string, got {type(value).__name__}",
            )
        return value
    raise ProtocolError(
        "invalid-request", f"{path}: unsupported annotation {annotation!r}"
    )
