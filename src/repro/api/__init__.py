"""The versioned wire API: serializable queries, results, and summaries.

This package is the engine's external surface — everything a process
boundary needs to speak points-to:

* :mod:`repro.api.protocol` — frozen, versioned request/response
  dataclasses (the engine vocabulary ``query``/``batch``/``alias``/
  ``invalidate``/``stats`` plus, since 1.1, the store-level ops
  ``lookup``/``store``/``store-stats`` the cache service speaks) and
  the typed error hierarchy;
* :mod:`repro.api.codec` — canonical JSON with strict,
  annotation-derived validation (malformed input yields a typed
  :class:`ProtocolError`, never a traceback);
* :mod:`repro.api.snapshot` — the ``SummarySnapshot`` format:
  summary stores round-trip to JSON preserving entries, LRU recency,
  capacity policy, and counters (the warm-start/persistence seam);
* :mod:`repro.api.service` — :class:`PointsToService`, dispatching
  decoded requests to a :class:`~repro.engine.core.PointsToEngine`,
  plus the ``repro-serve`` JSON-lines stdio server.

.. code-block:: python

    from repro.api import PointsToService, decode_request, encode

    service = PointsToService(engine)
    print(service.handle_line('{"kind":"stats","protocol_version":"1.0"}'))

    engine.save_cache("cache.json")                     # persistence...
    warm = EnginePolicy(warm_start="cache.json")        # ...and warm start
"""

from repro.api.codec import decode_request, decode_response, encode, to_wire
from repro.api.protocol import (
    PROTOCOL_VERSION,
    REQUEST_KINDS,
    RESPONSE_KINDS,
    AliasRequest,
    AliasResponse,
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    InvalidateRequest,
    InvalidateResponse,
    LookupRequest,
    LookupResponse,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    RemoteStoreStats,
    SnapshotError,
    StatsRequest,
    StatsResponse,
    StoreRequest,
    StoreResponse,
    StoreStatsRequest,
    StoreStatsResponse,
    WireError,
    WireObject,
    WireVerdict,
    check_version,
)
from repro.api.service import CLIENT_REGISTRY, PointsToService
from repro.api.snapshot import (
    SNAPSHOT_VERSION,
    SummarySnapshot,
    load_snapshot,
    load_store,
    save_store,
)

__all__ = [
    "AliasRequest",
    "AliasResponse",
    "BatchRequest",
    "BatchResponse",
    "CLIENT_REGISTRY",
    "ErrorResponse",
    "InvalidateRequest",
    "InvalidateResponse",
    "LookupRequest",
    "LookupResponse",
    "PROTOCOL_VERSION",
    "PointsToService",
    "ProtocolError",
    "QueryRequest",
    "QueryResponse",
    "REQUEST_KINDS",
    "RESPONSE_KINDS",
    "RemoteStoreStats",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "StatsRequest",
    "StatsResponse",
    "StoreRequest",
    "StoreResponse",
    "StoreStatsRequest",
    "StoreStatsResponse",
    "SummarySnapshot",
    "WireError",
    "WireObject",
    "WireVerdict",
    "check_version",
    "decode_request",
    "decode_response",
    "encode",
    "load_snapshot",
    "load_store",
    "save_store",
    "to_wire",
]
