"""The service façade: decoded wire requests in, typed responses out.

:class:`PointsToService` sits between the wire and a
:class:`~repro.engine.core.PointsToEngine`: it resolves nominal node
references, runs queries/batches/alias checks/invalidations through the
engine's ordinary session surface, attaches client verdicts when a
request names one of the registered analysis clients, and renders every
failure as a structured :class:`~repro.api.protocol.ErrorResponse` — by
construction, no input reachable over the wire can surface a Python
traceback.

Two transports ship here:

* :meth:`PointsToService.handle` / :meth:`handle_line` — embed the
  service in any host (tests drive these directly);
* :meth:`serve` + :func:`main` — a JSON-lines stdio loop, installed as
  the ``repro-serve`` console script: one request per line on stdin, one
  response per line on stdout, diagnostics on stderr.  This is the
  process boundary the ROADMAP's shard servers and multi-process
  fan-out will speak.

.. code-block:: console

   $ repro-serve --program vector.pir
   {"kind":"query","method":"Main.main","var":"s1","protocol_version":"1.0"}
   {"complete":true,"kind":"query-result","objects":[...],...}
"""

import argparse
import sys

from repro.api.codec import decode_request, encode
from repro.api.protocol import (
    PROTOCOL_VERSION,
    AliasRequest,
    AliasResponse,
    BatchRequest,
    BatchResponse,
    BatchInvalidateRequest,
    BatchInvalidateResponse,
    BatchLookupRequest,
    BatchLookupResponse,
    BatchStoreRequest,
    BatchStoreResponse,
    ErrorResponse,
    InvalidateRequest,
    InvalidateResponse,
    LookupRequest,
    LookupResponse,
    MethodEntriesRequest,
    MethodEntriesResponse,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    StatsResponse,
    StoreRequest,
    StoreResponse,
    StoreStatsRequest,
    StoreStatsResponse,
    WireError,
    WireObject,
)
from repro.analysis.ppta import TRAVERSAL_IMPLS, traversal_impl
from repro.cfl.budget import DEFAULT_BUDGET
from repro.cfl.stacks import Stack
from repro.clients import ALL_CLIENTS
from repro.clients.base import Query
from repro.engine import CachePolicy, EnginePolicy, PointsToEngine
from repro.engine.scheduler import QuerySpec
from repro.util.errors import IRError

#: Client classes addressable over the wire, by their Table 4 names.
CLIENT_REGISTRY = {cls.name: cls for cls in ALL_CLIENTS}


def _wire_objects(result):
    """A :class:`~repro.analysis.base.QueryResult`'s pairs as sorted
    :class:`WireObject`\\ s (one per object, contexts grouped)."""
    by_obj = {}
    for obj, ctx in result.pairs:
        by_obj.setdefault(obj, []).append(ctx.to_tuple())
    return tuple(
        WireObject(
            id=str(obj.object_id),
            class_name=obj.class_name,
            contexts=tuple(sorted(by_obj[obj])),
        )
        for obj in sorted(by_obj, key=lambda o: str(o.object_id))
    )


class PointsToService:
    """Dispatches decoded protocol requests to one engine."""

    def __init__(self, engine):
        self.engine = engine
        self._clients = {}

    @classmethod
    def for_program(cls, program, policy=None):
        """A service over a freshly built engine for ``program``."""
        from repro.pag.builder import build_pag

        return cls(PointsToEngine(build_pag(program), policy))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(self, request):
        """Answer one decoded request; every failure becomes a typed
        :class:`ErrorResponse` (tracebacks stop here)."""
        try:
            return self._dispatch(request)
        except WireError as exc:
            return ErrorResponse(code=exc.code, message=str(exc))
        except IRError as exc:
            return ErrorResponse(code="unknown-node", message=str(exc))
        except Exception as exc:  # the no-traceback guarantee of the wire
            return ErrorResponse(
                code="internal-error", message=f"{type(exc).__name__}: {exc}"
            )

    def handle_line(self, line):
        """Decode one request line, dispatch, encode the response."""
        try:
            request = decode_request(line)
        except WireError as exc:
            return encode(ErrorResponse(code=exc.code, message=str(exc)))
        return encode(self.handle(request))

    def serve(self, input_stream, output_stream):
        """The JSON-lines loop: one request per line, one response per
        line, until EOF.  Blank lines are ignored."""
        for line in input_stream:
            line = line.strip()
            if not line:
                continue
            output_stream.write(self.handle_line(line))
            output_stream.write("\n")
            output_stream.flush()

    def _dispatch(self, request):
        if isinstance(request, QueryRequest):
            return self._handle_query(request)
        if isinstance(request, BatchRequest):
            return self._handle_batch(request)
        if isinstance(request, AliasRequest):
            return self._handle_alias(request)
        if isinstance(request, InvalidateRequest):
            dropped = self.engine.invalidate_method(request.method)
            return InvalidateResponse(method=request.method, dropped=dropped)
        if isinstance(request, StatsRequest):
            return self._handle_stats()
        if isinstance(request, LookupRequest):
            return self._handle_lookup(request)
        if isinstance(request, StoreRequest):
            return self._handle_store(request)
        if isinstance(request, StoreStatsRequest):
            store = self._require_store()
            return StoreStatsResponse(
                shard=0, shards=1, stats=store.stats_snapshot()
            )
        if isinstance(request, BatchLookupRequest):
            return BatchLookupResponse(
                entries=tuple(
                    self._handle_lookup(LookupRequest(key=key)).entry
                    for key in request.keys
                )
            )
        if isinstance(request, BatchStoreRequest):
            return BatchStoreResponse(
                stored=tuple(
                    self._handle_store(StoreRequest(entry=entry)).stored
                    for entry in request.entries
                )
            )
        if isinstance(request, BatchInvalidateRequest):
            return BatchInvalidateResponse(
                dropped=tuple(
                    self.engine.invalidate_method(method)
                    for method in request.methods
                )
            )
        if isinstance(request, MethodEntriesRequest):
            return self._handle_fetch_methods(request)
        raise ProtocolError(
            "unknown-kind", f"cannot dispatch {type(request).__name__}"
        )

    # ------------------------------------------------------------------
    # per-kind handlers
    # ------------------------------------------------------------------
    def _client(self, name):
        instance = self._clients.get(name)
        if instance is None:
            cls = CLIENT_REGISTRY.get(name)
            if cls is None:
                known = ", ".join(sorted(CLIENT_REGISTRY))
                raise WireError(
                    "unknown-client", f"unknown client {name!r}; known: {known}"
                )
            instance = self._clients[name] = cls(self.engine.pag)
        return instance

    def _spec(self, request):
        """A scheduler :class:`QuerySpec` for one :class:`QueryRequest`,
        with the client predicate and dedup token bundled when the
        request names a client.  Returns ``(spec, client, query)``."""
        node = self.engine.pag.find_local(request.method, request.var)
        context = Stack.of(*request.context)
        if request.client is None:
            return QuerySpec(node, context), None, None
        client = self._client(request.client)
        query = Query(
            client=request.client,
            method=request.method,
            var=request.var,
            payload=tuple(request.payload),
        )
        try:
            predicate = client.predicate(query)
        except Exception as exc:
            raise ProtocolError(
                "invalid-request",
                f"client {request.client!r} rejects payload "
                f"{request.payload!r}: {exc}",
            ) from None
        return (
            QuerySpec(
                node,
                context,
                client=predicate,
                token=(query.client, query.payload),
                origin=query,
            ),
            client,
            query,
        )

    def _query_response(self, result, client=None, query=None):
        verdict = None
        if client is not None:
            verdict = client.verdict(query, result).to_wire()
        return QueryResponse(
            objects=_wire_objects(result),
            complete=result.complete,
            steps=result.steps,
            verdict=verdict,
        )

    def _handle_query(self, request):
        spec, client, query = self._spec(request)
        result = self.engine.query(spec)
        return self._query_response(result, client, query)

    def _handle_batch(self, request):
        specs, clients, queries = [], [], []
        for item in request.queries:
            spec, client, query = self._spec(item)
            specs.append(spec)
            clients.append(client)
            queries.append(query)
        batch = self.engine.query_batch(
            specs, dedupe=request.dedupe, reorder=request.reorder
        )
        results = tuple(
            self._query_response(result, client, query)
            for result, client, query in zip(batch.results, clients, queries)
        )
        return BatchResponse(results=results, stats=batch.stats)

    def _handle_alias(self, request):
        result = self.engine.alias(
            (request.method1, request.var1),
            (request.method2, request.var2),
            Stack.of(*request.context1),
            Stack.of(*request.context2),
        )
        witnesses = tuple(sorted(str(obj.object_id) for obj in result.witnesses))
        return AliasResponse(
            verdict=result.verdict, witnesses=witnesses, steps=result.steps
        )

    def _handle_stats(self):
        stats = self.engine.stats()
        return StatsResponse(
            analysis=stats.analysis,
            queries=stats.queries,
            executed=stats.executed,
            batches=stats.batches,
            deduped=stats.deduped,
            steps=stats.steps,
            incomplete=stats.incomplete,
            edits=stats.edits,
            cache=stats.cache,
            warm_loaded=stats.warm_loaded,
            warm_skipped=stats.warm_skipped,
            csr_warm=stats.csr_warm,
            remote=stats.remote,
            traversal_impl=stats.traversal_impl,
            native_unavailable=stats.native_unavailable,
        )

    # ------------------------------------------------------------------
    # store-level ops — the engine's summary store over the wire
    # ------------------------------------------------------------------
    def _require_store(self):
        store = self.engine.cache
        if store is None:
            raise WireError(
                "no-store",
                f"analysis {self.engine.analysis.name} has no summary "
                "store to address",
            )
        return store

    def _handle_lookup(self, request):
        from repro.api.snapshot import (
            check_key,
            entry_to_wire,
            resolve_node,
            stack_from_wire,
        )

        store = self._require_store()
        key = check_key(request.key, "lookup.key")
        node = resolve_node(self.engine.pag, key["node"])
        if node is None:
            # Not an error: the key names an entity this program version
            # does not have, so the store cannot hold a summary for it.
            return LookupResponse(found=False)
        stack = stack_from_wire(key["stack"], "lookup.key.stack")
        summary = store.lookup(node, stack, key["state"])
        if summary is None:
            return LookupResponse(found=False)
        return LookupResponse(
            found=True, entry=entry_to_wire(node, stack, key["state"], summary)
        )

    def _handle_store(self, request):
        from repro.api.snapshot import check_entry, resolve_wire_entry

        store = self._require_store()
        check_entry(request.entry, "store.entry")
        resolved = resolve_wire_entry(self.engine.pag, request.entry)
        if resolved is None:
            # A summary for a different program version is not ours to
            # keep — refusing is correctness-neutral (it is only a memo).
            return StoreResponse(stored=False)
        node, stack, state, summary = resolved
        # store() reports whether contents changed: True for a new key
        # or a differing summary replacing the resident one (the shard
        # servers' self-heal rule), False for an equal re-store.
        return StoreResponse(stored=store.store(node, stack, state, summary))

    def _handle_fetch_methods(self, request):
        from repro.api.snapshot import entry_to_wire

        store = self._require_store()
        wanted = set(request.methods) if request.methods is not None else None
        entries = []
        for (node, stack, state), summary in store.entries_by_recency(
            hottest_first=False
        ):
            if wanted is not None and getattr(node, "method", None) not in wanted:
                continue
            entries.append(entry_to_wire(node, stack, state, summary))
        return MethodEntriesResponse(entries=tuple(entries))

    def __repr__(self):
        return f"PointsToService({self.engine!r})"


# ----------------------------------------------------------------------
# the `repro-serve` console entry point
# ----------------------------------------------------------------------
def _build_engine(args):
    if args.benchmark is not None:
        from repro.bench.suite import load_benchmark

        instance = load_benchmark(args.benchmark, scale=args.scale)
        pag = instance.pag
    else:
        from repro.ir.parser import parse_program
        from repro.pag.builder import build_pag

        with open(args.program, "r", encoding="utf-8") as handle:
            source = handle.read()
        pag = build_pag(parse_program(source, entry=args.entry))
    remote = None
    if args.remote:
        from repro.cacheserver.client import parse_addresses

        remote = parse_addresses(args.remote)
    policy = EnginePolicy(
        analysis=args.analysis,
        budget=args.budget,
        max_field_depth=args.max_field_depth,
        parallelism=args.parallelism,
        cache=CachePolicy(
            max_entries=args.max_entries,
            max_facts=args.max_facts,
            shards=args.shards,
            eviction=args.eviction,
            remote=remote,
            remote_timeout=args.remote_timeout,
            # Tri-state: None = pipelined iff remote (the policy's own
            # default); an explicit --remote-pipeline/--no-remote-pipeline
            # wins.  Without --remote the flag is inert either way.
            remote_pipeline=args.remote_pipeline if remote else None,
        ),
        warm_start=args.warm_start,
    )
    return PointsToEngine(pag, policy)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve points-to queries over JSON lines (protocol "
            f"{PROTOCOL_VERSION}): one request per stdin line, one "
            "response per stdout line."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--program", metavar="PATH", help="PIR source file to serve")
    source.add_argument(
        "--benchmark", metavar="NAME", help="serve a named synthetic benchmark"
    )
    parser.add_argument(
        "--entry", default="Main.main", help="program entry point (default Main.main)"
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="benchmark size multiplier"
    )
    parser.add_argument("--analysis", default="DYNSUM", help="analysis to serve")
    parser.add_argument(
        "--budget", type=int, default=DEFAULT_BUDGET, help="per-query step budget"
    )
    parser.add_argument("--max-field-depth", type=int, default=None)
    parser.add_argument("--parallelism", type=int, default=None)
    parser.add_argument("--max-entries", type=int, default=None)
    parser.add_argument("--max-facts", type=int, default=None)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument(
        "--eviction",
        choices=("lru", "cost"),
        default="lru",
        help="capacity eviction policy for a bounded store",
    )
    parser.add_argument(
        "--remote",
        metavar="ADDR,ADDR,...",
        default=None,
        help=(
            "join a shared summary-cache service: comma-separated "
            "host:port shard-server addresses, in shard order (what "
            "repro-cached prints)"
        ),
    )
    parser.add_argument(
        "--remote-timeout",
        type=float,
        default=1.0,
        help="per-operation socket timeout for the shared cache (seconds)",
    )
    parser.add_argument(
        "--remote-pipeline",
        dest="remote_pipeline",
        action="store_true",
        default=None,
        help=(
            "pipelined shared-cache mode (protocol 1.2): per-shard "
            "prefetch at batch start, coalesced batch-store flushes at "
            "batch end — the default whenever --remote is set"
        ),
    )
    parser.add_argument(
        "--no-remote-pipeline",
        dest="remote_pipeline",
        action="store_false",
        help="immediate write-through to the shared cache (publish every "
        "memo as it is computed instead of coalescing per batch)",
    )
    parser.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help=(
            "serve the same protocol over TCP on one asyncio event loop "
            "(port 0 = OS pick; clients may multiplex requests by "
            "tagging lines with an \"id\") instead of stdio"
        ),
    )
    parser.add_argument(
        "--warm-start",
        metavar="PATH",
        default=None,
        help="summary snapshot to preload before serving",
    )
    parser.add_argument(
        "--save-cache",
        metavar="PATH",
        default=None,
        help="write a summary snapshot to PATH on EOF",
    )
    parser.add_argument(
        "--save-csr",
        action="store_true",
        help=(
            "embed the compiled CSR traversal image in the --save-cache "
            "snapshot (binary container); a later --warm-start maps it "
            "zero-copy and skips graph recompilation"
        ),
    )
    parser.add_argument(
        "--traversal-impl",
        choices=sorted(TRAVERSAL_IMPLS),
        default=None,
        help="pin the PPTA traversal implementation while serving "
        "(default: the process default)",
    )
    args = parser.parse_args(argv)
    if args.save_csr and args.save_cache is None:
        parser.error("--save-csr requires --save-cache")

    try:
        engine = _build_engine(args)
        if args.save_cache is not None:
            # Fail before serving, not at EOF: cache-less analyses have
            # nothing to save (same check save_cache itself performs).
            engine._require_cache("save")
    except (WireError, IRError, OSError, KeyError, ValueError) as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    if engine.warm_loaded or engine.warm_skipped:
        print(
            f"repro-serve: warm start loaded {engine.warm_loaded} "
            f"summaries ({engine.warm_skipped} skipped)",
            file=sys.stderr,
        )
    print(
        f"repro-serve: serving {args.analysis} over "
        f"{args.benchmark or args.program} (protocol {PROTOCOL_VERSION})",
        file=sys.stderr,
    )
    service = PointsToService(engine)

    def run_transport():
        if args.listen is None:
            service.serve(sys.stdin, sys.stdout)
            return 0
        # TCP mode: the whole service behind the asyncio line server —
        # the engine tier scales the same way the cache tier does.
        import json
        import signal

        from repro.cacheserver.aserver import AsyncLineServer

        host, _, port = args.listen.rpartition(":")
        if not host or not port.isdigit():
            print(
                f"repro-serve: --listen wants HOST:PORT, got {args.listen!r}",
                file=sys.stderr,
            )
            return 2
        # dispatch_workers=1: PointsToService wraps a single engine with
        # no internal locking, so dispatch must stay single-threaded —
        # one worker keeps the strict handler serialization while still
        # taking dispatch off the event loop.
        server = AsyncLineServer(
            service.handle_line, host=host, port=int(port), dispatch_workers=1
        )
        print(
            json.dumps(
                {
                    "event": "listening",
                    "host": server.host,
                    "port": server.port,
                    "protocol": PROTOCOL_VERSION,
                },
                sort_keys=True,
            )
        )
        sys.stdout.flush()

        def shutdown(signum, frame):
            server.stop()  # graceful drain; serve_forever then returns

        signal.signal(signal.SIGTERM, shutdown)
        signal.signal(signal.SIGINT, shutdown)
        server.serve_forever()
        return 0

    if args.traversal_impl is not None:
        with traversal_impl(args.traversal_impl):
            status = run_transport()
    else:
        status = run_transport()
    if status:
        return status
    if args.save_cache is not None:
        try:
            snapshot = engine.save_cache(args.save_cache, csr=args.save_csr)
        except (WireError, IRError, OSError) as exc:
            print(f"repro-serve: {exc}", file=sys.stderr)
            return 2
        print(
            f"repro-serve: saved {len(snapshot.entries)} summaries "
            f"{'+ CSR image ' if args.save_csr else ''}to {args.save_cache}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
