"""Summary-store serialization: the ``SummarySnapshot`` format.

DYNSUM summaries are pure, context-independent memos keyed by *nominal*
node identity — ``(method, var)`` for locals, stable allocation labels
for objects — which makes the whole store a durable artifact: saved by
one process, replayed by another (a restarted IDE host, the next CI
run), or shipped to a remote shard server.  A snapshot round-trips all
three store classes (:class:`~repro.analysis.summaries.SummaryCache`,
:class:`~repro.analysis.summaries.BoundedSummaryCache`,
:class:`~repro.analysis.summaries.ShardedSummaryCache`) and preserves

* every entry — key node, field stack, direction, and the summary's
  objects and boundary tuples;
* **LRU recency order** — entries are recorded coldest-first, so
  replaying them through ``store()`` reconstructs each (shard's) LRU
  order exactly;
* the **capacity policy** (``max_entries``/``max_facts``/``shards``) and
  the lifetime counters of :class:`~repro.analysis.summaries.CacheStats`
  (per shard for sharded stores — counters are per-shard state).

Loading is paranoid: a snapshot whose recorded stats disagree with its
own entries, whose version is unsupported, or whose structure is damaged
raises a typed :class:`~repro.api.protocol.SnapshotError` — never a
traceback.  Node references resolve against a PAG at load time; under
``strict=True`` an unresolvable entry is an error, under
``strict=False`` it is skipped (a summary is a memo — skipping one can
change cost, never answers), which is what engine warm-start uses when
the program may have drifted since the save.
"""

import json
import mmap
import struct

from repro.analysis.ppta import PptaResult
from repro.analysis.summaries import (
    BoundedSummaryCache,
    CacheStats,
    CostAwareSummaryCache,
    ShardedSummaryCache,
    SummaryCache,
    check_eviction,
)
from repro.api.codec import build_message
from repro.api.protocol import ProtocolError, SnapshotError, split_version
from repro.cfl.rsm import S1, S2
from repro.cfl.stacks import Stack
from repro.util.errors import IRError

#: Version of the snapshot format — "<major>.<minor>", checked on load
#: like the wire protocol's (major must match, minor may drift).  1.1
#: added two optional fields: per-entry ``steps`` (the recomputation
#: cost cost-aware eviction ranks by) and a top-level ``eviction``
#: policy name; 1.0 snapshots load unchanged (steps default to 0).
SNAPSHOT_VERSION = "1.1"

_KIND = "summary-snapshot"

_STORE_UNBOUNDED = "unbounded"
_STORE_BOUNDED = "bounded"
_STORE_SHARDED = "sharded"


# ----------------------------------------------------------------------
# node references — nominal identity on the wire
#
# These helpers are the *format*: the snapshot below, the store-level
# wire ops (repro.api protocol 1.1) and the cache-service transport
# (repro.cacheserver) all serialize keys and entries through them, so
# one summary has exactly one wire form everywhere.
# ----------------------------------------------------------------------
def node_to_wire(node):
    if node.is_local_var:
        return {"kind": "local", "method": node.method, "name": node.name}
    if node.is_object:
        return {
            "kind": "object",
            "id": node.object_id,
            "class": node.class_name,
            "method": node.method,
        }
    if node.is_global_var:
        return {"kind": "global", "class": node.class_name, "field": node.field}
    raise SnapshotError(f"cannot serialize node {node!r} of type {type(node).__name__}")


def _check_node_wire(wire, path):
    if not isinstance(wire, dict):
        raise SnapshotError(f"{path}: node reference must be an object")
    kind = wire.get("kind")
    required = {
        "local": ("method", "name"),
        "object": ("id", "class", "method"),
        "global": ("class", "field"),
    }.get(kind)
    if required is None:
        raise SnapshotError(f"{path}: unknown node kind {kind!r}")
    for key in required:
        value = wire.get(key)
        if not isinstance(value, str) and not (key == "method" and value is None):
            raise SnapshotError(f"{path}: node field {key!r} must be a string")
    return wire


def resolve_node(pag, wire):
    """The interned PAG node a reference names, or ``None`` when the
    entity no longer exists in this program version."""
    kind = wire["kind"]
    try:
        if kind == "local":
            return pag.find_local(wire["method"], wire["name"])
        if kind == "global":
            return pag.find_global(wire["class"], wire["field"])
        node = pag.object_node(wire["id"])
    except IRError:
        return None
    # Allocation labels are stable per program version but an edit can
    # reuse one for a different class; a mismatch means "not the same
    # object", so the entry must not be re-anchored onto it.
    if node.class_name != wire["class"]:
        return None
    return node


def stack_to_wire(stack):
    return [list(item) for item in stack.to_tuple()]


def stack_from_wire(wire, path):
    if not isinstance(wire, list):
        raise SnapshotError(f"{path}: field stack must be an array")
    items = []
    for i, item in enumerate(wire):
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 2
            or not isinstance(item[0], str)
            or item[1] not in (0, 1)
        ):
            raise SnapshotError(
                f"{path}[{i}]: field-stack entry must be [field, family(0|1)]"
            )
        items.append((item[0], item[1]))
    return Stack.of(*items)


def _check_state(state, path):
    if state not in (S1, S2):
        raise SnapshotError(f"{path}: state must be {S1} (S1) or {S2} (S2)")
    return state


# ----------------------------------------------------------------------
# keys and entries — the unit the store-level wire ops move around
# ----------------------------------------------------------------------
def key_to_wire(node, field_stack, state):
    """The wire form of one store key ``(node, field_stack, state)``."""
    return {
        "node": node_to_wire(node),
        "stack": stack_to_wire(field_stack),
        "state": state,
    }


def check_key(key, path="key"):
    """Structural validation of one wire store key; returns it."""
    if not isinstance(key, dict):
        raise SnapshotError(f"{path}: key must be an object")
    for field in ("node", "stack", "state"):
        if field not in key:
            raise SnapshotError(f"{path}: missing {field!r}")
    unknown = set(key) - {"node", "stack", "state"}
    if unknown:
        raise SnapshotError(f"{path}: unknown field(s) {sorted(unknown)!r}")
    _check_node_wire(key["node"], f"{path}.node")
    stack_from_wire(key["stack"], f"{path}.stack")
    _check_state(key["state"], f"{path}.state")
    return key


def entry_to_wire(node, field_stack, state, summary):
    """The wire form of one cache entry (a snapshot entry)."""
    wire = key_to_wire(node, field_stack, state)
    wire["objects"] = [node_to_wire(obj) for obj in summary.objects]
    wire["boundaries"] = [
        {
            "node": node_to_wire(bnode),
            "stack": stack_to_wire(bstack),
            "state": bstate,
        }
        for bnode, bstack, bstate in summary.boundaries
    ]
    wire["steps"] = summary.steps
    return wire


def resolve_wire_entry(pag, entry):
    """Re-anchor one *validated* wire entry against ``pag``.

    Returns ``(node, field_stack, state, PptaResult)`` or ``None`` when
    any referenced entity no longer exists in this program version —
    summaries are memos, so the caller treats that as a miss.
    """
    node = resolve_node(pag, entry["node"])
    if node is None:
        return None
    stack = stack_from_wire(entry["stack"], "entry.stack")
    state = entry["state"]
    objects = []
    for wire in entry["objects"]:
        obj = resolve_node(pag, wire)
        if obj is None:
            return None
        objects.append(obj)
    boundaries = []
    for boundary in entry["boundaries"]:
        bnode = resolve_node(pag, boundary["node"])
        if bnode is None:
            return None
        boundaries.append(
            (bnode, stack_from_wire(boundary["stack"], "boundary.stack"),
             boundary["state"])
        )
    return node, stack, state, PptaResult(
        objects, boundaries, steps=entry.get("steps", 0)
    )


# ----------------------------------------------------------------------
# the snapshot object
# ----------------------------------------------------------------------
class SummarySnapshot:
    """A validated, store-independent image of one summary store.

    Build with :meth:`capture` (from a live store) or :meth:`loads` /
    :meth:`from_payload` (from serialized form — both validate
    structure, version, and stats/entry reconciliation).  Turn back into
    a store with :meth:`restore` (exact store class, policy, recency and
    counters) or feed an existing store with :meth:`load_into` (warm
    start).
    """

    __slots__ = (
        "store_kind", "shards", "stats", "shard_stats", "entries", "eviction",
        "csr",
    )

    def __init__(self, store_kind, shards, stats, shard_stats, entries,
                 eviction="lru"):
        self.store_kind = store_kind
        self.shards = shards
        self.stats = stats
        self.shard_stats = shard_stats
        self.entries = entries
        self.eviction = eviction
        #: Optional :class:`repro.pag.csr.CsrSection` — present when the
        #: snapshot was read from a binary container that carries a
        #: compiled traversal image (see :func:`save_store` /
        #: :func:`load_snapshot`).  Not part of the JSON payload.
        self.csr = None

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, store):
        """Snapshot a live store (any local backend).

        A remote-backed store (one exposing ``local_tier``) is captured
        as its local read-through tier — the process-local view; the
        shard servers' contents belong to the service, not to this
        client's snapshot.
        """
        local_tier = getattr(store, "local_tier", None)
        if local_tier is not None:
            store = local_tier
        if isinstance(store, ShardedSummaryCache):
            store_kind, shards = _STORE_SHARDED, store.n_shards
            shard_stats = store.shard_snapshots()
        elif isinstance(store, BoundedSummaryCache):
            store_kind, shards, shard_stats = _STORE_BOUNDED, None, None
        elif isinstance(store, SummaryCache):
            store_kind, shards, shard_stats = _STORE_UNBOUNDED, None, None
        else:
            raise SnapshotError(
                f"cannot snapshot a {type(store).__name__}; expected one of "
                "SummaryCache, BoundedSummaryCache, ShardedSummaryCache"
            )
        entries = [
            entry_to_wire(node, stack, state, summary)
            # Coldest-first, so replaying store() rebuilds recency order.
            for (node, stack, state), summary in store.entries_by_recency(
                hottest_first=False
            )
        ]
        return cls(
            store_kind,
            shards,
            store.stats_snapshot(),
            shard_stats,
            entries,
            eviction=getattr(store, "eviction", "lru"),
        )

    # ------------------------------------------------------------------
    # serialized form
    # ------------------------------------------------------------------
    def to_payload(self):
        payload = {
            "kind": _KIND,
            "snapshot_version": SNAPSHOT_VERSION,
            "store": self.store_kind,
            "shards": self.shards,
            "stats": _stats_to_wire(self.stats),
            "entries": self.entries,
        }
        if self.eviction != "lru":
            payload["eviction"] = self.eviction
        if self.shard_stats is not None:
            payload["shard_stats"] = [_stats_to_wire(s) for s in self.shard_stats]
        return payload

    def dumps(self):
        """Canonical JSON (sorted keys, compact) of the snapshot."""
        return json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def loads(cls, text):
        try:
            payload = json.loads(text)
        except (ValueError, TypeError, RecursionError) as exc:
            raise SnapshotError(f"snapshot is not valid JSON: {exc}") from None
        return cls.from_payload(payload)

    @classmethod
    def from_payload(cls, payload):
        """Validate a decoded payload: structure, version, and the
        stats/entries reconciliation (recorded entry and fact totals must
        equal what the entry list actually holds)."""
        if not isinstance(payload, dict) or payload.get("kind") != _KIND:
            raise SnapshotError(f"not a {_KIND} payload")
        _check_snapshot_version(payload.get("snapshot_version"))
        store_kind = payload.get("store")
        if store_kind not in (_STORE_UNBOUNDED, _STORE_BOUNDED, _STORE_SHARDED):
            raise SnapshotError(f"unknown store kind {store_kind!r}")
        eviction = payload.get("eviction", "lru")
        try:
            check_eviction(eviction)
        except ValueError as exc:
            raise SnapshotError(str(exc)) from None
        stats = _stats_from_wire(payload.get("stats"), "stats")
        if (
            eviction == "cost"
            and stats.max_entries is None
            and stats.max_facts is None
        ):
            raise SnapshotError(
                "snapshot claims eviction='cost' but records no capacity "
                "ceiling — cost-aware stores are always bounded"
            )
        shards = payload.get("shards")
        shard_stats = None
        if store_kind == _STORE_SHARDED:
            if not isinstance(shards, int) or shards < 1:
                raise SnapshotError("sharded snapshot needs a positive 'shards'")
            raw = payload.get("shard_stats")
            if not isinstance(raw, list) or len(raw) != shards:
                raise SnapshotError(
                    f"sharded snapshot needs exactly {shards} 'shard_stats'"
                )
            shard_stats = [
                _stats_from_wire(s, f"shard_stats[{i}]") for i, s in enumerate(raw)
            ]
        elif shards is not None:
            raise SnapshotError("'shards' is only valid for sharded stores")
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise SnapshotError("'entries' must be an array")
        facts = 0
        for i, entry in enumerate(entries):
            facts += check_entry(entry, f"entries[{i}]")
        if stats.entries != len(entries):
            raise SnapshotError(
                f"recorded stats disagree with entries: stats.entries="
                f"{stats.entries} but {len(entries)} entries are recorded"
            )
        if stats.facts != facts:
            raise SnapshotError(
                f"recorded stats disagree with entries: stats.facts="
                f"{stats.facts} but the entries hold {facts} facts"
            )
        if shard_stats is not None:
            for name, total, per_shard in (
                ("entries", stats.entries, sum(s.entries for s in shard_stats)),
                ("facts", stats.facts, sum(s.facts for s in shard_stats)),
                ("hits", stats.hits, sum(s.hits for s in shard_stats)),
                ("misses", stats.misses, sum(s.misses for s in shard_stats)),
            ):
                if total != per_shard:
                    raise SnapshotError(
                        f"shard stats do not reconcile: aggregate {name}="
                        f"{total} but the shards sum to {per_shard}"
                    )
        return cls(store_kind, shards, stats, shard_stats, entries,
                   eviction=eviction)

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------
    def make_store(self):
        """An empty store with the snapshot's class and capacity policy."""
        if self.store_kind == _STORE_SHARDED:
            return ShardedSummaryCache(
                shards=self.shards,
                max_entries=self.stats.max_entries,
                max_facts=self.stats.max_facts,
                eviction=self.eviction,
            )
        if self.store_kind == _STORE_BOUNDED:
            cls = (
                CostAwareSummaryCache
                if self.eviction == "cost"
                else BoundedSummaryCache
            )
            return cls(
                max_entries=self.stats.max_entries, max_facts=self.stats.max_facts
            )
        return SummaryCache()

    def restore(self, pag, strict=True):
        """Rebuild the snapshotted store against ``pag``.

        With ``strict`` (the default) every entry must resolve and fit —
        the exact round-trip guarantee; ``strict=False`` skips entries
        whose nodes no longer exist.  Lifetime counters are restored
        either way, so ``stats_snapshot()`` of a strict round-trip equals
        the saved one.
        """
        store = self.make_store()
        loaded, skipped = self.load_into(store, pag, strict=strict)
        if strict and len(store) != loaded:
            raise SnapshotError(
                "snapshot entries exceed its own capacity policy: "
                f"{loaded} loaded but only {len(store)} resident"
            )
        if self.shard_stats is not None:
            store.restore_counters(self.shard_stats)
        else:
            store.restore_counters(self.stats)
        return store

    def load_into(self, store, pag, strict=False):
        """Replay the snapshot's entries into an existing ``store``
        (coldest-first, preserving recency), resolving node references
        against ``pag``.  Returns ``(loaded, skipped)``; counters of the
        target store are left alone — a warm start is new traffic, not
        resumed accounting."""
        loaded = skipped = 0
        for i, entry in enumerate(self.entries):
            resolved = self._resolve_entry(pag, entry)
            if resolved is None:
                if strict:
                    raise SnapshotError(
                        f"entries[{i}] does not resolve in this PAG "
                        f"(key node {entry['node']!r})"
                    )
                skipped += 1
                continue
            node, stack, state, summary = resolved
            store.store(node, stack, state, summary)
            loaded += 1
        return loaded, skipped

    @staticmethod
    def _resolve_entry(pag, entry):
        return resolve_wire_entry(pag, entry)

    def __repr__(self):
        return (
            f"SummarySnapshot({self.store_kind}, {len(self.entries)} entries, "
            f"{self.stats.facts} facts)"
        )


# ----------------------------------------------------------------------
# validation helpers
# ----------------------------------------------------------------------
def _check_snapshot_version(version):
    try:
        major, _minor = split_version(version)
    except ProtocolError:
        raise SnapshotError(f"bad snapshot_version {version!r}") from None
    ours, _ = split_version(SNAPSHOT_VERSION)
    if major != ours:
        raise SnapshotError(
            f"unsupported snapshot_version {version!r} "
            f"(this build reads {SNAPSHOT_VERSION})"
        )


def _stats_to_wire(stats):
    return {
        "entries": stats.entries,
        "facts": stats.facts,
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "invalidated": stats.invalidated,
        "approx_bytes": stats.approx_bytes,
        "max_entries": stats.max_entries,
        "max_facts": stats.max_facts,
    }


def _stats_from_wire(wire, path):
    """A validated :class:`CacheStats` from its wire dict — type checking
    is derived from the dataclass annotations via the protocol codec."""
    try:
        return build_message(CacheStats, wire, path)
    except Exception as exc:
        if isinstance(exc, SnapshotError):
            raise
        raise SnapshotError(f"{path}: {exc}") from None


def check_entry(entry, path="entry"):
    """Structural validation of one wire entry; returns its fact count."""
    if not isinstance(entry, dict):
        raise SnapshotError(f"{path}: entry must be an object")
    for key in ("node", "stack", "state", "objects", "boundaries"):
        if key not in entry:
            raise SnapshotError(f"{path}: missing {key!r}")
    _check_node_wire(entry["node"], f"{path}.node")
    stack_from_wire(entry["stack"], f"{path}.stack")
    _check_state(entry["state"], f"{path}.state")
    steps = entry.get("steps", 0)
    if not isinstance(steps, int) or isinstance(steps, bool) or steps < 0:
        raise SnapshotError(f"{path}.steps: must be a non-negative integer")
    if not isinstance(entry["objects"], list) or not isinstance(
        entry["boundaries"], list
    ):
        raise SnapshotError(f"{path}: objects/boundaries must be arrays")
    for i, wire in enumerate(entry["objects"]):
        checked = _check_node_wire(wire, f"{path}.objects[{i}]")
        if checked["kind"] != "object":
            raise SnapshotError(f"{path}.objects[{i}]: must be an object node")
    for i, boundary in enumerate(entry["boundaries"]):
        if not isinstance(boundary, dict):
            raise SnapshotError(f"{path}.boundaries[{i}]: must be an object")
        _check_node_wire(boundary.get("node"), f"{path}.boundaries[{i}].node")
        stack_from_wire(boundary.get("stack"), f"{path}.boundaries[{i}].stack")
        _check_state(boundary.get("state"), f"{path}.boundaries[{i}].state")
    return len(entry["objects"]) + len(entry["boundaries"])


# ----------------------------------------------------------------------
# file convenience — what engine persistence calls
#
# Two on-disk forms share one loader:
#
# * the historical **JSON text file** (the snapshot payload alone);
# * the **binary container** — a fixed big-endian header, the same JSON
#   payload as a section, then a :func:`repro.pag.csr.serialize_csr`
#   CSR section, 16-byte aligned so the loader can ``mmap`` the file
#   and hand the traversal arrays out as zero-copy views of the page
#   cache (no parse, no copy; the kernel shares the pages across
#   processes warm-starting from the same file).
#
# ``load_snapshot`` sniffs the leading magic, so callers never say
# which form they have.
# ----------------------------------------------------------------------
#: Magic + header of the binary container: magic, format major/minor,
#: JSON section length, CSR section offset and length.  Big-endian —
#: the *container* framing is portable; only the CSR payload inside is
#: native-endian (and says so in its own header).
_CONTAINER_MAGIC = b"RSNP"
_CONTAINER_HEADER = struct.Struct("!4sHHQQQ")
_CONTAINER_VERSION = (1, 0)


def _align16(n):
    return (n + 15) & ~15


def save_store(store, path, csr_image=None):
    """Snapshot ``store`` and write it to ``path``; returns the
    :class:`SummarySnapshot`.

    Without ``csr_image`` this writes the canonical JSON text form.
    With one (a :class:`repro.pag.csr.CsrImage`) it writes the binary
    container embedding both the JSON payload and the serialized CSR
    section, which :func:`load_snapshot` maps back zero-copy.
    """
    snapshot = SummarySnapshot.capture(store)
    if csr_image is None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(snapshot.dumps())
            handle.write("\n")
        return snapshot
    from repro.pag.csr import serialize_csr

    json_bytes = snapshot.dumps().encode("utf-8")
    csr_offset = _align16(_CONTAINER_HEADER.size + len(json_bytes))
    csr_bytes = serialize_csr(csr_image)
    header = _CONTAINER_HEADER.pack(
        _CONTAINER_MAGIC,
        _CONTAINER_VERSION[0],
        _CONTAINER_VERSION[1],
        len(json_bytes),
        csr_offset,
        len(csr_bytes),
    )
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(json_bytes)
        handle.write(b"\0" * (csr_offset - _CONTAINER_HEADER.size - len(json_bytes)))
        handle.write(csr_bytes)
    return snapshot


def _load_container(path):
    """Map a binary container and validate both sections."""
    from repro.pag.csr import CsrSection

    try:
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"cannot map snapshot {path!r}: {exc}") from None
    view = memoryview(mapped)
    size = len(view)
    if size < _CONTAINER_HEADER.size:
        raise SnapshotError(f"snapshot {path!r}: truncated container header")
    magic, major, minor, json_len, csr_offset, csr_len = _CONTAINER_HEADER.unpack_from(
        view, 0
    )
    if major != _CONTAINER_VERSION[0]:
        raise SnapshotError(
            f"snapshot {path!r}: unsupported container version {major}.{minor} "
            f"(this build reads {_CONTAINER_VERSION[0]}.x)"
        )
    if _CONTAINER_HEADER.size + json_len > size:
        raise SnapshotError(f"snapshot {path!r}: truncated JSON section")
    if csr_offset + csr_len > size or csr_offset < _CONTAINER_HEADER.size + json_len:
        raise SnapshotError(f"snapshot {path!r}: CSR section out of bounds")
    try:
        text = bytes(view[_CONTAINER_HEADER.size : _CONTAINER_HEADER.size + json_len]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SnapshotError(f"snapshot {path!r}: JSON section not UTF-8: {exc}") from None
    snapshot = SummarySnapshot.loads(text)
    # The section validates its own framing (magic, endianness, CRC,
    # array bounds) and keeps the mapping alive through its buffer ref —
    # the arrays handed out later are views of the page cache.
    snapshot.csr = CsrSection(view, csr_offset, csr_len)
    return snapshot


def load_snapshot(path):
    """Read and validate a snapshot file (JSON text or binary container).

    Container files come back with :attr:`SummarySnapshot.csr` set to
    the mapped CSR section; JSON files with it ``None``.
    """
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(_CONTAINER_MAGIC))
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from None
    if head == _CONTAINER_MAGIC:
        return _load_container(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from None
    except UnicodeDecodeError as exc:
        raise SnapshotError(f"snapshot {path!r} is not UTF-8: {exc}") from None
    return SummarySnapshot.loads(text)


def load_store(path, pag, strict=True):
    """Read a snapshot file and rebuild its store against ``pag``."""
    return load_snapshot(path).restore(pag, strict=strict)
