"""The versioned wire protocol: typed requests, responses, and errors.

Everything the engine can be asked over a process boundary is a frozen
dataclass here, and every message carries ``protocol_version``.  The
paper's premise — DYNSUM summaries are pure, context-independent memos —
makes the engine's whole surface *serializable*: queries name PAG nodes
nominally (``(method, var)``), results name objects by their stable
allocation labels, and summary stores round-trip through
:mod:`repro.api.snapshot`.  This module is the vocabulary; the canonical
JSON encoding and strict validation live in :mod:`repro.api.codec`, and
the dispatcher in :mod:`repro.api.service`.

Versioning policy
-----------------
``PROTOCOL_VERSION`` is ``"<major>.<minor>"``.  A decoder accepts any
message whose *major* version matches its own (minor revisions may only
add optional fields); a major mismatch is rejected with a structured
:class:`ErrorResponse` — never a traceback.  The pair of decode rules
that makes minor drift actually safe: request decoding rejects unknown
fields (servers never guess), response decoding ignores them (clients
built before a minor revision keep decoding the new server's replies).  The summary-snapshot format
(:data:`repro.api.snapshot.SNAPSHOT_VERSION`) is versioned separately:
snapshots are durable artifacts with a different compatibility lifetime
than request/response traffic.

Request vocabulary
------------------
``query``       one points-to query, optionally with a client verdict;
``batch``       many queries as one scheduled batch;
``alias``       a may-alias check between two variables;
``invalidate``  drop one method's cached summaries (the IDE edit hook,
                and the store-level ``invalidate_method`` op);
``stats``       the engine's lifetime accounting.

Store-level vocabulary (protocol 1.1)
-------------------------------------
The summary store itself is addressable over the wire — this is what the
:mod:`repro.cacheserver` shard servers speak, and what
:class:`~repro.api.service.PointsToService` also answers against its
engine's store:

``lookup``       probe for one summary by its context-free key;
``store``        insert one completed summary;
``store-stats``  one store's :class:`~repro.analysis.summaries.CacheStats`.

Keys and summaries travel in the **snapshot entry format** of
:mod:`repro.api.snapshot` (nominal node references, wire field stacks) —
one serialization for durable snapshots and live cache traffic.  Those
fields are annotated ``Any``: the codec carries them opaquely and the
dispatcher validates them with the snapshot checkers before trusting
them.

Field types are honest: the codec derives each message's schema from the
dataclass annotations (``Optional[int]`` really means int-or-null on the
wire), so these classes are simultaneously the Python API and the wire
schema.
"""

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.analysis.summaries import CacheStats
from repro.engine.scheduler import BatchStats

#: The protocol spoken by this build — "<major>.<minor>".  1.6 adds
#: the failure-semantics rows to the remote stats on ``stats-result``:
#: ``faults`` (transport faults injected by a deterministic
#: :class:`~repro.cacheserver.faults.FaultSchedule` — zero in
#: production), ``degraded`` (fall-open decisions: every time the
#: client answered from local computation because the service path
#: failed), and ``breaker_state`` (each shard link's circuit-breaker
#: state, shard-ordered).  1.5 adds
#: ``traversal_impl``/``native_unavailable`` to ``stats-result``: which
#: PPTA traversal implementation the engine's queries run under, and —
#: when that is ``native`` — why the compiled kernel cannot serve (null
#: when it can; a non-null reason means the engine silently degraded to
#: the pure-Python ``array`` impl with identical answers).  1.4 adds the
#: consistency epoch to every store-level op (``epoch``/``fingerprint``
#: on ``lookup``/``store``/``invalidate``, aligned ``epochs`` tuples on
#: the batch forms), the typed ``stale-epoch`` rejection for
#: behind-the-times write-throughs, per-entry ``epochs`` on
#: ``fetch-methods-result``, aligned ``stale`` flags on
#: ``batch-stored``, the ``epoch_rejections``/``reconnects``/
#: ``seeded_entries`` counters on the remote stats, and the optional
#: transport-level ``id`` envelope key the async tier echoes for
#: request multiplexing.  1.3 added ``csr_warm`` on ``stats-result``
#: (a snapshot-borne CSR traversal image was adopted at warm start);
#: 1.2 added the batched store-level ops (``batch-lookup``/
#: ``batch-store``/``batch-invalidate``/``fetch-methods``) that
#: amortise round trips, plus ``round_trips``/``prefetched`` on the
#: remote stats; 1.1 added the store-level ops
#: (``lookup``/``store``/``store-stats``) and the warm-start/remote
#: counters on ``stats-result``; 1.0 traffic decodes unchanged.
PROTOCOL_VERSION = "1.6"


def split_version(version):
    """``"1.0" -> (1, 0)``; raises :class:`ProtocolError` on junk."""
    parts = str(version).split(".")
    if len(parts) != 2:
        raise ProtocolError(
            "invalid-request",
            f"protocol_version must look like '<major>.<minor>', got {version!r}",
        )
    try:
        return int(parts[0]), int(parts[1])
    except ValueError:
        raise ProtocolError(
            "invalid-request",
            f"protocol_version must be numeric, got {version!r}",
        ) from None


def check_version(version):
    """Reject a major-version mismatch (minor drift is compatible)."""
    major, _minor = split_version(version)
    ours, _ = split_version(PROTOCOL_VERSION)
    if major != ours:
        raise ProtocolError(
            "unsupported-version",
            f"protocol major version {major} is not supported "
            f"(this build speaks {PROTOCOL_VERSION})",
        )


# ----------------------------------------------------------------------
# typed errors — the only failure surface the wire API exposes
# ----------------------------------------------------------------------
class WireError(Exception):
    """Base of every error the wire layer raises deliberately.

    ``code`` is the machine-readable error class carried into the
    :class:`ErrorResponse`; the message is the human-readable detail.
    A host embedding the service can catch this one type.
    """

    def __init__(self, code, message):
        self.code = code
        super().__init__(message)


class ProtocolError(WireError):
    """A request that cannot be decoded: malformed JSON, unknown kind,
    unsupported major version, missing/unknown/ill-typed fields."""


class SnapshotError(WireError):
    """A summary snapshot that cannot be trusted: structural damage,
    version mismatch, stats that disagree with the recorded entries, or
    (under strict restore) entries that no longer resolve in the PAG."""

    def __init__(self, message, code="snapshot-invalid"):
        super().__init__(code, message)


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryRequest:
    """One points-to query for local ``var`` of ``method``.

    ``context`` is the calling-context stack, bottom-to-top, as call-site
    ids.  ``client``/``payload`` optionally name one of the registered
    analysis clients (``SafeCast``/``NullDeref``/``FactoryM``) and its
    query payload; the response then carries that client's verdict.
    """

    method: str
    var: str
    context: Tuple[int, ...] = ()
    client: Optional[str] = None
    payload: Tuple[str, ...] = ()
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class BatchRequest:
    """Many queries answered as one scheduled batch.

    ``dedupe``/``reorder`` override the engine policy when not null —
    the same levers ``query_batch`` exposes in-process.
    """

    queries: Tuple[QueryRequest, ...]
    dedupe: Optional[bool] = None
    reorder: Optional[bool] = None
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class AliasRequest:
    """May-alias check between two named variables."""

    method1: str
    var1: str
    method2: str
    var2: str
    context1: Tuple[int, ...] = ()
    context2: Tuple[int, ...] = ()
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class InvalidateRequest:
    """Drop one method's cached summaries (the host-side edit hook).

    ``epoch`` (protocol 1.4) is the client's post-edit epoch for the
    method; a store applies ``max(server_epoch + 1, epoch)`` so even an
    epoch-less 1.3 client still advances the method's version and
    shakes stale write-throughs out.  ``fingerprint`` names the
    client's program version (see :class:`LookupRequest`).
    """

    method: str
    epoch: int = 0
    fingerprint: Optional[int] = None
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class StatsRequest:
    """Ask for the engine's lifetime accounting snapshot."""

    protocol_version: str = PROTOCOL_VERSION


# ----------------------------------------------------------------------
# store-level requests — the cache-service vocabulary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LookupRequest:
    """Probe a summary store for one context-free key.

    ``key`` is ``{"node": <node ref>, "stack": <wire stack>, "state":
    1|2}`` in the snapshot entry format (see
    :func:`repro.api.snapshot.check_key`).

    ``epoch`` (protocol 1.4) is the client's consistency epoch for the
    key's method — a monotonic int bumped by every invalidation.  A
    server behind the client's epoch drops the method's entries and
    adopts it (self-heal for a missed invalidate); a client behind the
    server's epoch is answered with a miss, never a stale entry.
    ``fingerprint`` is the client's program fingerprint
    (:func:`repro.pag.csr.pag_fingerprint`) guarding against two
    *different programs* colliding at an equal epoch.
    """

    key: Any
    epoch: int = 0
    fingerprint: Optional[int] = None
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class StoreRequest:
    """Insert one completed summary, as a full snapshot entry (see
    :func:`repro.api.snapshot.check_entry`).  Only fully computed
    summaries may travel — the same rule the in-process contract has.

    ``epoch``/``fingerprint`` (protocol 1.4) version the write: a store
    whose epoch for the entry's method is *ahead* of the client's
    rejects the write-through with a typed ``stale-epoch`` response
    instead of silently accepting a pre-edit summary.
    """

    entry: Any
    epoch: int = 0
    fingerprint: Optional[int] = None
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class StoreStatsRequest:
    """Ask a summary store for its accounting snapshot."""

    protocol_version: str = PROTOCOL_VERSION


# ----------------------------------------------------------------------
# batched store-level requests (protocol 1.2) — one line, one round
# trip, many ops; servers dispatch each batch under a single store-lock
# acquisition
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchLookupRequest:
    """Probe a summary store for many context-free keys at once.

    ``keys`` items follow :func:`repro.api.snapshot.check_key`.  The
    response aligns entry-for-key with this tuple.

    ``epochs`` (protocol 1.4), when non-empty, aligns a consistency
    epoch with each key (empty means epoch 0 for every key — the 1.3
    wire form); ``fingerprint`` is the client's program fingerprint.
    """

    keys: Tuple[Any, ...]
    epochs: Tuple[int, ...] = ()
    fingerprint: Optional[int] = None
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class BatchStoreRequest:
    """Insert many completed summaries in one exchange (the write-
    coalescing flush of a pipelined client).  ``entries`` items follow
    :func:`repro.api.snapshot.check_entry`.

    ``epochs``/``fingerprint`` (protocol 1.4) version each write as in
    :class:`StoreRequest`; a stale element is rejected *individually*
    (flagged in the aligned ``stale`` tuple of the response) rather
    than failing the whole flush.
    """

    entries: Tuple[Any, ...]
    epochs: Tuple[int, ...] = ()
    fingerprint: Optional[int] = None
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class BatchInvalidateRequest:
    """Drop the cached summaries of many methods in one exchange.

    ``epochs``/``fingerprint`` (protocol 1.4) align a post-edit epoch
    with each method, as in :class:`InvalidateRequest`.
    """

    methods: Tuple[str, ...]
    epochs: Tuple[int, ...] = ()
    fingerprint: Optional[int] = None
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class MethodEntriesRequest:
    """Fetch every resident entry of the named methods — or of the
    whole store when ``methods`` is null.  The prefetch op: one round
    trip per shard warms a client's local tier for a whole batch.

    ``fingerprint`` (protocol 1.4) lets the server skip methods whose
    recorded program fingerprint disagrees with the requester's, so a
    prefetch never imports another program's same-named summaries.
    The response carries each entry's method epoch; the client adopts
    only entries whose epoch matches its own view.
    """

    methods: Optional[Tuple[str, ...]] = None
    fingerprint: Optional[int] = None
    protocol_version: str = PROTOCOL_VERSION


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WireObject:
    """One abstract object in a points-to answer.

    ``id`` is the allocation's stable label (``Program.finalize`` assigns
    them deterministically, so ids survive process restarts);
    ``contexts`` are the heap contexts under which the object was
    reached, each bottom-to-top.
    """

    id: str
    class_name: str
    contexts: Tuple[Tuple[int, ...], ...] = ()


@dataclass(frozen=True)
class WireVerdict:
    """A client's conclusion for one query, in wire form."""

    client: str
    status: str  # safe | violation | unknown
    offenders: Tuple[str, ...] = ()


@dataclass(frozen=True)
class QueryResponse:
    """Answer to one :class:`QueryRequest`.

    ``objects`` are sorted by id; ``complete`` is False when the query
    was cut off (budget/field-depth) and the set is a sound partial
    answer.
    """

    objects: Tuple[WireObject, ...]
    complete: bool
    steps: int
    verdict: Optional[WireVerdict] = None
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class BatchResponse:
    """Answers to a :class:`BatchRequest`, aligned with request order,
    plus the batch's Figure-4/5 accounting."""

    results: Tuple[QueryResponse, ...]
    stats: BatchStats
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class AliasResponse:
    """Answer to an :class:`AliasRequest`; ``verdict`` is true/false/null
    (null = some query was cut off and no witness appeared)."""

    verdict: Optional[bool]
    witnesses: Tuple[str, ...]
    steps: int
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class InvalidateResponse:
    """How many cached summaries an :class:`InvalidateRequest` dropped."""

    method: str
    dropped: int
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class BatchLookupResponse:
    """Aligned answers to a :class:`BatchLookupRequest`: one snapshot
    entry or null per requested key, in request order."""

    entries: Tuple[Any, ...]
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class BatchStoreResponse:
    """Aligned ``stored`` flags for a :class:`BatchStoreRequest` (the
    per-entry :class:`StoreResponse` rule).

    ``stale`` (protocol 1.4), when non-empty, aligns a flag with each
    entry: ``True`` marks a write-through the server rejected because
    its epoch lagged the method's — such an entry is never ``stored``.
    Empty means no element was rejected (and is what a 1.3 server
    sends).
    """

    stored: Tuple[bool, ...]
    stale: Tuple[bool, ...] = ()
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class BatchInvalidateResponse:
    """Aligned drop counts for a :class:`BatchInvalidateRequest`."""

    dropped: Tuple[int, ...]
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class MethodEntriesResponse:
    """Answer to a :class:`MethodEntriesRequest`: every matching
    resident entry, coldest-first (replaying ``store`` preserves the
    shard's recency order, the snapshot convention).

    ``epochs`` (protocol 1.4), when non-empty, aligns each entry's
    method epoch at the server; clients adopt an entry only when that
    epoch equals their own view of the method, so a prefetch can never
    smuggle a stale summary past the consistency guard.
    """

    entries: Tuple[Any, ...]
    epochs: Tuple[int, ...] = ()
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class StaleEpochResponse:
    """A write-through the server refused because the client's epoch
    for ``method`` (``sent``) lags the server's (``current``): the
    entry was computed against a program version that has since been
    invalidated.  The sound reaction is to keep serving the local
    result and stop publishing the method until the client itself
    observes the edit.  Protocol 1.4."""

    method: str
    sent: int
    current: int
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class RemoteStoreStats:
    """Accounting of one client's remote summary-store traffic.

    Exposed so ``repro-serve`` clients can observe **cache provenance**:
    how many probes the shared service answered (``remote_hits``), how
    many fell through to local compute (``remote_misses``), and how many
    remote attempts degraded to the fallback path without an answer —
    transport failures/timeouts (``remote_errors``) and served entries
    that no longer resolve in this client's PAG (``unresolved``).
    ``stores``/``store_errors``/``invalidations``/``invalidation_errors``
    count the write-side traffic the same way.

    ``round_trips`` (protocol 1.2) counts wire exchanges — one per
    request/response flight, however many ops the line carried — so the
    win of batched ops and prefetching is directly observable:
    a pipelined warm batch should cost O(shards) round trips, not one
    per lookup.  ``prefetched`` counts entries that arrived via
    ``fetch-methods`` prefetches (they fill the local tier, so they are
    *not* also counted as ``remote_hits``).

    Protocol 1.4 adds the consistency-epoch counters:
    ``epoch_rejections`` write-throughs a server refused as stale
    (proof the guard fired), ``reconnects`` re-established shard links
    after a drop, and ``seeded_entries`` summaries replayed into a
    freshly reconnected (possibly blank-restarted) shard by the
    reconnect-and-seed snapshot.

    Protocol 1.6 adds the failure-semantics rows: ``faults`` counts
    transport faults injected by the client's deterministic
    :class:`~repro.cacheserver.faults.FaultSchedule` (zero in
    production — a nonzero value proves a chaos schedule actually
    fired); ``degraded`` counts fall-open decisions, i.e. every time
    the client answered from local computation because a service path
    failed (transport error, undecodable response, unresolvable entry,
    fingerprint-less operation); ``breaker_state`` is each shard
    link's circuit-breaker state (``closed``/``open``/``half-open``),
    shard-ordered.
    """

    shards: int
    remote_hits: int = 0
    remote_misses: int = 0
    remote_errors: int = 0
    unresolved: int = 0
    stores: int = 0
    store_errors: int = 0
    invalidations: int = 0
    invalidation_errors: int = 0
    round_trips: int = 0
    prefetched: int = 0
    epoch_rejections: int = 0
    reconnects: int = 0
    seeded_entries: int = 0
    faults: int = 0
    degraded: int = 0
    breaker_state: Tuple[str, ...] = ()
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class StatsResponse:
    """The engine's lifetime accounting (mirrors
    :class:`~repro.engine.core.EngineStats`); ``cache`` is the summary
    store's :class:`~repro.analysis.summaries.CacheStats` or null for
    cache-less analyses.

    ``warm_loaded``/``warm_skipped`` report snapshot warm-start
    provenance, and ``csr_warm`` whether the warm start also adopted a
    snapshot-borne CSR traversal image (so the engine never recompiled
    its graph); ``remote`` is the client-side shared-cache accounting
    (:class:`RemoteStoreStats`) or null when the engine's store is
    purely local.

    Protocol 1.5 adds ``traversal_impl`` — which PPTA traversal
    implementation the engine's queries run under
    (``fast``/``array``/``native``/``reference``) — and
    ``native_unavailable``: when the selection is ``native`` but the
    compiled kernel cannot serve, the reason (the engine silently
    degrades to the pure-Python ``array`` impl with identical answers);
    null when the kernel is live or the selection is not ``native``.
    """

    analysis: str
    queries: int
    executed: int
    batches: int
    deduped: int
    steps: int
    incomplete: int
    edits: int
    cache: Optional[CacheStats] = None
    warm_loaded: int = 0
    warm_skipped: int = 0
    csr_warm: bool = False
    remote: Optional[RemoteStoreStats] = None
    traversal_impl: str = "fast"
    native_unavailable: Optional[str] = None
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class LookupResponse:
    """Answer to a :class:`LookupRequest`: ``entry`` is the full snapshot
    entry when ``found``, null otherwise."""

    found: bool
    entry: Any = None
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class StoreResponse:
    """Whether a :class:`StoreRequest` changed the store's contents:
    ``True`` for a new key or for a differing summary replacing the
    resident one (the self-heal rule for invalidations a store missed),
    ``False`` when an equal summary was already resident — equal
    re-stores only refresh recency, exactly like the in-process
    contract."""

    stored: bool
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class StoreStatsResponse:
    """One summary store's accounting, with its place in the partition
    (``shard`` of ``shards``; ``0 of 1`` for an unsharded store)."""

    shard: int
    shards: int
    stats: CacheStats
    protocol_version: str = PROTOCOL_VERSION


@dataclass(frozen=True)
class ErrorResponse:
    """The one failure shape: a machine-readable ``code`` plus detail.

    Codes: ``malformed-json``, ``invalid-request``,
    ``unsupported-version``, ``unknown-kind``, ``unknown-node``,
    ``unknown-client``, ``snapshot-invalid``, ``internal-error``,
    ``wrong-shard`` (a store-level op routed to a shard server that does
    not own the key's method), ``no-store`` (a store-level op against a
    cache-less analysis).
    """

    code: str
    message: str
    protocol_version: str = PROTOCOL_VERSION


#: kind discriminator <-> dataclass, for each direction of traffic.
REQUEST_KINDS = {
    "query": QueryRequest,
    "batch": BatchRequest,
    "alias": AliasRequest,
    "invalidate": InvalidateRequest,
    "stats": StatsRequest,
    "lookup": LookupRequest,
    "store": StoreRequest,
    "store-stats": StoreStatsRequest,
    "batch-lookup": BatchLookupRequest,
    "batch-store": BatchStoreRequest,
    "batch-invalidate": BatchInvalidateRequest,
    "fetch-methods": MethodEntriesRequest,
}

RESPONSE_KINDS = {
    "query-result": QueryResponse,
    "batch-result": BatchResponse,
    "alias-result": AliasResponse,
    "invalidated": InvalidateResponse,
    "stats-result": StatsResponse,
    "lookup-result": LookupResponse,
    "stored": StoreResponse,
    "store-stats-result": StoreStatsResponse,
    "batch-lookup-result": BatchLookupResponse,
    "batch-stored": BatchStoreResponse,
    "batch-invalidated": BatchInvalidateResponse,
    "fetch-methods-result": MethodEntriesResponse,
    "stale-epoch": StaleEpochResponse,
    "error": ErrorResponse,
}

#: Reverse map used by the encoder (requests and responses share it).
KIND_OF = {cls: kind for kind, cls in {**REQUEST_KINDS, **RESPONSE_KINDS}.items()}
