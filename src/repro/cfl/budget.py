"""Per-query traversal budgets (Section 5.2 of the paper).

Every demand analysis charges one unit per graph-traversal step (a node
visit in a recursive exploration, a worklist-item pop, a match-edge jump).
When the budget is exhausted the query is abandoned and answered
conservatively, exactly as in the paper, whose experiments cap each query
at 75,000 traversed edges.
"""

from repro.util.errors import BudgetExceededError

#: The paper's per-query budget (Section 5.2).
DEFAULT_BUDGET = 75_000

#: Sentinel meaning "never give up"; used by correctness tests that need a
#: fully resolved answer.
UNLIMITED_BUDGET = None


class Budget:
    """Mutable step counter shared by all traversal phases of one query.

    Parameters
    ----------
    limit:
        Maximum number of steps, or ``None`` (:data:`UNLIMITED_BUDGET`)
        for no limit.
    """

    __slots__ = ("limit", "steps")

    def __init__(self, limit=DEFAULT_BUDGET):
        if limit is not None and limit <= 0:
            raise ValueError(f"budget limit must be positive, got {limit}")
        self.limit = limit
        self.steps = 0

    def charge(self, amount=1):
        """Consume ``amount`` steps, raising :class:`BudgetExceededError`
        once the limit is crossed."""
        self.steps += amount
        if self.limit is not None and self.steps > self.limit:
            raise BudgetExceededError(self.limit)

    @property
    def exhausted(self):
        return self.limit is not None and self.steps > self.limit

    @property
    def remaining(self):
        """Steps left, or ``None`` when unlimited."""
        if self.limit is None:
            return None
        return max(0, self.limit - self.steps)

    def __repr__(self):
        limit = "unlimited" if self.limit is None else self.limit
        return f"Budget(steps={self.steps}, limit={limit})"
