"""CFL-reachability machinery shared by every demand-driven analysis.

This package contains the pieces of the LFT (field-sensitivity) and RRP
(context-sensitivity) context-free languages of the paper that are common
to NOREFINE, REFINEPTS, DYNSUM and STASUM:

* :mod:`repro.cfl.stacks` — persistent (immutable, shareable) stacks used
  for both field stacks and calling-context stacks;
* :mod:`repro.cfl.rsm` — the recursive-state-machine states (``S1``/``S2``)
  of Figure 3 and helpers describing their transitions;
* :mod:`repro.cfl.budget` — the per-query traversal budget of Section 5.2.
"""

from repro.cfl.budget import Budget, UNLIMITED_BUDGET
from repro.cfl.rsm import S1, S2, state_name
from repro.cfl.stacks import EMPTY_STACK, Stack

__all__ = [
    "Budget",
    "EMPTY_STACK",
    "S1",
    "S2",
    "Stack",
    "UNLIMITED_BUDGET",
    "state_name",
]
