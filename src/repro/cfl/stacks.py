"""Persistent stacks for CFL-reachability traversals.

Both the *field stack* (unmatched ``load(f)``/``store(f)`` parentheses of
the LFT language) and the *context stack* (unmatched ``entry_i``/``exit_i``
parentheses of the RRP language) are immutable: every traversal step derives
a new stack by pushing or popping, and many in-flight traversal states share
structure.  A singly linked persistent list with a precomputed hash gives
O(1) ``push``/``pop``/``peek`` and O(1) hashing, which matters because
stacks are used as dictionary keys in the DYNSUM summary cache and in every
visited set.

The empty stack is the singleton :data:`EMPTY_STACK`.

Two allocation-avoidance devices serve the traversal hot paths:

* :func:`intern_token` interns the ``(field, family)`` push tokens the
  analyses stack, so pushing the same token twice reuses one tuple and
  token equality inside ``Stack.__eq__`` short-circuits on identity;
* ``Stack.push`` hash-conses its children — pushing the same value onto
  the same stack returns the *same* ``Stack`` object, so the visited-set
  keys built from stacks compare by identity on the fast path.

Both are pure caches: equality and hashing stay structural, so interned
and non-interned stacks with equal contents remain interchangeable.

Hash-consing also makes stacks *canonical*: every stack in the process
is built by ``push``/``of`` chains rooted at :data:`EMPTY_STACK` (the
constructor is internal to ``push``), so two structurally equal stacks
are the same object, and the per-stack ``_uid`` below is a faithful
identity key.  The DYNSUM worklist keys its visited set on those integer
uids — a C-hashed int tuple instead of a Python-level ``__hash__`` call
per probe.  Code outside this module must therefore never call the
``Stack`` constructor directly.
"""

import itertools

#: Monotone uid supply for stacks (``count().__next__`` is atomic under
#: the GIL, so concurrent pushes get distinct uids).
_NEXT_UID = itertools.count()

#: Intern table for ``(field, family)`` push tokens (see
#: :func:`intern_token`).  Bounded by the number of distinct
#: field/family pairs in the program — a few hundred in practice.
_TOKENS = {}


def intern_token(field, family):
    """The canonical tuple for a field-stack entry ``(field, family)``.

    ``dict.setdefault`` keeps the intern race-free under the engine's
    thread-pool executor (two racing calls return the same tuple).
    """
    token = (field, family)
    return _TOKENS.setdefault(token, token)


#: Process-global dense ids for interned tokens and field names, used by
#: the CSR traversal image (:mod:`repro.pag.csr`).  Ids are assigned on
#: first intern and NEVER reassigned or reset: a PAG rebuild (an
#: ``edit_session`` edit builds a whole new PAG) or a CSR recompile
#: reuses the ids it minted before, so compiled images of successive
#: program versions agree on token numbering and the intern tables never
#: have to be rebuilt alongside the adjacency.
_TOKEN_IDS = {}
_TOKEN_LIST = []
_FIELD_IDS = {}
_FIELD_LIST = []


def token_id(field, family):
    """The stable dense id of interned token ``(field, family)``."""
    token = intern_token(field, family)
    tid = _TOKEN_IDS.get(token)
    if tid is None:
        # Appends under the GIL; re-check inside so two racing interns
        # of a new token agree on one id.
        tid = _TOKEN_IDS.setdefault(token, len(_TOKEN_LIST))
        if tid == len(_TOKEN_LIST):
            _TOKEN_LIST.append(token)
    return tid


def field_id(field):
    """The stable dense id of field name ``field``."""
    fid = _FIELD_IDS.get(field)
    if fid is None:
        fid = _FIELD_IDS.setdefault(field, len(_FIELD_LIST))
        if fid == len(_FIELD_LIST):
            _FIELD_LIST.append(field)
    return fid


def token_table():
    """Snapshot of the token table: ``tid -> (field, family)``."""
    return list(_TOKEN_LIST)


def field_table():
    """Snapshot of the field-name table: ``fid -> field``."""
    return list(_FIELD_LIST)


class Stack:
    """An immutable stack (persistent linked list).

    Elements may be any hashable value; analyses push field names
    (strings) or call-site ids (ints).  Equality and hashing are
    structural, so two independently built stacks with the same elements
    compare equal — a requirement for summary-cache keys.
    """

    __slots__ = ("_top", "_rest", "_size", "_hash", "_children", "_uid")

    def __init__(self, top=None, rest=None):
        self._top = top
        self._rest = rest
        # Eager, so no thread can ever observe (and replace) a half-
        # published table — the canonicity of hash-consed stacks, which
        # the uid-keyed visited sets depend on, needs the table to be
        # written exactly once per node.
        self._children = {}
        self._uid = next(_NEXT_UID)
        if rest is None:
            self._size = 0
            self._hash = hash(())
        else:
            self._size = rest._size + 1
            self._hash = hash((rest._hash, top))

    def push(self, value):
        """Return a new stack with ``value`` on top.

        Children are hash-consed: pushing an equal ``value`` onto this
        stack again returns the same object, which makes the visited-set
        churn of the traversal loops identity-cheap and keeps stacks
        canonical (equal ⟹ identical).  ``setdefault`` is atomic under
        the GIL, so concurrent pushes of the same value return the same
        child — a racing loser's freshly built node never escapes.
        """
        children = self._children
        child = children.get(value)
        if child is None:
            child = children.setdefault(value, Stack(value, self))
        return child

    def push_uncached(self, value):
        """The pre-consing push: a fresh node (and hash) per call.

        Retained for the reference traversal loops
        (:func:`repro.analysis.ppta.run_ppta_reference`), so the
        pre-optimization baseline ``repro-perf`` measures against pays
        the allocation cost the production ``push`` eliminated.
        Structurally interchangeable with :meth:`push`; the returned
        stack is *not* canonical, so reference-mode runs must not share
        an engine with fast-mode runs being measured.
        """
        return Stack(value, self)

    def pop(self):
        """Return the stack without its top element.

        Popping the empty stack returns the empty stack.  This mirrors the
        paper's treatment of partially balanced paths (Algorithm 1, line
        12): a realizable path may begin with unmatched closing
        parentheses, so an "underflow" pop simply stays empty.
        """
        if self._rest is None:
            return self
        return self._rest

    def peek(self):
        """Return the top element, or ``None`` when empty."""
        return self._top if self._rest is not None else None

    @property
    def is_empty(self):
        return self._rest is None

    def __len__(self):
        return self._size

    def __iter__(self):
        """Iterate from top of stack to bottom."""
        node = self
        while node._rest is not None:
            yield node._top
            node = node._rest

    def to_tuple(self):
        """Return the contents bottom-to-top as a plain tuple."""
        return tuple(reversed(list(self)))

    @classmethod
    def of(cls, *values):
        """Build a stack by pushing ``values`` in order (last is top)."""
        stack = EMPTY_STACK
        for value in values:
            stack = stack.push(value)
        return stack

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, Stack):
            return NotImplemented
        if self._hash != other._hash or self._size != other._size:
            return False
        a, b = self, other
        while a._rest is not None:
            if b._rest is None or a._top != b._top:
                return False
            a, b = a._rest, b._rest
        return b._rest is None

    def __hash__(self):
        return self._hash

    def __repr__(self):
        items = ",".join(str(v) for v in self.to_tuple())
        return f"[{items}]"


#: The shared empty stack.  ``EMPTY_STACK.push(x)`` starts any traversal.
EMPTY_STACK = Stack()
