"""Persistent stacks for CFL-reachability traversals.

Both the *field stack* (unmatched ``load(f)``/``store(f)`` parentheses of
the LFT language) and the *context stack* (unmatched ``entry_i``/``exit_i``
parentheses of the RRP language) are immutable: every traversal step derives
a new stack by pushing or popping, and many in-flight traversal states share
structure.  A singly linked persistent list with a precomputed hash gives
O(1) ``push``/``pop``/``peek`` and O(1) hashing, which matters because
stacks are used as dictionary keys in the DYNSUM summary cache and in every
visited set.

The empty stack is the singleton :data:`EMPTY_STACK`.
"""


class Stack:
    """An immutable stack (persistent linked list).

    Elements may be any hashable value; analyses push field names
    (strings) or call-site ids (ints).  Equality and hashing are
    structural, so two independently built stacks with the same elements
    compare equal — a requirement for summary-cache keys.
    """

    __slots__ = ("_top", "_rest", "_size", "_hash")

    def __init__(self, top=None, rest=None):
        self._top = top
        self._rest = rest
        if rest is None:
            self._size = 0
            self._hash = hash(())
        else:
            self._size = rest._size + 1
            self._hash = hash((rest._hash, top))

    def push(self, value):
        """Return a new stack with ``value`` on top."""
        return Stack(value, self)

    def pop(self):
        """Return the stack without its top element.

        Popping the empty stack returns the empty stack.  This mirrors the
        paper's treatment of partially balanced paths (Algorithm 1, line
        12): a realizable path may begin with unmatched closing
        parentheses, so an "underflow" pop simply stays empty.
        """
        if self._rest is None:
            return self
        return self._rest

    def peek(self):
        """Return the top element, or ``None`` when empty."""
        return self._top if self._rest is not None else None

    @property
    def is_empty(self):
        return self._rest is None

    def __len__(self):
        return self._size

    def __iter__(self):
        """Iterate from top of stack to bottom."""
        node = self
        while node._rest is not None:
            yield node._top
            node = node._rest

    def to_tuple(self):
        """Return the contents bottom-to-top as a plain tuple."""
        return tuple(reversed(list(self)))

    @classmethod
    def of(cls, *values):
        """Build a stack by pushing ``values`` in order (last is top)."""
        stack = EMPTY_STACK
        for value in values:
            stack = stack.push(value)
        return stack

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, Stack):
            return NotImplemented
        if self._hash != other._hash or self._size != other._size:
            return False
        a, b = self, other
        while a._rest is not None:
            if b._rest is None or a._top != b._top:
                return False
            a, b = a._rest, b._rest
        return b._rest is None

    def __hash__(self):
        return self._hash

    def __repr__(self):
        items = ",".join(str(v) for v in self.to_tuple())
        return f"[{items}]"


#: The shared empty stack.  ``EMPTY_STACK.push(x)`` starts any traversal.
EMPTY_STACK = Stack()
