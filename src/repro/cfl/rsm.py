"""Recursive-state-machine states of the LFT language (Figure 3a).

Demand-driven traversals run the ``pointsTo``/``alias`` RSM of the paper's
Figure 3(a).  It has two states:

* :data:`S1` — travelling **backward** along a ``flowsTo``-bar path, i.e.
  computing ``pointsTo`` of the current node.  On a ``new`` edge with an
  empty field stack the traversal emits the object; with a non-empty stack
  it *turns around* into :data:`S2` at the same node (the ``new new-bar``
  move of Section 4.2, legal only at an allocation site).
* :data:`S2` — travelling **forward** along a ``flowsTo`` path, tracking an
  object to discover aliases of some base variable.

The full transition table over PAG edges is documented in DESIGN.md §2 and
implemented (for local edges) in :mod:`repro.analysis.dynsum` and (for the
recursive formulation) in :mod:`repro.analysis.norefine`.  The RRP
context machine of Figure 3(b) is realized directly by push/pop operations
on the context stack at ``entry``/``exit`` edges.
"""

#: Backward state — traversing a flowsTo-bar (pointsTo) path.
S1 = 1

#: Forward state — traversing a flowsTo path looking for aliases.
S2 = 2

# ----------------------------------------------------------------------
# Field-stack entry families.
#
# The flattened RSM shares one field stack between two distinct
# parenthesis families of the LFT grammar:
#
# * :data:`FAM_LOAD` ("family A") — a ``load-bar(f)`` traversed backward
#   in S1 (``flowsToBar ::= ... loadBar(f) alias storeBar(f)``).  Its
#   valid closers are a forward ``load(f)`` from an aliased base (stay in
#   S2) or a ``store(f)`` *into* an aliased base (the storeBar closer,
#   S2 -> S1).
# * :data:`FAM_STORE` ("family B") — a forward ``store(f)`` taken in S2
#   when the tracked object is stored into a base
#   (``flowsTo ::= ... store(f) alias load(f)``).  Its only valid closer
#   is a forward ``load(f)`` from an aliased base.
#
# Allowing a family-B entry to be closed by the storeBar rule would
# derive "two values stored into the same field slot alias each other",
# which is not in the language — stack entries therefore carry their
# family, and the storeBar pop demands a family-A top.  (The paper's
# Algorithm 3 elides this detail; without it the flattened machine is
# sound but strictly less precise than REFINEPTS, contradicting the
# paper's no-precision-loss claim.)
# ----------------------------------------------------------------------

#: Field-stack entry pushed by a backward load (family A).
FAM_LOAD = 0

#: Field-stack entry pushed by a forward store (family B).
FAM_STORE = 1

_NAMES = {S1: "S1", S2: "S2"}


def state_name(state):
    """Human-readable name for an RSM state (used in traces and errors)."""
    try:
        return _NAMES[state]
    except KeyError:
        raise ValueError(f"unknown RSM state: {state!r}") from None
