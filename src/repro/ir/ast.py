"""Abstract syntax of PIR programs.

A :class:`Program` is a set of classes; a :class:`ClassDef` declares
instance fields, static fields and methods; a :class:`Method` is a flat
list of three-address statements.  The statement forms mirror Figure 1 of
the paper:

=====================  ============================  ====================
PIR statement          Java analogue                 PAG edge(s)
=====================  ============================  ====================
``x = new C``          allocation                    ``o --new--> x``
``x = null``           null constant                 ``o_null --new--> x``
``x = y``              local assignment              ``y --assign--> x``
``x = (C) y``          checked downcast              ``y --assign--> x``
``x = y.f``            instance-field load           ``y --load(f)--> x``
``x.f = y``            instance-field store          ``y --store(f)--> x``
``x = C::g``           static-field read             ``C.g --assignglobal--> x``
``C::g = x``           static-field write            ``x --assignglobal--> C.g``
``x = y.m(a, ...)``    virtual call at site *i*      ``entry_i``/``exit_i``
``x = C::m(a, ...)``   static call at site *i*       ``entry_i``/``exit_i``
``return x``           method return                 feeds ``exit_i`` edges
=====================  ============================  ====================

The AST is deliberately flow-insensitive-friendly: statement order never
matters to any analysis in this library, matching the paper's Section 2.

Every call statement is assigned a globally unique integer *call-site id*
by :meth:`Program.finalize`; these ids are the ``i`` subscripts of
``entry_i``/``exit_i`` edges.  Allocation statements are likewise given
unique object labels (``o1``, ``o2``, ...).
"""

from repro.util.errors import IRError

#: Name of the implicit receiver parameter of instance methods.
THIS = "this"

#: Class name used for the singleton null object.
NULL_CLASS = "<null>"


class Statement:
    """Base class for PIR statements.

    ``label`` is an optional source annotation (e.g. a line number or a
    generator tag) used only for diagnostics and client reports.
    """

    __slots__ = ("label",)

    kind = "statement"

    def __init__(self, label=None):
        self.label = label

    def _fmt(self, body):
        return body if self.label is None else f"{body}  /*{self.label}*/"


class Alloc(Statement):
    """``target = new class_name`` — heap allocation."""

    __slots__ = ("target", "class_name", "object_id")

    kind = "alloc"

    def __init__(self, target, class_name, label=None):
        super().__init__(label)
        self.target = target
        self.class_name = class_name
        #: Unique object label, assigned by :meth:`Program.finalize`.
        self.object_id = None

    def __repr__(self):
        return self._fmt(f"{self.target} = new {self.class_name}")


class NullAssign(Statement):
    """``target = null`` — allocation of a distinct null object.

    Each null assignment produces its own object of class
    :data:`NULL_CLASS`, so a null object has exactly one ``new`` edge
    (like every other allocation) and the NullDeref client can report
    *which* null assignment reaches a dereference.
    """

    __slots__ = ("target", "object_id")

    kind = "null"

    def __init__(self, target, label=None):
        super().__init__(label)
        self.target = target
        #: Unique object label, assigned by :meth:`Program.finalize`.
        self.object_id = None

    @property
    def class_name(self):
        """Null objects all have the pseudo-class :data:`NULL_CLASS`."""
        return NULL_CLASS

    def __repr__(self):
        return self._fmt(f"{self.target} = null")


class Copy(Statement):
    """``target = source`` — local assignment."""

    __slots__ = ("target", "source")

    kind = "copy"

    def __init__(self, target, source, label=None):
        super().__init__(label)
        self.target = target
        self.source = source

    def __repr__(self):
        return self._fmt(f"{self.target} = {self.source}")


class Cast(Statement):
    """``target = (class_name) source`` — downcast; flows like a copy.

    Cast statements are additionally registered as *cast sites* so the
    SafeCast client can enumerate them.
    """

    __slots__ = ("target", "source", "class_name")

    kind = "cast"

    def __init__(self, target, class_name, source, label=None):
        super().__init__(label)
        self.target = target
        self.class_name = class_name
        self.source = source

    def __repr__(self):
        return self._fmt(f"{self.target} = ({self.class_name}) {self.source}")


class Load(Statement):
    """``target = base.field`` — instance-field load."""

    __slots__ = ("target", "base", "field")

    kind = "load"

    def __init__(self, target, base, field, label=None):
        super().__init__(label)
        self.target = target
        self.base = base
        self.field = field

    def __repr__(self):
        return self._fmt(f"{self.target} = {self.base}.{self.field}")


class Store(Statement):
    """``base.field = source`` — instance-field store."""

    __slots__ = ("base", "field", "source")

    kind = "store"

    def __init__(self, base, field, source, label=None):
        super().__init__(label)
        self.base = base
        self.field = field
        self.source = source

    def __repr__(self):
        return self._fmt(f"{self.base}.{self.field} = {self.source}")


class StaticGet(Statement):
    """``target = class_name::field`` — read of a static (global) field."""

    __slots__ = ("target", "class_name", "field")

    kind = "staticget"

    def __init__(self, target, class_name, field, label=None):
        super().__init__(label)
        self.target = target
        self.class_name = class_name
        self.field = field

    def __repr__(self):
        return self._fmt(f"{self.target} = {self.class_name}::{self.field}")


class StaticPut(Statement):
    """``class_name::field = source`` — write of a static (global) field."""

    __slots__ = ("class_name", "field", "source")

    kind = "staticput"

    def __init__(self, class_name, field, source, label=None):
        super().__init__(label)
        self.class_name = class_name
        self.field = field
        self.source = source

    def __repr__(self):
        return self._fmt(f"{self.class_name}::{self.field} = {self.source}")


class Call(Statement):
    """A call statement, virtual or static.

    Virtual: ``target = receiver.method_name(args)`` — dispatched on the
    runtime class of ``receiver``'s pointees.
    Static: ``target = class_name::method_name(args)`` — a direct call.
    ``target`` may be ``None`` when the result is discarded.
    """

    __slots__ = ("target", "receiver", "class_name", "method_name", "args", "site_id")

    kind = "call"

    def __init__(self, target, receiver, class_name, method_name, args, label=None):
        super().__init__(label)
        if (receiver is None) == (class_name is None):
            raise IRError(
                "a call must have exactly one of receiver (virtual) or "
                f"class_name (static): {method_name}"
            )
        self.target = target
        self.receiver = receiver
        self.class_name = class_name
        self.method_name = method_name
        self.args = list(args)
        #: Unique call-site id, assigned by :meth:`Program.finalize`.
        self.site_id = None

    @property
    def is_virtual(self):
        return self.receiver is not None

    def __repr__(self):
        callee = (
            f"{self.receiver}.{self.method_name}"
            if self.is_virtual
            else f"{self.class_name}::{self.method_name}"
        )
        prefix = f"{self.target} = " if self.target is not None else ""
        args = ", ".join(self.args)
        site = f"@{self.site_id}" if self.site_id is not None else ""
        return self._fmt(f"{prefix}{callee}({args}){site}")


class Return(Statement):
    """``return source`` — hands ``source`` back to every caller."""

    __slots__ = ("source",)

    kind = "return"

    def __init__(self, source, label=None):
        super().__init__(label)
        self.source = source

    def __repr__(self):
        return self._fmt(f"return {self.source}")


class Method:
    """A PIR method: parameters plus a flat statement list.

    Instance methods implicitly take :data:`THIS` as their first
    parameter; ``params`` lists only the declared parameters.
    """

    __slots__ = ("name", "class_name", "params", "statements", "is_static")

    def __init__(self, name, class_name, params=(), is_static=False):
        self.name = name
        self.class_name = class_name
        self.params = list(params)
        self.statements = []
        self.is_static = is_static

    @property
    def qualified_name(self):
        return f"{self.class_name}.{self.name}"

    @property
    def all_params(self):
        """Parameters including the implicit receiver for instance methods."""
        if self.is_static:
            return list(self.params)
        return [THIS] + list(self.params)

    def add(self, statement):
        self.statements.append(statement)
        return statement

    def return_statements(self):
        return [s for s in self.statements if s.kind == "return"]

    def local_names(self):
        """All variable names referenced in this method (params included).

        PIR has no declarations; any name mentioned is a local of the
        enclosing method.
        """
        names = list(self.all_params)
        seen = set(names)

        def visit(name):
            if name is not None and name not in seen:
                seen.add(name)
                names.append(name)

        for stmt in self.statements:
            for attr in ("target", "source", "base", "receiver"):
                visit(getattr(stmt, attr, None))
            for arg in getattr(stmt, "args", ()):
                visit(arg)
        return names

    def __repr__(self):
        return f"Method({self.qualified_name}/{len(self.params)})"


class ClassDef:
    """A PIR class: fields, static fields and methods, with one superclass."""

    __slots__ = ("name", "superclass", "fields", "static_fields", "methods")

    def __init__(self, name, superclass=None):
        self.name = name
        self.superclass = superclass
        self.fields = []
        self.static_fields = []
        self.methods = {}

    def add_field(self, name):
        if name in self.fields:
            raise IRError(f"duplicate field {self.name}.{name}")
        self.fields.append(name)

    def add_static_field(self, name):
        if name in self.static_fields:
            raise IRError(f"duplicate static field {self.name}::{name}")
        self.static_fields.append(name)

    def add_method(self, method):
        if method.name in self.methods:
            raise IRError(f"duplicate method {self.name}.{method.name}")
        self.methods[method.name] = method
        return method

    def __repr__(self):
        return f"ClassDef({self.name})"


class Program:
    """A complete PIR program.

    ``entry`` names the entry method as ``"Class.method"``; it must be a
    static method.  Call :meth:`finalize` (done automatically by the
    parser and builder) before handing the program to any analysis: it
    assigns call-site ids and object labels and freezes lookup tables.
    """

    def __init__(self, entry="Main.main"):
        self.classes = {}
        self.entry = entry
        self._finalized = False
        self._methods_by_qname = {}
        self._call_sites = {}
        self._allocations = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_class(self, class_def):
        if class_def.name in self.classes:
            raise IRError(f"duplicate class {class_def.name}")
        self.classes[class_def.name] = class_def
        self._finalized = False
        return class_def

    def finalize(self):
        """Assign call-site ids / object labels and build lookup tables.

        Idempotent: re-finalizing an unchanged program keeps existing ids
        stable (they are reassigned deterministically in program order).
        """
        self._methods_by_qname = {}
        self._call_sites = {}
        self._allocations = []
        site_id = 0
        for class_name in sorted(self.classes):
            class_def = self.classes[class_name]
            for method_name in class_def.methods:
                method = class_def.methods[method_name]
                self._methods_by_qname[method.qualified_name] = method
                # Object labels are numbered *per method* so that editing
                # one method never renumbers another's allocations — the
                # stability incremental re-analysis relies on.
                object_seq = 0
                for stmt in method.statements:
                    if stmt.kind == "call":
                        site_id += 1
                        stmt.site_id = site_id
                        self._call_sites[site_id] = (method, stmt)
                    elif stmt.kind == "alloc":
                        object_seq += 1
                        stmt.object_id = f"o{object_seq}@{method.qualified_name}"
                        self._allocations.append((method, stmt))
                    elif stmt.kind == "null":
                        object_seq += 1
                        stmt.object_id = f"o{object_seq}@{method.qualified_name}#null"
                        self._allocations.append((method, stmt))
        self._finalized = True
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _require_finalized(self):
        if not self._finalized:
            raise IRError("program not finalized; call Program.finalize() first")

    @property
    def is_finalized(self):
        return self._finalized

    def lookup_class(self, name):
        try:
            return self.classes[name]
        except KeyError:
            raise IRError(f"unknown class {name!r}") from None

    def lookup_method(self, qualified_name):
        self._require_finalized()
        try:
            return self._methods_by_qname[qualified_name]
        except KeyError:
            raise IRError(f"unknown method {qualified_name!r}") from None

    @property
    def entry_method(self):
        return self.lookup_method(self.entry)

    def methods(self):
        """All methods, in deterministic (class, declaration) order."""
        self._require_finalized()
        return list(self._methods_by_qname.values())

    def call_sites(self):
        """Mapping site_id -> (enclosing method, Call statement)."""
        self._require_finalized()
        return dict(self._call_sites)

    def call_site(self, site_id):
        self._require_finalized()
        try:
            return self._call_sites[site_id]
        except KeyError:
            raise IRError(f"unknown call site {site_id}") from None

    def allocations(self):
        """All ``(enclosing method, Alloc)`` pairs, in program order."""
        self._require_finalized()
        return list(self._allocations)

    def statements(self):
        """Iterate ``(method, statement)`` over the whole program."""
        self._require_finalized()
        for method in self._methods_by_qname.values():
            for stmt in method.statements:
                yield method, stmt

    def counts(self):
        """Summary sizes used in reports: classes/methods/statements."""
        self._require_finalized()
        n_statements = sum(len(m.statements) for m in self._methods_by_qname.values())
        return {
            "classes": len(self.classes),
            "methods": len(self._methods_by_qname),
            "statements": n_statements,
        }

    def __repr__(self):
        state = "finalized" if self._finalized else "building"
        return f"Program({len(self.classes)} classes, entry={self.entry!r}, {state})"
