"""Fluent programmatic construction of PIR programs.

Example — the skeleton of the paper's Figure 2::

    b = ProgramBuilder(entry="Main.main")
    vector = b.cls("Vector", fields=["elems", "count"])
    init = vector.method("init")
    init.alloc("t", "ObjectArray")
    init.store("this", "elems", "t")

    main = b.cls("Main").static_method("main")
    main.alloc("v1", "Vector")
    main.vcall("v1", "init")
    program = b.build()

``build()`` finalizes the program (assigning call-site ids and object
labels) and validates it.
"""

from repro.ir.ast import (
    Alloc,
    Call,
    Cast,
    ClassDef,
    Copy,
    Load,
    Method,
    NullAssign,
    Program,
    Return,
    StaticGet,
    StaticPut,
    Store,
)
from repro.ir.validate import validate_program


class MethodBuilder:
    """Appends statements to one method.  Every statement method returns
    ``self`` so calls can be chained."""

    def __init__(self, method):
        self._method = method

    @property
    def method(self):
        return self._method

    def alloc(self, target, class_name, label=None):
        """``target = new class_name``"""
        self._method.add(Alloc(target, class_name, label))
        return self

    def null(self, target, label=None):
        """``target = null``"""
        self._method.add(NullAssign(target, label))
        return self

    def copy(self, target, source, label=None):
        """``target = source``"""
        self._method.add(Copy(target, source, label))
        return self

    def cast(self, target, class_name, source, label=None):
        """``target = (class_name) source``"""
        self._method.add(Cast(target, class_name, source, label))
        return self

    def load(self, target, base, field, label=None):
        """``target = base.field``"""
        self._method.add(Load(target, base, field, label))
        return self

    def store(self, base, field, source, label=None):
        """``base.field = source``"""
        self._method.add(Store(base, field, source, label))
        return self

    def static_get(self, target, class_name, field, label=None):
        """``target = class_name::field``"""
        self._method.add(StaticGet(target, class_name, field, label))
        return self

    def static_put(self, class_name, field, source, label=None):
        """``class_name::field = source``"""
        self._method.add(StaticPut(class_name, field, source, label))
        return self

    def vcall(self, receiver, method_name, args=(), target=None, label=None):
        """``[target =] receiver.method_name(args)``"""
        self._method.add(Call(target, receiver, None, method_name, args, label))
        return self

    def scall(self, class_name, method_name, args=(), target=None, label=None):
        """``[target =] class_name::method_name(args)``"""
        self._method.add(Call(target, None, class_name, method_name, args, label))
        return self

    def ret(self, source, label=None):
        """``return source``"""
        self._method.add(Return(source, label))
        return self


class ClassBuilder:
    """Adds members to one class."""

    def __init__(self, class_def):
        self._class_def = class_def

    @property
    def class_def(self):
        return self._class_def

    def field(self, name):
        self._class_def.add_field(name)
        return self

    def static_field(self, name):
        self._class_def.add_static_field(name)
        return self

    def method(self, name, params=()):
        """Declare an instance method (implicit ``this``)."""
        method = Method(name, self._class_def.name, params, is_static=False)
        self._class_def.add_method(method)
        return MethodBuilder(method)

    def static_method(self, name, params=()):
        method = Method(name, self._class_def.name, params, is_static=True)
        self._class_def.add_method(method)
        return MethodBuilder(method)


class ProgramBuilder:
    """Top-level builder; create classes with :meth:`cls`, then
    :meth:`build`."""

    def __init__(self, entry="Main.main"):
        self._program = Program(entry)

    def cls(self, name, superclass=None, fields=(), static_fields=()):
        """Declare a class and return its :class:`ClassBuilder`."""
        class_def = ClassDef(name, superclass)
        for field in fields:
            class_def.add_field(field)
        for field in static_fields:
            class_def.add_static_field(field)
        self._program.add_class(class_def)
        return ClassBuilder(class_def)

    def build(self, validate=True):
        """Finalize (and by default validate) the program."""
        self._program.finalize()
        if validate:
            validate_program(self._program)
        return self._program
