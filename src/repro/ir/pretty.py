"""Pretty-printer: render a PIR program back to parseable source text.

``parse_program(pretty_print(p))`` reproduces ``p`` structurally, a
property exercised by the round-trip tests.
"""

from io import StringIO


def pretty_print(program):
    """Return PIR source text for ``program`` (deterministic order)."""
    out = StringIO()
    for index, class_name in enumerate(sorted(program.classes)):
        if index:
            out.write("\n")
        _print_class(out, program.classes[class_name])
    return out.getvalue()


def _print_class(out, class_def):
    header = f"class {class_def.name}"
    if class_def.superclass is not None:
        header += f" extends {class_def.superclass}"
    out.write(header + " {\n")
    for field in class_def.fields:
        out.write(f"  field {field};\n")
    for field in class_def.static_fields:
        out.write(f"  static field {field};\n")
    for method_name in class_def.methods:
        _print_method(out, class_def.methods[method_name])
    out.write("}\n")


def _print_method(out, method):
    static = "static " if method.is_static else ""
    params = ", ".join(method.params)
    out.write(f"  {static}method {method.name}({params}) {{\n")
    for stmt in method.statements:
        out.write(f"    {_stmt_text(stmt)};\n")
    out.write("  }\n")


def _stmt_text(stmt):
    kind = stmt.kind
    if kind == "alloc":
        return f"{stmt.target} = new {stmt.class_name}"
    if kind == "null":
        return f"{stmt.target} = null"
    if kind == "copy":
        return f"{stmt.target} = {stmt.source}"
    if kind == "cast":
        return f"{stmt.target} = ({stmt.class_name}) {stmt.source}"
    if kind == "load":
        return f"{stmt.target} = {stmt.base}.{stmt.field}"
    if kind == "store":
        return f"{stmt.base}.{stmt.field} = {stmt.source}"
    if kind == "staticget":
        return f"{stmt.target} = {stmt.class_name}::{stmt.field}"
    if kind == "staticput":
        return f"{stmt.class_name}::{stmt.field} = {stmt.source}"
    if kind == "call":
        callee = (
            f"{stmt.receiver}.{stmt.method_name}"
            if stmt.is_virtual
            else f"{stmt.class_name}::{stmt.method_name}"
        )
        args = ", ".join(stmt.args)
        prefix = f"{stmt.target} = " if stmt.target is not None else ""
        return f"{prefix}{callee}({args})"
    if kind == "return":
        return f"return {stmt.source}"
    raise ValueError(f"unknown statement kind {kind!r}")
