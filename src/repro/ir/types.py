"""Class-hierarchy queries: subtyping and virtual-method resolution.

PIR variables are untyped (like registers in Jimple after type erasure);
only *objects* carry a class.  Dispatching ``x.m()`` therefore needs the
class of each object that ``x`` may point to, plus the hierarchy walk
implemented here.
"""

from repro.ir.ast import NULL_CLASS
from repro.util.errors import IRError


class ClassHierarchy:
    """Subtype and dispatch oracle for a finalized :class:`Program`.

    The hierarchy is validated on construction: unknown superclasses and
    inheritance cycles raise :class:`IRError`.
    """

    def __init__(self, program):
        self._program = program
        self._parent = {}
        self._children = {}
        for name, class_def in program.classes.items():
            parent = class_def.superclass
            if parent is not None and parent not in program.classes:
                raise IRError(f"class {name} extends unknown class {parent}")
            self._parent[name] = parent
            self._children.setdefault(name, [])
            if parent is not None:
                self._children.setdefault(parent, []).append(name)
        self._check_acyclic()
        self._dispatch_cache = {}

    def _check_acyclic(self):
        for name in self._parent:
            seen = set()
            node = name
            while node is not None:
                if node in seen:
                    raise IRError(f"inheritance cycle through class {name}")
                seen.add(node)
                node = self._parent[node]

    # ------------------------------------------------------------------
    # subtyping
    # ------------------------------------------------------------------
    def superclasses(self, name):
        """``name`` and its ancestors, nearest first."""
        chain = []
        node = name
        while node is not None:
            chain.append(node)
            node = self._parent.get(node)
        return chain

    def is_subtype(self, sub, sup):
        """True when ``sub`` is ``sup`` or a (transitive) subclass.

        The null class is a subtype of everything, mirroring Java's null
        type; this makes ``(C) null`` a safe cast.
        """
        if sub == NULL_CLASS:
            return True
        return sup in self.superclasses(sub)

    def subtypes(self, name):
        """``name`` and all (transitive) subclasses, deterministic order."""
        result = []
        stack = [name]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(reversed(self._children.get(node, [])))
        return result

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def dispatch(self, class_name, method_name):
        """Resolve a virtual call on an object of ``class_name``.

        Walks from ``class_name`` up the superclass chain and returns the
        first :class:`Method` named ``method_name``, or ``None`` when the
        class does not understand the message (such calls are simply
        unlinked, matching how unmodeled targets are dropped).
        """
        key = (class_name, method_name)
        if key in self._dispatch_cache:
            return self._dispatch_cache[key]
        resolved = None
        for ancestor in self.superclasses(class_name):
            class_def = self._program.classes.get(ancestor)
            if class_def is not None and method_name in class_def.methods:
                resolved = class_def.methods[method_name]
                break
        self._dispatch_cache[key] = resolved
        return resolved

    def classes_understanding(self, method_name):
        """All class names whose dispatch of ``method_name`` succeeds.

        Used by the CHA/RTA-style call-graph baseline, which must assume
        any understanding class could be the receiver.
        """
        return [
            name
            for name in sorted(self._program.classes)
            if self.dispatch(name, method_name) is not None
        ]
