"""Tokenizer for PIR source text.

Token kinds:

``IDENT``    identifiers ``[A-Za-z_$][A-Za-z0-9_$]*`` (keywords carry the
             same kind with the keyword as value — the parser matches on
             value for the small keyword set);
``PUNCT``    one of ``{ } ( ) = ; , .`` and the two-character ``::``;
``EOF``      end of input.

Comments: ``// ...`` to end of line and ``/* ... */`` (non-nesting).
"""

from repro.util.errors import ParseError

KEYWORDS = frozenset(
    ["class", "extends", "field", "static", "method", "new", "null", "return"]
)

_PUNCT_TWO = ("::",)
_PUNCT_ONE = "{}()=;,."


class Token:
    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind, value, line, column):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def _is_ident_start(ch):
    return ch.isalpha() or ch in "_$"


def _is_ident_char(ch):
    return ch.isalnum() or ch in "_$"


def tokenize(source):
    """Tokenize ``source`` into a list of :class:`Token` ending with EOF.

    Raises :class:`ParseError` on unknown characters or unterminated
    block comments.
    """
    tokens = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)

    def column():
        return i - line_start + 1

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise ParseError("unterminated block comment", line, column())
            line += source.count("\n", i, end)
            if "\n" in source[i:end]:
                line_start = source.rfind("\n", i, end) + 1
            i = end + 2
            continue
        if _is_ident_start(ch):
            start = i
            while i < n and _is_ident_char(source[i]):
                i += 1
            tokens.append(Token("IDENT", source[start:i], line, start - line_start + 1))
            continue
        two = source[i : i + 2]
        if two in _PUNCT_TWO:
            tokens.append(Token("PUNCT", two, line, column()))
            i += 2
            continue
        if ch in _PUNCT_ONE:
            tokens.append(Token("PUNCT", ch, line, column()))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column())

    tokens.append(Token("EOF", None, line, column()))
    return tokens
