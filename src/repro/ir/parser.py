"""Recursive-descent parser for PIR source text.

Grammar (``[x]`` optional, ``*`` repetition)::

    program  := class*
    class    := "class" IDENT ["extends" IDENT] "{" member* "}"
    member   := ["static"] "field" IDENT ";"
              | ["static"] "method" IDENT "(" params ")" "{" stmt* "}"
    params   := [IDENT ("," IDENT)*]
    stmt     := "return" IDENT ";"
              | IDENT "::" IDENT "=" IDENT ";"                  # static put
              | IDENT "::" IDENT "(" args ")" ";"               # static call
              | IDENT "." IDENT "=" IDENT ";"                   # store
              | IDENT "." IDENT "(" args ")" ";"                # virtual call
              | IDENT "=" rhs ";"
    rhs      := "new" IDENT                                      # alloc
              | "null"
              | "(" IDENT ")" IDENT                              # cast
              | IDENT "::" IDENT [ "(" args ")" ]                # static get/call
              | IDENT "." IDENT [ "(" args ")" ]                 # load/virtual call
              | IDENT                                            # copy
    args     := [IDENT ("," IDENT)*]

Statics use ``::`` so the parser needs no type information to tell
``x = C::g`` (global read) from ``x = y.f`` (instance load), mirroring the
paper's distinction between ``assignglobal`` and ``load`` edges.
"""

from repro.ir.ast import (
    Alloc,
    Call,
    Cast,
    ClassDef,
    Copy,
    Load,
    Method,
    NullAssign,
    Program,
    Return,
    StaticGet,
    StaticPut,
    Store,
)
from repro.ir.lexer import KEYWORDS, tokenize
from repro.ir.validate import validate_program
from repro.util.errors import ParseError


def parse_program(source, entry="Main.main", validate=True):
    """Parse PIR ``source`` into a finalized :class:`Program`.

    ``entry`` names the entry method; set ``validate=False`` to skip the
    well-formedness checks (useful when assembling partial programs in
    tests).
    """
    program = _Parser(source).parse(entry)
    program.finalize()
    if validate:
        validate_program(program)
    return program


class _Parser:
    def __init__(self, source):
        self._tokens = tokenize(source)
        self._pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset=0):
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self):
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _error(self, message, token=None):
        token = token or self._peek()
        raise ParseError(message, token.line, token.column)

    def _expect_punct(self, value):
        token = self._advance()
        if token.kind != "PUNCT" or token.value != value:
            self._error(f"expected {value!r}, found {token.value!r}", token)
        return token

    def _expect_keyword(self, word):
        token = self._advance()
        if token.kind != "IDENT" or token.value != word:
            self._error(f"expected keyword {word!r}, found {token.value!r}", token)
        return token

    def _expect_name(self):
        token = self._advance()
        if token.kind != "IDENT":
            self._error(f"expected identifier, found {token.value!r}", token)
        if token.value in KEYWORDS:
            self._error(f"keyword {token.value!r} cannot be used as a name", token)
        return token.value

    def _at_keyword(self, word):
        token = self._peek()
        return token.kind == "IDENT" and token.value == word

    def _at_punct(self, value, offset=0):
        token = self._peek(offset)
        return token.kind == "PUNCT" and token.value == value

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse(self, entry):
        program = Program(entry)
        while self._peek().kind != "EOF":
            program.add_class(self._parse_class())
        return program

    def _parse_class(self):
        self._expect_keyword("class")
        name = self._expect_name()
        superclass = None
        if self._at_keyword("extends"):
            self._advance()
            superclass = self._expect_name()
        class_def = ClassDef(name, superclass)
        self._expect_punct("{")
        while not self._at_punct("}"):
            self._parse_member(class_def)
        self._expect_punct("}")
        return class_def

    def _parse_member(self, class_def):
        is_static = False
        if self._at_keyword("static"):
            self._advance()
            is_static = True
        if self._at_keyword("field"):
            self._advance()
            name = self._expect_name()
            self._expect_punct(";")
            if is_static:
                class_def.add_static_field(name)
            else:
                class_def.add_field(name)
        elif self._at_keyword("method"):
            self._advance()
            class_def.add_method(self._parse_method(class_def.name, is_static))
        else:
            self._error("expected 'field' or 'method'")

    def _parse_method(self, class_name, is_static):
        name = self._expect_name()
        self._expect_punct("(")
        params = []
        if not self._at_punct(")"):
            params.append(self._expect_name())
            while self._at_punct(","):
                self._advance()
                params.append(self._expect_name())
        self._expect_punct(")")
        method = Method(name, class_name, params, is_static)
        self._expect_punct("{")
        while not self._at_punct("}"):
            method.add(self._parse_statement())
        self._expect_punct("}")
        return method

    def _parse_statement(self):
        line = self._peek().line
        if self._at_keyword("return"):
            self._advance()
            source = self._expect_name()
            self._expect_punct(";")
            return Return(source, label=line)

        first = self._expect_name()
        if self._at_punct("::"):
            return self._parse_static_lhs(first, line)
        if self._at_punct("."):
            return self._parse_dotted_lhs(first, line)
        self._expect_punct("=")
        return self._parse_assignment(first, line)

    def _parse_static_lhs(self, class_name, line):
        """``C::g = x;`` or ``C::m(args);``"""
        self._expect_punct("::")
        member = self._expect_name()
        if self._at_punct("("):
            args = self._parse_args()
            self._expect_punct(";")
            return Call(None, None, class_name, member, args, label=line)
        self._expect_punct("=")
        source = self._expect_name()
        self._expect_punct(";")
        return StaticPut(class_name, member, source, label=line)

    def _parse_dotted_lhs(self, base, line):
        """``x.f = y;`` or ``x.m(args);``"""
        self._expect_punct(".")
        member = self._expect_name()
        if self._at_punct("("):
            args = self._parse_args()
            self._expect_punct(";")
            return Call(None, base, None, member, args, label=line)
        self._expect_punct("=")
        source = self._expect_name()
        self._expect_punct(";")
        return Store(base, member, source, label=line)

    def _parse_assignment(self, target, line):
        """Everything of the form ``target = rhs;``."""
        if self._at_keyword("new"):
            self._advance()
            class_name = self._expect_name()
            self._expect_punct(";")
            return Alloc(target, class_name, label=line)
        if self._at_keyword("null"):
            self._advance()
            self._expect_punct(";")
            return NullAssign(target, label=line)
        if self._at_punct("("):
            self._advance()
            class_name = self._expect_name()
            self._expect_punct(")")
            source = self._expect_name()
            self._expect_punct(";")
            return Cast(target, class_name, source, label=line)

        first = self._expect_name()
        if self._at_punct("::"):
            self._advance()
            member = self._expect_name()
            if self._at_punct("("):
                args = self._parse_args()
                self._expect_punct(";")
                return Call(target, None, first, member, args, label=line)
            self._expect_punct(";")
            return StaticGet(target, first, member, label=line)
        if self._at_punct("."):
            self._advance()
            member = self._expect_name()
            if self._at_punct("("):
                args = self._parse_args()
                self._expect_punct(";")
                return Call(target, first, None, member, args, label=line)
            self._expect_punct(";")
            return Load(target, first, member, label=line)
        self._expect_punct(";")
        return Copy(target, first, label=line)

    def _parse_args(self):
        self._expect_punct("(")
        args = []
        if not self._at_punct(")"):
            args.append(self._expect_name())
            while self._at_punct(","):
                self._advance()
                args.append(self._expect_name())
        self._expect_punct(")")
        return args
