"""PIR — a small Java-like pointer intermediate representation.

The paper's analyses consume a Pointer Assignment Graph built by Soot from
Java bytecode.  PIR is the frontend substitute: a tiny class-based language
with exactly the statement forms of the paper's Figure 1 — allocations,
copies, casts, field loads/stores, static (global) accesses, virtual and
static calls, and returns.

Programs can be built three ways:

* parse PIR source text with :func:`repro.ir.parser.parse_program`;
* assemble programmatically with :class:`repro.ir.builder.ProgramBuilder`;
* generate synthetic benchmarks with :mod:`repro.bench.generator`.
"""

from repro.ir.ast import (
    Alloc,
    Call,
    Cast,
    ClassDef,
    Copy,
    Load,
    Method,
    NullAssign,
    Program,
    Return,
    StaticGet,
    StaticPut,
    Store,
)
from repro.ir.builder import ClassBuilder, MethodBuilder, ProgramBuilder
from repro.ir.parser import parse_program
from repro.ir.pretty import pretty_print
from repro.ir.types import ClassHierarchy
from repro.ir.validate import validate_program

__all__ = [
    "Alloc",
    "Call",
    "Cast",
    "ClassBuilder",
    "ClassDef",
    "ClassHierarchy",
    "Copy",
    "Load",
    "Method",
    "MethodBuilder",
    "NullAssign",
    "Program",
    "ProgramBuilder",
    "Return",
    "StaticGet",
    "StaticPut",
    "Store",
    "parse_program",
    "pretty_print",
    "validate_program",
]
