"""Well-formedness checks for finalized PIR programs.

The validator enforces the rules every downstream component assumes:

1. the entry method exists and is static with no parameters;
2. every allocated or cast-to class exists;
3. the class hierarchy is acyclic with known superclasses;
4. static field accesses name a declared static field of an existing class;
5. static calls resolve (the named class or an ancestor declares the
   method);
6. ``this`` is never referenced inside a static method;
7. call-argument counts match the callee's declared parameters for static
   calls, and for virtual calls match *every* class understanding the
   method name (PIR has no overloading, so arity must be consistent);
8. instance fields that are loaded or stored are declared by at least one
   class (field names act as global selectors, as in the PAG).

Violations raise :class:`ValidationError` listing every problem found.
"""

from repro.ir.ast import THIS
from repro.ir.types import ClassHierarchy
from repro.util.errors import IRError, ValidationError


def validate_program(program):
    """Validate ``program``, raising :class:`ValidationError` on problems.

    Returns the program unchanged on success, so the call can be chained.
    """
    problems = []
    try:
        hierarchy = ClassHierarchy(program)
    except IRError as exc:
        raise ValidationError(f"1 problem(s) found:\n  - {exc}") from exc

    declared_fields = set()
    for class_def in program.classes.values():
        declared_fields.update(class_def.fields)

    _check_entry(program, problems)
    for method, stmt in program.statements():
        context = f"{method.qualified_name}: {stmt!r}"
        _check_statement(program, hierarchy, method, stmt, declared_fields, context, problems)

    if problems:
        summary = "\n  - ".join(problems)
        raise ValidationError(f"{len(problems)} problem(s) found:\n  - {summary}")
    return program


def _check_entry(program, problems):
    try:
        entry = program.lookup_method(program.entry)
    except Exception:
        problems.append(f"entry method {program.entry!r} does not exist")
        return
    if not entry.is_static:
        problems.append(f"entry method {program.entry!r} must be static")
    if entry.params:
        problems.append(f"entry method {program.entry!r} must take no parameters")


def _check_statement(program, hierarchy, method, stmt, declared_fields, context, problems):
    if method.is_static and _mentions_this(stmt):
        problems.append(f"'this' used in static method — {context}")

    if stmt.kind == "alloc":
        if stmt.class_name not in program.classes:
            problems.append(f"allocation of unknown class — {context}")
    elif stmt.kind == "cast":
        if stmt.class_name not in program.classes:
            problems.append(f"cast to unknown class — {context}")
    elif stmt.kind in ("load", "store"):
        if stmt.field not in declared_fields:
            problems.append(f"undeclared instance field {stmt.field!r} — {context}")
    elif stmt.kind in ("staticget", "staticput"):
        _check_static_field(program, stmt, context, problems)
    elif stmt.kind == "call":
        _check_call(program, hierarchy, stmt, context, problems)


def _mentions_this(stmt):
    for attr in ("target", "source", "base", "receiver"):
        if getattr(stmt, attr, None) == THIS:
            return True
    return THIS in getattr(stmt, "args", ())


def _check_static_field(program, stmt, context, problems):
    class_def = program.classes.get(stmt.class_name)
    if class_def is None:
        problems.append(f"static access to unknown class — {context}")
    elif stmt.field not in class_def.static_fields:
        problems.append(
            f"undeclared static field {stmt.class_name}::{stmt.field} — {context}"
        )


def _check_call(program, hierarchy, stmt, context, problems):
    n_args = len(stmt.args)
    if stmt.is_virtual:
        understanding = hierarchy.classes_understanding(stmt.method_name)
        if not understanding:
            problems.append(f"no class understands {stmt.method_name!r} — {context}")
            return
        for class_name in understanding:
            callee = hierarchy.dispatch(class_name, stmt.method_name)
            if len(callee.params) != n_args:
                problems.append(
                    f"arity mismatch: {callee.qualified_name} takes "
                    f"{len(callee.params)} arg(s), call passes {n_args} — {context}"
                )
                return
    else:
        if stmt.class_name not in program.classes:
            problems.append(f"static call to unknown class — {context}")
            return
        callee = hierarchy.dispatch(stmt.class_name, stmt.method_name)
        if callee is None:
            problems.append(
                f"unresolved static call {stmt.class_name}::{stmt.method_name} — {context}"
            )
        elif not callee.is_static:
            problems.append(
                f"static call to instance method {callee.qualified_name} — {context}"
            )
        elif len(callee.params) != n_args:
            problems.append(
                f"arity mismatch: {callee.qualified_name} takes "
                f"{len(callee.params)} arg(s), call passes {n_args} — {context}"
            )
