"""repro — reproduction of "On-Demand Dynamic Summary-based Points-to
Analysis" (Shang, Xie & Xue, CGO 2012).

The library implements the full stack the paper sits on:

* a Java-like pointer IR with parser and builder (:mod:`repro.ir`);
* Andersen/RTA call-graph construction (:mod:`repro.callgraph`);
* the Pointer Assignment Graph (:mod:`repro.pag`);
* four demand-driven points-to analyses — NOREFINE, REFINEPTS, DYNSUM
  (the paper's contribution) and STASUM (:mod:`repro.analysis`);
* the three evaluation clients (:mod:`repro.clients`);
* the synthetic benchmark suite and experiment harness
  (:mod:`repro.bench`);
* the session-oriented query engine fronting all of the above
  (:mod:`repro.engine`): batched queries, bounded shared caches, edit
  sessions;
* the versioned wire API over the engine (:mod:`repro.api`):
  serializable queries/results, summary-store snapshots with engine
  warm start, and the ``repro-serve`` JSON-lines service;
* the process-level shared cache service (:mod:`repro.cacheserver`):
  shard-server processes serving summaries to many analysis processes
  behind the ``SummaryBackend`` store seam, with the ``repro-cached``
  launcher (engines opt in via ``CachePolicy(remote=...)``).

Quickstart::

    from repro import PointsToEngine, build_pag, parse_program

    engine = PointsToEngine(build_pag(parse_program(SOURCE)))
    result = engine.query_name("Main.main", "v")
    batch = engine.query_batch([("Main.main", "v"), ("Main.main", "w")])
    print(result.objects, batch.stats.hit_rate)

The analyses remain directly constructible (``DynSum(pag)`` etc.) for
low-level experimentation; the engine is the supported surface for hosts.
"""

from repro.analysis import (
    AliasResult,
    AnalysisConfig,
    ContextInsensitivePta,
    DynSum,
    EditReport,
    IncrementalAnalysisSession,
    NoRefine,
    QueryResult,
    QueryTracer,
    RefinePts,
    StaSum,
    SummaryCache,
    format_trace,
)
from repro.analysis.summaries import (
    BoundedSummaryCache,
    CacheStats,
    CostAwareSummaryCache,
    ShardedSummaryCache,
    SummaryBackend,
    SummaryStore,
)
from repro.api import (
    PROTOCOL_VERSION,
    PointsToService,
    ProtocolError,
    SnapshotError,
    SummarySnapshot,
    WireError,
)
from repro.callgraph import AndersenAnalysis, CallGraph, rta_call_graph
from repro.cfl import EMPTY_STACK, Stack
from repro.engine import (
    BatchExecutor,
    BatchResult,
    BatchStats,
    CachePolicy,
    EditSession,
    EnginePolicy,
    EngineStats,
    ParallelExecutor,
    PointsToEngine,
    QuerySpec,
    SequentialExecutor,
)
from repro.clients import (
    ALL_CLIENTS,
    FactoryMethodClient,
    NullDerefClient,
    SafeCastClient,
)
from repro.ir import ProgramBuilder, parse_program, pretty_print
from repro.pag import PAG, build_pag, compute_statistics

__version__ = "1.3.0"

__all__ = [
    "ALL_CLIENTS",
    "AliasResult",
    "AnalysisConfig",
    "AndersenAnalysis",
    "BatchExecutor",
    "BatchResult",
    "BatchStats",
    "BoundedSummaryCache",
    "CachePolicy",
    "CacheStats",
    "CostAwareSummaryCache",
    "CallGraph",
    "ContextInsensitivePta",
    "DynSum",
    "EMPTY_STACK",
    "EditReport",
    "EditSession",
    "EnginePolicy",
    "EngineStats",
    "FactoryMethodClient",
    "IncrementalAnalysisSession",
    "NoRefine",
    "NullDerefClient",
    "PAG",
    "PROTOCOL_VERSION",
    "ParallelExecutor",
    "PointsToEngine",
    "PointsToService",
    "ProgramBuilder",
    "ProtocolError",
    "QueryResult",
    "QuerySpec",
    "QueryTracer",
    "RefinePts",
    "SafeCastClient",
    "SequentialExecutor",
    "ShardedSummaryCache",
    "SnapshotError",
    "StaSum",
    "Stack",
    "SummaryBackend",
    "SummaryCache",
    "SummarySnapshot",
    "SummaryStore",
    "WireError",
    "build_pag",
    "compute_statistics",
    "parse_program",
    "pretty_print",
    "format_trace",
    "rta_call_graph",
    "__version__",
]
