"""repro — reproduction of "On-Demand Dynamic Summary-based Points-to
Analysis" (Shang, Xie & Xue, CGO 2012).

The library implements the full stack the paper sits on:

* a Java-like pointer IR with parser and builder (:mod:`repro.ir`);
* Andersen/RTA call-graph construction (:mod:`repro.callgraph`);
* the Pointer Assignment Graph (:mod:`repro.pag`);
* four demand-driven points-to analyses — NOREFINE, REFINEPTS, DYNSUM
  (the paper's contribution) and STASUM (:mod:`repro.analysis`);
* the three evaluation clients (:mod:`repro.clients`);
* the synthetic benchmark suite and experiment harness
  (:mod:`repro.bench`).

Quickstart::

    from repro import parse_program, build_pag, DynSum

    program = parse_program(SOURCE)
    pag = build_pag(program)
    analysis = DynSum(pag)
    result = analysis.points_to_name("Main.main", "v")
    print(result.objects)
"""

from repro.analysis import (
    AliasResult,
    AnalysisConfig,
    ContextInsensitivePta,
    DynSum,
    EditReport,
    IncrementalAnalysisSession,
    NoRefine,
    QueryResult,
    QueryTracer,
    RefinePts,
    StaSum,
    SummaryCache,
    format_trace,
)
from repro.callgraph import AndersenAnalysis, CallGraph, rta_call_graph
from repro.cfl import EMPTY_STACK, Stack
from repro.clients import (
    ALL_CLIENTS,
    FactoryMethodClient,
    NullDerefClient,
    SafeCastClient,
)
from repro.ir import ProgramBuilder, parse_program, pretty_print
from repro.pag import PAG, build_pag, compute_statistics

__version__ = "1.0.0"

__all__ = [
    "ALL_CLIENTS",
    "AliasResult",
    "AnalysisConfig",
    "AndersenAnalysis",
    "CallGraph",
    "ContextInsensitivePta",
    "DynSum",
    "EMPTY_STACK",
    "EditReport",
    "FactoryMethodClient",
    "IncrementalAnalysisSession",
    "NoRefine",
    "NullDerefClient",
    "PAG",
    "ProgramBuilder",
    "QueryResult",
    "QueryTracer",
    "RefinePts",
    "SafeCastClient",
    "StaSum",
    "Stack",
    "SummaryCache",
    "build_pag",
    "compute_statistics",
    "parse_program",
    "pretty_print",
    "format_trace",
    "rta_call_graph",
    "__version__",
]
