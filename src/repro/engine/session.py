"""Edit sessions — the engine's IDE/JIT maintenance surface.

The paper motivates DYNSUM for hosts where "the program undergoes
constantly a lot of changes" (Sections 1, 5.3, 7).  An
:class:`EditSession` is how such a host talks to the engine: it applies
method-body edits through the underlying
:class:`~repro.analysis.incremental.IncrementalAnalysisSession` (which
drops exactly the summaries an edit can stale and migrates the rest
across the PAG rebuild), or cheaply invalidates a method's summaries
without reparsing anything.  Queries keep flowing through the engine the
whole time — post-edit answers are identical to a cold start, only
cheaper, and the session keeps the transcript of what each edit cost.
"""


class EditSession:
    """A transcript of edits applied to a program-backed engine.

    Obtained from :meth:`~repro.engine.core.PointsToEngine.edit_session`;
    many sessions may be open at once (they share the engine's state —
    the transcript is per session, the effects are global).
    """

    __slots__ = ("engine", "reports")

    def __init__(self, engine):
        self.engine = engine
        #: :class:`~repro.analysis.incremental.EditReport` per edit, in
        #: application order.
        self.reports = []

    # ------------------------------------------------------------------
    # edits (delegation to the incremental machinery)
    # ------------------------------------------------------------------
    def replace_body(self, method_qname, build_fn):
        """Replace ``method_qname``'s statements and re-analyse.

        ``build_fn`` receives a fresh
        :class:`~repro.ir.builder.MethodBuilder` over the emptied method.
        Returns the :class:`~repro.analysis.incremental.EditReport`.
        """
        report = self.engine._incremental.replace_body(method_qname, build_fn)
        self.reports.append(report)
        return report

    def edit(self, method_qname, mutate_fn):
        """Arbitrary in-place mutation (``mutate_fn(method)``) followed by
        re-analysis."""
        report = self.engine._incremental.edit(method_qname, mutate_fn)
        self.reports.append(report)
        return report

    def invalidate(self, method_qname):
        """Drop one method's cached summaries without touching the
        program — the lighter hammer for hosts that track their own
        dirtiness.  Returns the number of summaries dropped."""
        return self.engine.invalidate_method(method_qname)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def edit_count(self):
        return len(self.reports)

    @property
    def summary_count(self):
        return self.engine._incremental.summary_count

    def __repr__(self):
        return f"EditSession({self.edit_count} edit(s), {self.engine!r})"
