"""Pluggable batch executors — how a planned batch's traversals run.

The scheduler (:mod:`repro.engine.scheduler`) decides *what* to execute
(unique specs, in warmth order); an executor decides *how*:

* :class:`SequentialExecutor` — one traversal after another, on the
  calling thread.  This is the paper's protocol and the default.
* :class:`ParallelExecutor` — fan the traversals out on a
  :class:`concurrent.futures.ThreadPoolExecutor`.  DYNSUM summaries are
  pure, context-independent memos, so concurrent traversals can only
  disagree about *cost* (which thread computes a summary first), never
  about answers — the same argument that already lets the scheduler
  reorder a batch.  Parallel execution therefore requires only that the
  summary store tolerate concurrent access (see
  :class:`~repro.analysis.summaries.ShardedSummaryCache`); the engine
  falls back to sequential execution when it does not.

Executors are deliberately tiny: ``map(fn, items)`` returning results in
``items`` order.  Exceptions raised by any traversal propagate to the
caller exactly as a sequential run would raise them.

``REPRO_PARALLELISM`` is the environment override consulted when an
:class:`~repro.engine.policy.EnginePolicy` leaves ``parallelism`` unset;
the CI matrix uses it to replay the engine test suite on a thread pool
without editing any test.
"""

import os
from concurrent.futures import ThreadPoolExecutor as _ThreadPool

from repro.util.errors import IRError

#: Environment variable supplying the default worker count for policies
#: that do not pin ``parallelism`` explicitly.
PARALLELISM_ENV = "REPRO_PARALLELISM"


def default_parallelism():
    """The environment-supplied worker count (1 when unset/blank)."""
    raw = os.environ.get(PARALLELISM_ENV, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise IRError(
            f"{PARALLELISM_ENV} must be an integer worker count, got {raw!r}"
        ) from None
    return max(1, value)


class BatchExecutor:
    """Contract shared by all executors.

    ``parallelism`` is the maximum number of traversals in flight at
    once; ``map(fn, items)`` runs ``fn`` over every item and returns the
    results aligned with ``items`` order, whatever the completion order.
    """

    name = "base"
    parallelism = 1

    def map(self, fn, items):
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}(parallelism={self.parallelism})"


class SequentialExecutor(BatchExecutor):
    """Run traversals one at a time, in the planned order."""

    name = "sequential"

    def map(self, fn, items):
        return [fn(item) for item in items]


class ParallelExecutor(BatchExecutor):
    """Run traversals on a thread pool of ``max_workers`` threads.

    The pool is created per :meth:`map` call — batch granularity — so an
    idle engine holds no threads.  Single-item batches skip the pool
    entirely.  Worker threads share the engine's analysis instance: the
    PAG is immutable during queries, per-query state is local to each
    traversal, the base-class counters are lock-protected, and the
    summary store is expected to be concurrency-safe (the engine checks
    before choosing this executor).
    """

    name = "parallel"

    def __init__(self, max_workers):
        if max_workers < 1:
            raise IRError(f"max_workers must be >= 1, got {max_workers}")
        self.parallelism = int(max_workers)

    def map(self, fn, items):
        items = list(items)
        if len(items) <= 1 or self.parallelism == 1:
            return [fn(item) for item in items]
        with _ThreadPool(max_workers=min(self.parallelism, len(items))) as pool:
            return list(pool.map(fn, items))


def make_executor(parallelism=None):
    """Executor for ``parallelism`` workers (``None`` = environment
    default per :func:`default_parallelism`; ``<= 1`` = sequential)."""
    workers = default_parallelism() if parallelism is None else int(parallelism)
    if workers <= 1:
        return SequentialExecutor()
    return ParallelExecutor(workers)
