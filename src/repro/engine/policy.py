"""Per-engine policy objects: analysis choice, budget, cache bounds.

A :class:`PointsToEngine` is configured once, with an immutable
:class:`EnginePolicy`, instead of threading budget/cache/analysis options
through every call site.  The policy names one of the repo's analyses
(``DYNSUM``, ``STASUM``, ``REFINEPTS``, ``NOREFINE``, ``CIPTA``), carries
the :class:`~repro.analysis.base.AnalysisConfig` tunables, and — for the
summary-based analyses — a :class:`CachePolicy` choosing between the
paper's unbounded ``Cache`` and the size-capped LRU store a long-running
host needs.
"""

from dataclasses import dataclass, field

from repro.analysis.base import AnalysisConfig
from repro.analysis.cipta import ContextInsensitivePta
from repro.analysis.dynsum import DynSum
from repro.analysis.norefine import NoRefine
from repro.analysis.refinepts import RefinePts
from repro.analysis.stasum import StaSum
from repro.analysis.summaries import BoundedSummaryCache, SummaryCache
from repro.cfl.budget import DEFAULT_BUDGET

#: Registry of engine-drivable analyses, keyed by their Table 2 names.
ANALYSES = {
    cls.name: cls
    for cls in (DynSum, StaSum, RefinePts, NoRefine, ContextInsensitivePta)
}


def resolve_analysis(name):
    """Map an analysis name (any case, ``-``/``_`` tolerated) to its class."""
    key = name.upper().replace("-", "").replace("_", "")
    try:
        return ANALYSES[key]
    except KeyError:
        known = ", ".join(sorted(ANALYSES))
        raise KeyError(f"unknown analysis {name!r}; known: {known}") from None


@dataclass(frozen=True)
class CachePolicy:
    """Bounding policy for the DYNSUM summary cache.

    Both limits ``None`` (the default) selects the paper's unbounded
    :class:`~repro.analysis.summaries.SummaryCache`; setting either picks
    the LRU :class:`~repro.analysis.summaries.BoundedSummaryCache`.
    """

    max_entries: int = None
    max_facts: int = None

    @property
    def bounded(self):
        return self.max_entries is not None or self.max_facts is not None

    def make_store(self):
        if self.bounded:
            return BoundedSummaryCache(
                max_entries=self.max_entries, max_facts=self.max_facts
            )
        return SummaryCache()


@dataclass(frozen=True)
class EnginePolicy:
    """Everything a :class:`~repro.engine.core.PointsToEngine` is allowed
    to decide on the caller's behalf.

    ``dedupe`` and ``reorder`` are the batch scheduler's defaults (both
    overridable per ``query_batch`` call): deduplication collapses
    repeated (node, context) queries onto one traversal, and reordering
    groups a batch's queries by method so consecutive queries hit
    still-warm summaries — which is what keeps hit rates high when the
    cache is LRU-bounded.  The shipped paper protocols disable both to
    stay faithful to the published query streams.
    """

    analysis: str = DynSum.name
    budget: int = DEFAULT_BUDGET
    max_field_depth: int = None
    track_heap_contexts: bool = True
    cache: CachePolicy = field(default_factory=CachePolicy)
    dedupe: bool = True
    reorder: bool = True

    def analysis_class(self):
        return resolve_analysis(self.analysis)

    def analysis_config(self):
        return AnalysisConfig(
            budget=self.budget,
            max_field_depth=self.max_field_depth,
            track_heap_contexts=self.track_heap_contexts,
        )

    def make_analysis(self, pag, cache=None):
        """Instantiate the configured analysis over ``pag``.

        ``cache`` overrides the cache policy (used to share one summary
        store between engines modelling one host process).
        """
        cls = self.analysis_class()
        config = self.analysis_config()
        if cls is DynSum:
            return cls(pag, config, cache=cache or self.cache.make_store())
        return cls(pag, config)
