"""Per-engine policy objects: analysis choice, budget, cache bounds.

A :class:`PointsToEngine` is configured once, with an immutable
:class:`EnginePolicy`, instead of threading budget/cache/analysis options
through every call site.  The policy names one of the repo's analyses
(``DYNSUM``, ``STASUM``, ``REFINEPTS``, ``NOREFINE``, ``CIPTA``), carries
the :class:`~repro.analysis.base.AnalysisConfig` tunables, and — for the
summary-based analyses — a :class:`CachePolicy` choosing between the
paper's unbounded ``Cache`` and the size-capped LRU store a long-running
host needs.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.analysis.base import AnalysisConfig
from repro.analysis.cipta import ContextInsensitivePta
from repro.analysis.ppta import TRAVERSAL_IMPLS
from repro.analysis.dynsum import DynSum
from repro.analysis.norefine import NoRefine
from repro.analysis.refinepts import RefinePts
from repro.analysis.stasum import StaSum
from repro.analysis.summaries import (
    BoundedSummaryCache,
    CostAwareSummaryCache,
    ShardedSummaryCache,
    SummaryCache,
    check_eviction,
)
from repro.cfl.budget import DEFAULT_BUDGET
from repro.engine.executor import default_parallelism, make_executor

#: Registry of engine-drivable analyses, keyed by their Table 2 names.
ANALYSES = {
    cls.name: cls
    for cls in (DynSum, StaSum, RefinePts, NoRefine, ContextInsensitivePta)
}


def resolve_analysis(name):
    """Map an analysis name (any case, ``-``/``_`` tolerated) to its class."""
    key = name.upper().replace("-", "").replace("_", "")
    try:
        return ANALYSES[key]
    except KeyError:
        known = ", ".join(sorted(ANALYSES))
        raise KeyError(f"unknown analysis {name!r}; known: {known}") from None


@dataclass(frozen=True)
class CachePolicy:
    """Bounding, partitioning and backend policy for the summary store.

    Both limits ``None`` (the default) selects the paper's unbounded
    :class:`~repro.analysis.summaries.SummaryCache`; setting either picks
    the LRU :class:`~repro.analysis.summaries.BoundedSummaryCache`.

    ``eviction`` chooses the capacity policy of a bounded store:
    ``"lru"`` (the default) or ``"cost"`` — evict the entry with the
    lowest steps-to-recompute per byte
    (:class:`~repro.analysis.summaries.CostAwareSummaryCache`), which
    beats LRU on bounded budgets because summaries record what they cost
    to build.

    ``shards`` partitions the store into that many independently locked
    shards by the key node's method
    (:class:`~repro.analysis.summaries.ShardedSummaryCache`) — required
    for parallel batch execution, and ``shards=1`` is the "just add a
    lock" configuration.  Left ``None``, the store is unsharded unless
    the engine's ``parallelism`` forces a concurrency-safe default (one
    shard per worker).

    ``remote`` joins the store to a shared cache service: a tuple of
    ``"host:port"`` addresses, one per shard server, in shard order
    (what ``repro-cached`` prints on startup).  The local store the
    other knobs configure becomes the **read-through tier** of a
    :class:`~repro.cacheserver.client.RemoteSummaryCache`; lookups that
    miss locally probe the owning shard server, and misses, timeouts or
    a dead service fall back to local computation — answers are
    identical with the service up, down, or killed mid-batch.
    ``remote_timeout`` is the per-operation socket timeout in seconds.
    """

    max_entries: Optional[int] = None
    max_facts: Optional[int] = None
    shards: Optional[int] = None
    eviction: str = "lru"
    #: Size-based admission bound for ``eviction="cost"``: summaries
    #: holding more than this many facts are not cached at all (see
    #: :class:`~repro.analysis.summaries.CostAwareSummaryCache`).
    admit_facts: Optional[int] = None
    remote: Optional[Tuple[str, ...]] = None
    remote_timeout: float = 1.0
    #: Pipelined remote mode (protocol 1.2): batches prefetch each
    #: shard's entries in one round trip and coalesce write-through
    #: publishes into per-shard batch-store flushes — a warm batch
    #: costs O(shards) round trips instead of one per lookup.  ``None``
    #: (the default) means *on whenever* ``remote`` *is set* — with the
    #: epoch guard (protocol 1.4) making pipelined traffic as safe as
    #: immediate write-through, O(shards) is the right default cost
    #: model.  Pass ``False`` (the ``--no-remote-pipeline`` escape
    #: hatch) to restore immediate write-through, whose prompt
    #: mid-batch cross-client visibility some multi-process tests pin.
    remote_pipeline: Optional[bool] = None
    #: Unified retry/backoff for the remote tier: a
    #: :class:`~repro.cacheserver.faults.RetryPolicy` (frozen, so the
    #: cache policy stays hashable) driving every shard link's circuit
    #: breaker — jittered exponential backoff instead of the legacy
    #: fixed interval.  ``None`` derives one from ``remote_timeout``.
    retry: Optional[object] = None
    #: Deterministic fault injection for the remote tier's client side:
    #: a :class:`~repro.cacheserver.faults.FaultSchedule` or a spec
    #: string (the ``--faults`` grammar).  ``None`` (production) defers
    #: to the ``REPRO_FAULTS`` environment variable, itself normally
    #: unset.  Injected faults flow through exactly the fail-open paths
    #: real network failures take, so answers are unchanged — only
    #: ``stats()``'s ``faults``/``degraded`` accounting shows the chaos.
    fault_schedule: Optional[object] = None

    def __post_init__(self):
        check_eviction(self.eviction)
        if self.eviction == "cost" and not self.bounded:
            raise ValueError(
                "CachePolicy(eviction='cost') needs max_entries and/or "
                "max_facts; an unbounded store never evicts, so the "
                "policy would be silently inert"
            )
        if self.admit_facts is not None and self.eviction != "cost":
            raise ValueError(
                "CachePolicy(admit_facts=...) is an eviction='cost' "
                "knob; LRU stores admit everything"
            )
        if self.remote_pipeline and self.remote is None:
            raise ValueError(
                "CachePolicy(remote_pipeline=True) needs remote=... "
                "shard addresses; there is no wire to pipeline otherwise"
            )
        if self.fault_schedule is not None and self.remote is None:
            raise ValueError(
                "CachePolicy(fault_schedule=...) injects faults into the "
                "remote tier; it needs remote=... shard addresses"
            )
        if self.retry is not None and self.remote is None:
            raise ValueError(
                "CachePolicy(retry=...) drives the remote tier's shard "
                "links; it needs remote=... shard addresses"
            )
        if self.remote is not None:
            # Tolerate a list (or any iterable of addresses); the policy
            # itself must stay hashable, so normalise to a tuple.
            object.__setattr__(self, "remote", tuple(self.remote))
            if not self.remote:
                raise ValueError("remote=() names no shard servers; use None")

    @property
    def bounded(self):
        return self.max_entries is not None or self.max_facts is not None

    @property
    def effective_pipeline(self):
        """The resolved pipelining choice: an explicit ``remote_pipeline``
        wins; ``None`` defaults to pipelined whenever the store is
        remote at all."""
        if self.remote_pipeline is None:
            return self.remote is not None
        return bool(self.remote_pipeline)

    @property
    def sharded(self):
        return self.shards is not None

    def make_store(self, default_shards=None):
        """Instantiate the configured store.

        ``default_shards`` is the engine's fallback when ``shards`` is
        unset (its worker count, so parallel engines get a
        concurrency-safe store by default); it is clamped to the
        capacity limits, whereas an explicit ``shards`` that the limits
        cannot feed raises.
        """
        shards = self.shards
        if shards is None and default_shards is not None:
            shards = max(1, min(
                default_shards,
                self.max_entries if self.max_entries is not None else default_shards,
                self.max_facts if self.max_facts is not None else default_shards,
            ))
        if shards is not None:
            store = ShardedSummaryCache(
                shards=shards,
                max_entries=self.max_entries,
                max_facts=self.max_facts,
                eviction=self.eviction,
                admit_facts=self.admit_facts,
            )
        elif self.bounded:
            if self.eviction == "cost":
                store = CostAwareSummaryCache(
                    max_entries=self.max_entries,
                    max_facts=self.max_facts,
                    admit_facts=self.admit_facts,
                )
            else:
                store = BoundedSummaryCache(
                    max_entries=self.max_entries, max_facts=self.max_facts
                )
        else:
            store = SummaryCache()
        if self.remote is not None:
            # Imported lazily: repro.cacheserver rides the repro.api
            # package, which imports the engine — a module-level import
            # here would be circular.
            from repro.cacheserver.client import RemoteSummaryCache

            return RemoteSummaryCache(
                self.remote,
                local=store,
                timeout=self.remote_timeout,
                pipeline=self.effective_pipeline,
                retry=self.retry,
                fault_schedule=self.fault_schedule,
            )
        return store


@dataclass(frozen=True)
class EnginePolicy:
    """Everything a :class:`~repro.engine.core.PointsToEngine` is allowed
    to decide on the caller's behalf.

    ``dedupe`` and ``reorder`` are the batch scheduler's defaults (both
    overridable per ``query_batch`` call): deduplication collapses
    repeated (node, context) queries onto one traversal, and reordering
    groups a batch's queries by method so consecutive queries hit
    still-warm summaries — which is what keeps hit rates high when the
    cache is LRU-bounded.  The shipped paper protocols disable both to
    stay faithful to the published query streams.

    ``parallelism`` is the batch executor's worker count: 1 runs batches
    sequentially (the paper's protocol), ``N > 1`` fans a batch's unique
    traversals out on a thread pool — answers are memo-pure, so this is
    purely a cost lever.  ``None`` (the default) defers to the
    ``REPRO_PARALLELISM`` environment variable (1 when unset), which is
    how the CI matrix replays the engine tests on a pool.  A parallel
    engine needs a concurrency-safe summary store, so an unset
    ``cache.shards`` defaults to one shard per worker; engines given a
    store that is *not* concurrency-safe (e.g. ``wrap()`` around an
    existing analysis with a plain cache) degrade parallel batches to
    sequential execution — ``BatchStats.parallelism`` reports what
    actually ran.
    """

    analysis: str = DynSum.name
    budget: int = DEFAULT_BUDGET
    max_field_depth: Optional[int] = None
    track_heap_contexts: bool = True
    cache: CachePolicy = field(default_factory=CachePolicy)
    dedupe: bool = True
    reorder: bool = True
    #: Cross-batch query planning: when True (the default) the engine
    #: records, per method, how recently earlier batches touched it, and
    #: ``reorder`` schedules a later batch's hottest methods first — so
    #: summaries still resident in a bounded store are re-used before
    #: eviction pressure from colder work pushes them out.  Irrelevant
    #: when ``reorder`` is off (the paper protocols), free when the
    #: store is unbounded.
    warmth_carryover: bool = True
    parallelism: Optional[int] = None
    #: Which PPTA traversal implementation the engine's queries run
    #: under (``fast``/``array``/``native``/``reference``).  ``None``
    #: (the default) leaves the process-global selection alone —
    #: whatever :func:`repro.analysis.ppta.set_traversal_impl` or the
    #: ``REPRO_TRAVERSAL`` environment variable chose.  Setting it pins
    #: the impl for this engine's query paths only (applied as a scoped
    #: override around each query/batch, not a global mutation).  The
    #: ``native`` impl degrades to ``array`` silently when the kernel
    #: cannot load — answers never change, and ``stats()`` reports the
    #: reason as ``native_unavailable``.
    traversal_impl: Optional[str] = None
    #: Path to a :mod:`repro.api.snapshot` summary-snapshot file; when
    #: set, a freshly constructed engine replays the snapshot's entries
    #: into its summary store before answering any query, so a restarted
    #: host (or CI run) begins warm.  Entries that no longer resolve in
    #: the engine's PAG are skipped — summaries are pure memos, so a
    #: partial warm start can only change cost, never answers.
    warm_start: Optional[str] = None

    def __post_init__(self):
        if (
            self.traversal_impl is not None
            and self.traversal_impl not in TRAVERSAL_IMPLS
        ):
            known = ", ".join(sorted(TRAVERSAL_IMPLS))
            raise ValueError(
                f"unknown traversal impl {self.traversal_impl!r}; "
                f"known: {known}"
            )

    def analysis_class(self):
        return resolve_analysis(self.analysis)

    def effective_parallelism(self):
        """The resolved worker count (environment default when unset)."""
        if self.parallelism is None:
            return default_parallelism()
        return max(1, int(self.parallelism))

    def make_executor(self, parallelism=None):
        """The batch executor (``parallelism`` overrides the policy)."""
        if parallelism is None:
            parallelism = self.effective_parallelism()
        return make_executor(parallelism)

    def make_store(self):
        """The summary store, sharded by default when the policy's
        parallelism demands a concurrency-safe cache."""
        workers = self.effective_parallelism()
        return self.cache.make_store(default_shards=workers if workers > 1 else None)

    def analysis_config(self):
        return AnalysisConfig(
            budget=self.budget,
            max_field_depth=self.max_field_depth,
            track_heap_contexts=self.track_heap_contexts,
        )

    def make_analysis(self, pag, cache=None):
        """Instantiate the configured analysis over ``pag``.

        ``cache`` overrides the cache policy (used to share one summary
        store between engines modelling one host process).
        """
        cls = self.analysis_class()
        config = self.analysis_config()
        if cls is DynSum:
            return cls(pag, config, cache=cache or self.make_store())
        return cls(pag, config)
