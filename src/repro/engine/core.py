"""The :class:`PointsToEngine` — one session-oriented front door.

Every analysis in the repo answers one query at a time; the engine turns
that into the service a long-running host (the paper's IDE/JIT scenario,
Sections 1 and 5.3) actually needs:

* ``engine.query(v)`` / ``engine.query_name(m, v)`` — single demand
  queries, by PAG node or by name;
* ``engine.query_batch(vs)`` — the batch path: requests are deduplicated,
  ordered for summary-cache warmth, executed (sequentially or on a
  thread pool, per the policy's ``parallelism`` — answers are memo-pure,
  so parallelism is only a cost lever), and fanned back out in request
  order, with per-batch stats mirroring the Figure 4/5 protocol;
* ``engine.alias(a, b)`` — may-alias queries;
* ``engine.run_client(cls)`` — a whole client workload through the batch
  path;
* ``engine.edit_session()`` — code edits with summary invalidation and
  migration (program-backed DYNSUM engines);
* ``engine.stats()`` — a point-in-time snapshot of query, step and cache
  accounting;
* ``engine.save_cache(path)`` and ``EnginePolicy(warm_start=path)`` —
  summary persistence via :mod:`repro.api.snapshot`: summaries are pure
  memos keyed by nominal node identity, so a restarted host or CI run
  replays them and begins warm.

Which analysis runs, its budget, and whether the summary cache is
unbounded or LRU-capped are all decided by the engine's immutable
:class:`~repro.engine.policy.EnginePolicy`.  The engine is the seam later
scaling work (sharded caches, async batch execution, multi-process
serving) builds on: callers own sessions and policies, never analysis
internals.
"""

from contextlib import nullcontext
from dataclasses import dataclass

from repro.analysis.dynsum import DynSum
from repro.analysis.incremental import IncrementalAnalysisSession
from repro.analysis.ppta import active_traversal_impl, traversal_impl
from repro.cfl.stacks import EMPTY_STACK
from repro.engine.executor import SequentialExecutor
from repro.engine.policy import EnginePolicy
from repro.engine.scheduler import (
    BatchResult,
    BatchStats,
    as_spec,
    plan_batch,
    spec_method,
)
from repro.engine.session import EditSession
from repro.util.errors import IRError
from repro.util.timer import Timer


@dataclass(frozen=True)
class EngineStats:
    """Snapshot of an engine's lifetime accounting.

    ``queries`` counts answered requests (deduplicated requests count —
    they were answered); ``executed`` counts traversals actually run.
    ``cache`` is a :class:`~repro.analysis.summaries.CacheStats` snapshot
    or ``None`` for cache-less analyses.
    """

    analysis: str
    queries: int
    executed: int
    batches: int
    deduped: int
    #: Steps/incomplete are accumulated by the engine itself, so they
    #: survive the analysis-instance swap an edit performs and exclude
    #: any traffic a wrapped analysis answered before the engine existed.
    steps: int
    incomplete: int
    edits: int
    #: Snapshot of the *current* summary store (edits migrate into a
    #: fresh store, so its probe counters restart per program version).
    cache: object = None
    #: Warm-start provenance: summaries replayed into (skipped out of)
    #: the store from ``EnginePolicy(warm_start=...)``, zero otherwise.
    warm_loaded: int = 0
    warm_skipped: int = 0
    #: True when the warm-start snapshot carried a CSR traversal image
    #: that matched this engine's PAG and was installed zero-copy (the
    #: array backend then starts without compiling adjacency or CSR).
    csr_warm: bool = False
    #: Shared-cache provenance: a
    #: :class:`~repro.api.protocol.RemoteStoreStats` when the store is
    #: remote-backed (hit/miss/fallback counters of the service
    #: traffic), ``None`` for purely local stores.
    remote: object = None
    #: The PPTA traversal implementation this engine's queries run
    #: under: the policy's ``traversal_impl`` when pinned, else the
    #: process-global selection at snapshot time.
    traversal_impl: str = "fast"
    #: Why the native kernel cannot serve this engine (``None`` when it
    #: can, or when the engine is not running under the ``native``
    #: impl).  A non-``None`` reason means the ``native`` selection is
    #: silently degrading to ``array`` — same answers, Python speed.
    native_unavailable: object = None

    @property
    def dedup_rate(self):
        return self.deduped / self.queries if self.queries else 0.0


class PointsToEngine:
    """Batched, shared-cache query engine over one program's PAG."""

    def __init__(self, pag=None, policy=None, *, program=None, analysis=None):
        if sum(x is not None for x in (pag, program, analysis)) != 1:
            raise IRError(
                "construct a PointsToEngine from exactly one of: a PAG, "
                "a finalized program (program=...), or an existing "
                "analysis instance (analysis=...)"
            )
        if analysis is not None and policy is None:
            policy = EnginePolicy(analysis=analysis.name)
        self.policy = policy or EnginePolicy()
        self._incremental = None
        self._analysis = None
        if program is not None:
            if self.policy.analysis_class() is not DynSum:
                raise IRError(
                    "program-backed engines (edit support) require the "
                    "DYNSUM analysis; build a PAG yourself for "
                    f"{self.policy.analysis}"
                )
            self._incremental = IncrementalAnalysisSession(
                program,
                self.policy.analysis_config(),
                cache=self.policy.make_store(),
            )
        elif analysis is not None:
            self._analysis = analysis
        else:
            self._analysis = self.policy.make_analysis(pag)
        #: Lifetime counters (see :meth:`stats`).
        self.queries_answered = 0
        self.queries_executed = 0
        self.batches_run = 0
        self.queries_deduped = 0
        self.steps_total = 0
        self.incomplete_total = 0
        #: Warm-start accounting: summaries replayed into (skipped out
        #: of) the store from ``policy.warm_start``, zero otherwise.
        self.warm_loaded = 0
        self.warm_skipped = 0
        self.csr_warm = False
        #: Cross-batch warmth statistics (method -> recency stamp) —
        #: the scheduler's carryover input; see ``query_batch``.
        self._method_warmth = {}
        self._warmth_clock = 0
        if self.policy.warm_start is not None:
            self._warm_start(self.policy.warm_start)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def wrap(cls, analysis, policy=None):
        """An engine fronting an existing analysis instance.

        The bench harness uses this to route the paper's protocols —
        which construct and share analysis objects — through the engine
        without changing what is measured.
        """
        return cls(analysis=analysis, policy=policy)

    @classmethod
    def for_program(cls, program, policy=None):
        """A program-backed engine: supports :meth:`edit_session`."""
        return cls(program=program, policy=policy)

    # ------------------------------------------------------------------
    # the session surface
    # ------------------------------------------------------------------
    @property
    def analysis(self):
        if self._incremental is not None:
            return self._incremental.analysis
        return self._analysis

    @property
    def pag(self):
        if self._incremental is not None:
            return self._incremental.pag
        return self._analysis.pag

    @property
    def cache(self):
        """The summary store, or ``None`` for cache-less analyses."""
        return getattr(self.analysis, "cache", None)

    @property
    def program(self):
        return self._incremental.program if self._incremental is not None else None

    def _traversal(self):
        """The scoped traversal-impl override for one query or batch.

        A pinned ``policy.traversal_impl`` is applied around each
        execution rather than mutated globally at construction, so two
        engines with different pins coexist in one process (sequential
        use — the underlying selection is process-global, like
        :func:`~repro.analysis.ppta.traversal_impl` itself).
        """
        if self.policy.traversal_impl is None:
            return nullcontext()
        return traversal_impl(self.policy.traversal_impl)

    def query(self, item, context=EMPTY_STACK, client=None):
        """Answer one points-to query.

        ``item`` may be a PAG node, a ``(method_qname, var_name)`` pair,
        a client :class:`~repro.clients.base.Query`, or a
        :class:`~repro.engine.scheduler.QuerySpec`.
        """
        spec = as_spec(item, self.pag, context)
        with self._traversal():
            result = self.analysis.points_to(
                spec.node, spec.context, client if client is not None else spec.client
            )
        self.queries_answered += 1
        self.queries_executed += 1
        self.steps_total += result.steps
        if not result.complete:
            self.incomplete_total += 1
        return result

    def query_name(self, method_qname, var_name, context=EMPTY_STACK, client=None):
        """Convenience wrapper resolving the PAG node by name."""
        return self.query((method_qname, var_name), context, client)

    def alias(self, a, b, context1=EMPTY_STACK, context2=EMPTY_STACK):
        """May-alias query between two variables (nodes or name pairs)."""
        node_a = as_spec(a, self.pag).node
        node_b = as_spec(b, self.pag).node
        self.queries_answered += 2
        self.queries_executed += 2
        with self._traversal():
            result = self.analysis.may_alias(node_a, node_b, context1, context2)
        self.steps_total += result.steps
        if result.verdict is None:
            self.incomplete_total += 1
        return result

    def _resolve_executor(self, parallelism=None):
        """The executor for one batch (``parallelism`` overrides policy).

        A parallel executor is only honoured when the summary store can
        take concurrent traffic (``concurrent_safe`` — see
        :class:`~repro.analysis.summaries.ShardedSummaryCache`); engines
        wrapping an analysis with a plain unsynchronised cache degrade
        to sequential execution rather than corrupt the store.
        Cache-less analyses parallelise freely: their per-query state is
        traversal-local and the base counters are lock-protected.
        """
        executor = self.policy.make_executor(parallelism)
        if executor.parallelism > 1:
            cache = self.cache
            if cache is not None and not getattr(cache, "concurrent_safe", False):
                return SequentialExecutor()
        return executor

    def query_batch(
        self, items, context=EMPTY_STACK, dedupe=None, reorder=None, parallelism=None
    ):
        """Answer a batch of queries; results align with request order.

        ``dedupe``/``reorder``/``parallelism`` default to the engine
        policy.  A ``parallelism > 1`` request (per call or per policy)
        is honoured only when the summary store can take concurrent
        traffic — engines whose store is a plain unsynchronised cache
        (e.g. built via :meth:`wrap` around an existing analysis) run
        the batch sequentially instead; ``stats.parallelism`` reports
        the worker count that actually executed.  Batching never
        changes answers — deduplicated requests
        share the identical result a sequential run would produce,
        ordering only decides which traversals find the summary cache
        warm, and parallel execution (requests are independent, summaries
        are pure memos) only decides which thread pays for a summary
        first.  Under a parallel executor the batch-level stats still
        reconcile exactly (counter updates are lock- or shard-atomic);
        only each *result's* own ``stats`` deltas may include probes of
        concurrently running traversals.  Returns a
        :class:`~repro.engine.scheduler.BatchResult` whose ``stats``
        mirror one batch of the Figure 4/5 protocol.
        """
        dedupe = self.policy.dedupe if dedupe is None else dedupe
        reorder = self.policy.reorder if reorder is None else reorder
        executor = self._resolve_executor(parallelism)
        pag = self.pag
        analysis = self.analysis
        specs = [as_spec(item, pag, context) for item in items]
        carryover = self.policy.warmth_carryover
        plan = plan_batch(
            specs,
            dedupe=dedupe,
            reorder=reorder,
            include_client=analysis.uses_client_predicate,
            warmth=self._method_warmth if (carryover and reorder) else None,
        )
        cache = self.cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        evictions_before = getattr(cache, "evictions", 0) if cache is not None else 0
        summaries_before = len(cache) if cache is not None else 0
        steps_before = analysis.total_steps
        unique_results = [None] * len(plan.unique)
        ordered_specs = [plan.unique[index] for index in plan.order]

        def run_one(spec):
            return analysis.points_to(spec.node, spec.context, spec.client)

        # Pipelined backends (the remote shared-cache client in
        # CachePolicy(remote_pipeline=True) mode) expose batch hooks:
        # begin prefetches the shards, end flushes coalesced writes.
        # Purely local stores define neither and pay nothing.  The
        # hooks run INSIDE the timer — the prefetch/flush round trips
        # are this batch's cost, and moving wire work out of the
        # measurement window would make pipelining look free.
        begin_batch = getattr(cache, "begin_batch", None)
        end_batch = getattr(cache, "end_batch", None)
        timer = Timer()
        with timer, self._traversal():
            if begin_batch is not None:
                begin_batch()
            try:
                outcomes = executor.map(run_one, ordered_specs)
            finally:
                if end_batch is not None:
                    end_batch()
        for index, outcome in zip(plan.order, outcomes):
            unique_results[index] = outcome
        results = [unique_results[index] for index in plan.assignment]
        complete = sum(1 for r in unique_results if r.complete)
        stats = BatchStats(
            n_requests=plan.n_requests,
            n_unique=plan.n_unique,
            reordered=plan.reordered,
            steps=analysis.total_steps - steps_before,
            time_sec=timer.elapsed,
            complete=complete,
            incomplete=len(unique_results) - complete,
            cache_hits=(cache.hits - hits_before) if cache is not None else 0,
            cache_misses=(cache.misses - misses_before) if cache is not None else 0,
            summaries_before=summaries_before,
            summaries_after=len(cache) if cache is not None else 0,
            evictions=(
                (getattr(cache, "evictions", 0) - evictions_before)
                if cache is not None
                else 0
            ),
            parallelism=executor.parallelism,
        )
        self.batches_run += 1
        self.queries_answered += plan.n_requests
        self.queries_executed += plan.n_unique
        self.queries_deduped += plan.n_deduped
        self.steps_total += stats.steps
        self.incomplete_total += stats.incomplete
        if carryover:
            # Stamp this batch's traffic in execution order: the methods
            # executed last are the warmest at the next batch's planning
            # time (their summaries were touched most recently), so they
            # get the highest stamps and run first next time.
            for index in plan.order:
                self._warmth_clock += 1
                self._method_warmth[spec_method(plan.unique[index])] = (
                    self._warmth_clock
                )
        return BatchResult(results, stats, plan)

    def run_client(self, client_or_cls, queries=None, **batch_kwargs):
        """Run a client workload through the batch path.

        Returns ``(verdicts, batch_result)``: one verdict per query, in
        the client's query order, plus the batch accounting.
        """
        client = (
            client_or_cls(self.pag)
            if isinstance(client_or_cls, type)
            else client_or_cls
        )
        return client.run_engine(self, queries, **batch_kwargs)

    # ------------------------------------------------------------------
    # persistence: summary snapshots (the repro.api.snapshot format)
    # ------------------------------------------------------------------
    def _require_cache(self, verb):
        cache = self.cache
        if cache is None:
            raise IRError(
                f"cannot {verb} a summary snapshot: analysis "
                f"{self.analysis.name} has no summary store"
            )
        return cache

    def _warm_start(self, path):
        """Replay a saved snapshot into the (fresh) summary store.

        Entries that no longer resolve in this engine's PAG are skipped
        — summaries are pure memos, so a partial warm start affects cost
        only.  The store's counters are untouched: warm-started entries
        answer future probes as hits, which is the whole point.
        """
        from repro.api.protocol import SnapshotError
        from repro.api.snapshot import load_snapshot

        cache = self._require_cache("warm-start from")
        snapshot = load_snapshot(path)
        self.warm_loaded, self.warm_skipped = snapshot.load_into(
            cache, self.pag, strict=False
        )
        if snapshot.csr is not None:
            # A binary container also carries the compiled traversal
            # image.  When it still matches this PAG, install it as
            # zero-copy mmap views — the array backend then starts with
            # no adjacency/CSR compile at all.  A stale image (the
            # program drifted since the save) is simply dropped, like a
            # non-resolving summary entry: correctness never depends on
            # the warm start.
            try:
                self.pag.install_csr(snapshot.csr.image_for(self.pag))
            except SnapshotError:
                self.csr_warm = False
            else:
                self.csr_warm = True

    def save_cache(self, path, csr=False):
        """Write the summary store to ``path`` as a
        :class:`~repro.api.snapshot.SummarySnapshot`.
        A later engine — same process or the next one — warms from it
        via ``EnginePolicy(warm_start=path)``.  Returns the snapshot.

        By default this is the canonical JSON text form.  With
        ``csr=True`` it writes the binary container that additionally
        embeds this PAG's compiled CSR traversal image, letting the next
        process mmap the arrays back without recompiling anything."""
        from repro.api.snapshot import save_store

        cache = self._require_cache("save")
        return save_store(cache, path, csr_image=self.pag.csr() if csr else None)

    # ------------------------------------------------------------------
    # maintenance: edits and invalidation
    # ------------------------------------------------------------------
    def invalidate_method(self, method_qname):
        """Drop cached summaries of one method (0 for cache-less
        analyses); answers are unaffected, only recomputation cost."""
        invalidate = getattr(self.analysis, "invalidate_method", None)
        return invalidate(method_qname) if invalidate is not None else 0

    def edit_session(self):
        """An :class:`~repro.engine.session.EditSession` for applying
        code edits.  Requires a program-backed engine (``for_program``)."""
        if self._incremental is None:
            raise IRError(
                "edit sessions need a program-backed engine; construct "
                "with PointsToEngine.for_program(program) or "
                "PointsToEngine(program=...)"
            )
        return EditSession(self)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self):
        """A point-in-time :class:`EngineStats` snapshot.

        Steps and incomplete counts are the engine's own accumulation,
        so they keep growing across edits (which swap the analysis
        instance underneath) and never include pre-wrap traffic.
        """
        cache = self.cache
        remote_stats = getattr(cache, "remote_stats", None)
        impl = self.policy.traversal_impl or active_traversal_impl()
        native_unavailable = None
        if impl == "native":
            # Imported lazily: the probe is only meaningful (and the
            # kernel only worth loading) when native is actually the
            # selected impl.
            from repro.native.session import native_unavailable_reason

            native_unavailable = native_unavailable_reason(self.pag)
        return EngineStats(
            analysis=self.analysis.name,
            queries=self.queries_answered,
            executed=self.queries_executed,
            batches=self.batches_run,
            deduped=self.queries_deduped,
            steps=self.steps_total,
            incomplete=self.incomplete_total,
            edits=self._incremental.edit_count if self._incremental else 0,
            cache=cache.stats_snapshot() if cache is not None else None,
            warm_loaded=self.warm_loaded,
            warm_skipped=self.warm_skipped,
            csr_warm=self.csr_warm,
            remote=remote_stats() if remote_stats is not None else None,
            traversal_impl=impl,
            native_unavailable=native_unavailable,
        )

    def __repr__(self):
        return (
            f"PointsToEngine({self.policy.analysis}, "
            f"{self.queries_answered} queries, {self.batches_run} batches)"
        )
