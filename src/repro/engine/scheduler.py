"""Batch scheduling: dedup, warmth-maximising order, per-batch stats.

The scheduler turns a heterogeneous list of query requests into a
:class:`BatchPlan`:

* **normalisation** — each item becomes a :class:`QuerySpec` (a PAG node,
  a ``(method_qname, var_name)`` pair, a client
  :class:`~repro.clients.base.Query`, or an existing spec);
* **deduplication** — repeated requests for the same ``(node, context)``
  collapse onto one traversal, whose result is fanned back out to every
  requester.  When the driving analysis's result depends on the client
  predicate (REFINEPTS — see ``uses_client_predicate``), the dedup key
  additionally includes the request's ``token`` so semantically different
  predicates never share an answer;
* **ordering** — queries are grouped by the queried node's method (then
  variable), so consecutive queries traverse overlapping code and hit
  summaries while they are warm.  Same-method grouping is what keeps the
  hit rate high under an LRU-bounded cache, where a summary only helps if
  it is re-used before eviction.  Ordering never changes answers — every
  query is independent; the cache only memoises exact intermediate
  results — so reordering is purely a cost lever.

Per-batch accounting (:class:`BatchStats`) mirrors the Figure 4/5 batch
protocol of ``benchmarks/bench_figure4_batches.py``: steps, wall time,
summary-cache hit rate and cumulative summary counts, per batch.
"""

from dataclasses import dataclass

from repro.cfl.stacks import EMPTY_STACK
from repro.util.errors import IRError


class QuerySpec:
    """One normalised query request.

    ``client`` is the satisfaction predicate forwarded to the analysis
    (only REFINEPTS consults it); ``token`` is a hashable stand-in for the
    predicate's semantics used by dedup (e.g. ``(client_name, payload)``);
    ``origin`` carries the originating object (such as a client
    :class:`~repro.clients.base.Query`) for reporting.
    """

    __slots__ = ("node", "context", "client", "token", "origin")

    def __init__(self, node, context=EMPTY_STACK, client=None, token=None, origin=None):
        self.node = node
        self.context = context
        self.client = client
        self.token = token
        self.origin = origin

    def dedupe_key(self, include_client):
        if not include_client or self.client is None:
            return (self.node, self.context)
        if self.token is not None:
            return (self.node, self.context, self.token)
        # An untokenised predicate has unknown semantics: never merge it
        # with anything but itself.
        return (self.node, self.context, id(self.client))

    def __repr__(self):
        return f"QuerySpec({self.node!r}, context={self.context!r})"


def as_spec(item, pag, context=EMPTY_STACK):
    """Normalise one batch item into a :class:`QuerySpec`."""
    if isinstance(item, QuerySpec):
        return item
    # A client Query carries (method, var) plus a dedup-relevant payload.
    if hasattr(item, "client") and hasattr(item, "payload") and callable(
        getattr(item, "node", None)
    ):
        return QuerySpec(
            item.node(pag),
            context,
            token=(item.client, item.payload),
            origin=item,
        )
    if isinstance(item, tuple) and len(item) == 2:
        first, second = item
        if isinstance(first, str) and isinstance(second, str):
            return QuerySpec(pag.find_local(first, second), context)
        if isinstance(first, str) or isinstance(second, str):
            # A mixed tuple like ("A.m", context_stack) would otherwise
            # smuggle a bare string in as the query node and fail much
            # later, deep in the traversal, as an AttributeError.
            raise IRError(
                f"cannot normalise batch item {item!r}: a 2-tuple query "
                "must be either (method_qname, var_name) — two strings — "
                "or (pag_node, context_stack); to query a named variable "
                "under a context, resolve the node first with "
                "pag.find_local(method_qname, var_name) and pass "
                "QuerySpec(node, context)"
            )
        return QuerySpec(first, second)  # (node, context)
    return QuerySpec(item, context)


def warmth_key(spec):
    """Sort key grouping queries by method, then variable, then context.

    Queries on one method traverse that method's (and its callees')
    local edges, so adjacent same-method queries find those summaries
    still resident — the ordering that maximises cache warmth.
    """
    node = spec.node
    method = getattr(node, "method", None) or ""
    name = getattr(node, "name", None) or ""
    return (str(method), str(name), len(spec.context))


def spec_method(spec):
    """The method string the scheduler's warmth statistics key on."""
    return str(getattr(spec.node, "method", None) or "")


class BatchPlan:
    """The scheduler's output: unique specs, execution order, fan-out map.

    ``unique[i]`` are the deduplicated specs; ``order`` is the sequence of
    unique indices to execute; ``assignment[j]`` maps input position ``j``
    to its unique index, so results align with the caller's request order
    regardless of dedup or reordering.
    """

    __slots__ = ("unique", "order", "assignment", "reordered")

    def __init__(self, unique, order, assignment, reordered):
        self.unique = unique
        self.order = order
        self.assignment = assignment
        self.reordered = reordered

    @property
    def n_requests(self):
        return len(self.assignment)

    @property
    def n_unique(self):
        return len(self.unique)

    @property
    def n_deduped(self):
        return self.n_requests - self.n_unique


def plan_batch(specs, dedupe=True, reorder=True, include_client=True, warmth=None):
    """Plan a batch: dedup (optional), then order for cache warmth.

    ``include_client`` must be True when the driving analysis's results
    depend on client predicates (``analysis.uses_client_predicate``).

    ``warmth`` optionally carries traffic statistics from *earlier*
    batches: a mapping from method string (:func:`spec_method`) to a
    monotone recency stamp — higher = touched more recently.  When
    given (and ``reorder`` is on), methods the recent past queried are
    scheduled first, hottest first, so their summaries are re-used
    while still resident in a bounded store; methods the statistics
    have never seen follow, in plain :func:`warmth_key` order.  Like
    every scheduling lever this is cost-only: answers never change.
    """
    unique = []
    assignment = []
    seen = {}
    for position, spec in enumerate(specs):
        key = spec.dedupe_key(include_client) if dedupe else position
        index = seen.get(key)
        if index is None:
            index = len(unique)
            seen[key] = index
            unique.append(spec)
        assignment.append(index)
    order = list(range(len(unique)))
    if reorder:
        if warmth:
            def carryover_key(i):
                spec = unique[i]
                return (-warmth.get(spec_method(spec), 0), warmth_key(spec))

            order.sort(key=carryover_key)
        else:
            order.sort(key=lambda i: warmth_key(unique[i]))
    return BatchPlan(unique, order, assignment, reordered=bool(reorder))


@dataclass(frozen=True)
class BatchStats:
    """Accounting for one executed batch (the Figure 4/5 unit).

    ``cache_hits``/``cache_misses`` are summary-cache probe deltas during
    the batch (zero for cache-less analyses); ``summaries_before/after``
    are ``len(Cache)`` around the batch, the Figure 5 series.
    """

    n_requests: int
    n_unique: int
    reordered: bool
    steps: int
    time_sec: float
    complete: int
    incomplete: int
    cache_hits: int = 0
    cache_misses: int = 0
    summaries_before: int = 0
    summaries_after: int = 0
    evictions: int = 0
    #: Worker threads the executor ran the batch on (1 = sequential).
    parallelism: int = 1

    @property
    def n_deduped(self):
        return self.n_requests - self.n_unique

    @property
    def probes(self):
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self):
        """Summary-cache hit rate over the batch (0.0 when unprobed)."""
        probes = self.probes
        return self.cache_hits / probes if probes else 0.0


class BatchResult:
    """Results of ``query_batch``, aligned with the request order.

    ``results[j]`` answers the ``j``-th request exactly as a sequential
    ``points_to`` call would; deduplicated requests share one
    :class:`~repro.analysis.base.QueryResult` object.
    """

    __slots__ = ("results", "stats", "plan")

    def __init__(self, results, stats, plan):
        self.results = results
        self.stats = stats
        self.plan = plan

    def __iter__(self):
        return iter(self.results)

    def __len__(self):
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]

    def __repr__(self):
        s = self.stats
        return (
            f"BatchResult({s.n_requests} queries, {s.n_unique} unique, "
            f"{s.steps} steps, hit_rate={s.hit_rate:.2f})"
        )
