"""The query engine layer: batched, shared-cache, session-oriented.

Hosts construct one :class:`PointsToEngine` per program and issue all
traffic — single queries, query batches, alias checks, whole client
workloads, code edits — through it:

.. code-block:: python

    from repro.engine import CachePolicy, EnginePolicy, PointsToEngine

    engine = PointsToEngine.for_program(
        program,
        EnginePolicy(cache=CachePolicy(max_entries=4096)),
    )
    batch = engine.query_batch([("Main.main", "d"), ("Main.main", "c")])
    print(batch.stats.hit_rate, engine.stats())

The engine owns the analysis (chosen by
:class:`~repro.engine.policy.EnginePolicy`), the summary store (bounded
and/or sharded, per :class:`~repro.engine.policy.CachePolicy`), the
batch scheduler (:mod:`repro.engine.scheduler`), the batch executor —
sequential or thread-pooled, per the policy's ``parallelism``
(:mod:`repro.engine.executor`) — and the edit machinery
(:mod:`repro.engine.session`).
"""

from repro.engine.core import EngineStats, PointsToEngine
from repro.engine.executor import (
    BatchExecutor,
    ParallelExecutor,
    SequentialExecutor,
    default_parallelism,
    make_executor,
)
from repro.engine.policy import ANALYSES, CachePolicy, EnginePolicy, resolve_analysis
from repro.engine.scheduler import (
    BatchPlan,
    BatchResult,
    BatchStats,
    QuerySpec,
    as_spec,
    plan_batch,
)
from repro.engine.session import EditSession

__all__ = [
    "ANALYSES",
    "BatchExecutor",
    "BatchPlan",
    "BatchResult",
    "BatchStats",
    "CachePolicy",
    "EditSession",
    "EnginePolicy",
    "EngineStats",
    "ParallelExecutor",
    "PointsToEngine",
    "QuerySpec",
    "SequentialExecutor",
    "as_spec",
    "default_parallelism",
    "make_executor",
    "plan_batch",
    "resolve_analysis",
]
