"""The query engine layer: batched, shared-cache, session-oriented.

Hosts construct one :class:`PointsToEngine` per program and issue all
traffic — single queries, query batches, alias checks, whole client
workloads, code edits — through it:

.. code-block:: python

    from repro.engine import CachePolicy, EnginePolicy, PointsToEngine

    engine = PointsToEngine.for_program(
        program,
        EnginePolicy(cache=CachePolicy(max_entries=4096)),
    )
    batch = engine.query_batch([("Main.main", "d"), ("Main.main", "c")])
    print(batch.stats.hit_rate, engine.stats())

The engine owns the analysis (chosen by
:class:`~repro.engine.policy.EnginePolicy`), the summary store (bounded
or not, per :class:`~repro.engine.policy.CachePolicy`), the batch
scheduler (:mod:`repro.engine.scheduler`) and the edit machinery
(:mod:`repro.engine.session`).
"""

from repro.engine.core import EngineStats, PointsToEngine
from repro.engine.policy import ANALYSES, CachePolicy, EnginePolicy, resolve_analysis
from repro.engine.scheduler import (
    BatchPlan,
    BatchResult,
    BatchStats,
    QuerySpec,
    as_spec,
    plan_batch,
)
from repro.engine.session import EditSession

__all__ = [
    "ANALYSES",
    "BatchPlan",
    "BatchResult",
    "BatchStats",
    "CachePolicy",
    "EditSession",
    "EnginePolicy",
    "EngineStats",
    "PointsToEngine",
    "QuerySpec",
    "as_spec",
    "plan_batch",
    "resolve_analysis",
]
