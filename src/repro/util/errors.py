"""Exception hierarchy for the repro library.

Every exception raised intentionally by this package derives from
:class:`ReproError`, so callers can catch a single base type.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Raised when an IR program is constructed or used incorrectly."""


class ParseError(IRError):
    """Raised by the PIR parser on malformed source text.

    Carries the 1-based ``line`` and ``column`` of the offending token.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ValidationError(IRError):
    """Raised by the IR validator when a program violates a well-formedness rule."""


class BudgetExceededError(ReproError):
    """Raised internally when a demand query exhausts its traversal budget.

    The demand analyses catch this and convert it into a conservative
    "unknown" :class:`repro.analysis.base.QueryResult`; it only escapes to
    user code if a caller invokes the low-level traversal machinery
    directly.
    """

    def __init__(self, budget):
        self.budget = budget
        super().__init__(f"traversal budget of {budget} steps exhausted")
