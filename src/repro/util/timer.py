"""Small wall-clock timing helper used by the experiment harness."""

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Usage::

        with Timer() as t:
            run_queries()
        print(t.elapsed)

    The timer may be re-entered; ``elapsed`` accumulates across uses, which
    is convenient for timing many query batches into one counter.
    """

    def __init__(self):
        self.elapsed = 0.0
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return False

    def reset(self):
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None
