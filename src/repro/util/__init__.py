"""Shared utilities: errors, timing, deterministic randomness helpers."""

from repro.util.errors import (
    BudgetExceededError,
    IRError,
    ParseError,
    ReproError,
    ValidationError,
)
from repro.util.timer import Timer

__all__ = [
    "BudgetExceededError",
    "IRError",
    "ParseError",
    "ReproError",
    "Timer",
    "ValidationError",
]
