"""The asyncio serving tier: one event loop per process, many clients.

The thread-per-connection transport in :mod:`repro.cacheserver.server`
costs one OS thread per client — fine for a handful, hopeless for a
fleet.  :class:`AsyncLineServer` serves the same JSON-lines protocol
from a **single event loop**: non-blocking reads and writes, a
per-connection write lock with ``drain()`` backpressure (a slow reader
stalls only its own responses, never the loop), and **connection
multiplexing** — a client may put many requests in flight on one
socket by tagging each line with a transport-level ``"id"`` key
(protocol 1.4); tagged requests are dispatched concurrently and each
response carries its request's id back, so correlation survives
out-of-order completion.  Untagged lines keep the classic strict
request/response order, which is what the pipelined
:class:`~repro.cacheserver.client.ShardLink` relies on.

``stop()`` drains gracefully: the listener closes first, in-flight
requests get a bounded grace period to finish writing, and only then
are connections torn down — a restarting shard never truncates a
response mid-line.

:class:`AsyncShardServer` is the shard-server assembly — the exact
:class:`~repro.cacheserver.server.ShardDispatcher` semantics (epochs,
ownership checks, typed errors) behind the async transport — and
``repro-serve --listen`` mounts a whole
:class:`~repro.api.service.PointsToService` on the same machinery, so
the engine service scales the same way the cache tier does.
"""

import asyncio
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.api.codec import attach_response_id, encode, split_request_id
from repro.api.protocol import ErrorResponse, ProtocolError
from repro.cacheserver.faults import InjectedDisconnect
from repro.cacheserver.server import ShardDispatcher

#: How long ``stop()`` waits for in-flight requests to finish writing.
DRAIN_TIMEOUT_SEC = 2.0

#: Dispatch threads per server.  Dispatch runs *off* the event loop so a
#: handler that blocks (or waits on another in-flight request) can never
#: stall reads — a handful of workers is plenty for CPU-light handlers.
DEFAULT_DISPATCH_WORKERS = 4


class AsyncLineServer:
    """A JSON-lines TCP server over one asyncio event loop.

    ``handle_line`` is any ``str -> str`` dispatcher (a
    :class:`~repro.cacheserver.server.ShardDispatcher`'s or a
    :class:`~repro.api.service.PointsToService`'s) — the transport owns
    sockets, ids, backpressure and drain; the dispatcher owns meaning.

    The listening socket is bound in ``__init__`` (``port=0`` = OS
    pick), so :attr:`address` is printable before serving starts —
    the launcher announce contract of the threaded tier, kept.
    """

    def __init__(
        self,
        handle_line,
        host="127.0.0.1",
        port=0,
        dispatch_workers=DEFAULT_DISPATCH_WORKERS,
    ):
        self._handle_line = handle_line
        self._dispatch_workers = max(1, int(dispatch_workers))
        self._executor = None  # created inside the loop
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self.host, self.port = self._sock.getsockname()[:2]
        self._loop = None
        self._stop_event = None  # created inside the loop
        self._thread = None
        self._started = threading.Event()
        self._finished = threading.Event()
        self._stop_requested = False
        self._conn_tasks = set()
        self._inflight = set()

    @property
    def address(self):
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self._dispatch_workers,
            thread_name_prefix="repro-dispatch",
        )
        if self._stop_requested:  # stop() raced ahead of startup
            self._stop_event.set()
        server = await asyncio.start_server(self._serve_connection, sock=self._sock)
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            # Graceful drain: stop accepting, let in-flight requests
            # finish writing (bounded), then drop the connections.
            server.close()
            await server.wait_closed()
            if self._inflight:
                await asyncio.wait(
                    tuple(self._inflight), timeout=DRAIN_TIMEOUT_SEC
                )
            for task in tuple(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *tuple(self._conn_tasks), return_exceptions=True
                )
            self._executor.shutdown(wait=False)

    async def _serve_connection(self, reader, writer):
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        pending = set()
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                try:
                    stripped, rid = split_request_id(line)
                except ProtocolError as exc:
                    await self._write(
                        writer,
                        write_lock,
                        encode(ErrorResponse(code=exc.code, message=str(exc))),
                    )
                    continue
                if rid is None:
                    # Untagged: strict in-order request/response.
                    await self._respond(writer, write_lock, stripped, None)
                else:
                    # Tagged: many in flight, correlated by id.
                    flight = asyncio.ensure_future(
                        self._respond(writer, write_lock, stripped, rid)
                    )
                    pending.add(flight)
                    flight.add_done_callback(pending.discard)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # client went away mid-line
        except asyncio.CancelledError:
            pass  # drain timeout expired during stop()
        finally:
            for flight in tuple(pending):
                flight.cancel()
            self._conn_tasks.discard(task)
            try:
                writer.close()
            except (OSError, RuntimeError):
                pass  # socket already dead / loop tearing down

    async def _respond(self, writer, write_lock, line, rid):
        flight = asyncio.current_task()
        self._inflight.add(flight)
        try:
            # Dispatch on the worker pool, never inline on the loop: an
            # inline handler that blocked (or, multiplexed, waited on a
            # request *behind* it in the read order) would wedge every
            # connection.  ShardDispatcher is already thread-safe — the
            # thread-per-connection tier drives it from many threads.
            result = await self._loop.run_in_executor(
                self._executor, self._handle_line, line
            )
            await self._write(writer, write_lock, attach_response_id(result, rid))
        except InjectedDisconnect:
            # Fault injection: drop the whole connection mid-flight, the
            # way a crashed shard would — not just this response.
            try:
                writer.close()
            except (OSError, RuntimeError):
                pass
        except (ConnectionError, OSError):
            pass
        except RuntimeError:
            pass  # executor shut down mid-drain; response is abandoned
        finally:
            self._inflight.discard(flight)

    @staticmethod
    async def _write(writer, write_lock, response):
        # The lock keeps concurrent in-flight responses line-atomic;
        # drain() is the per-connection backpressure — a slow reader
        # parks only the tasks answering *it*.
        async with write_lock:
            writer.write(response.encode("utf-8") + b"\n")
            await writer.drain()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self):
        """Run the event loop on the calling thread until :meth:`stop`
        (the child-process mode of ``repro-cached --serve-shard``)."""
        try:
            asyncio.run(self._main())
        finally:
            self._finished.set()

    def start(self):
        """Serve on a background thread (in-process embedding, tests)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        self._started.wait(timeout=10.0)
        return self

    def stop(self):
        """Request a graceful drain and stop; thread-safe, idempotent,
        callable from signal handlers and from outside the loop."""
        self._stop_requested = True
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=DRAIN_TIMEOUT_SEC + 5.0)
        if self._loop is None:
            # Never served: the pre-bound listener still owns the port.
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()


class AsyncShardServer(ShardDispatcher):
    """One shard of the cache service on the asyncio tier: the same
    dispatch (and therefore the same epoch/ownership/error semantics)
    as the threaded :class:`~repro.cacheserver.server.ShardServer`,
    served from one event loop however many clients connect."""

    def __init__(
        self,
        shard_index,
        n_shards,
        host="127.0.0.1",
        port=0,
        max_entries=None,
        max_facts=None,
        eviction="lru",
        dispatch_workers=DEFAULT_DISPATCH_WORKERS,
        faults=None,
    ):
        super().__init__(
            shard_index,
            n_shards,
            max_entries=max_entries,
            max_facts=max_facts,
            eviction=eviction,
            faults=faults,
        )
        self.transport = AsyncLineServer(
            self.handle_line,
            host=host,
            port=port,
            dispatch_workers=dispatch_workers,
        )

    @property
    def host(self):
        return self.transport.host

    @property
    def port(self):
        return self.transport.port

    @property
    def address(self):
        return self.transport.address

    def start(self):
        self.transport.start()
        return self

    def serve_forever(self):
        self.transport.serve_forever()

    def stop(self):
        self.transport.stop()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()

    def __repr__(self):
        return (
            f"AsyncShardServer(shard {self.shard_index}/{self.n_shards} on "
            f"{self.address}, {len(self.store)} entries)"
        )
