"""The client side of the shared cache: ``RemoteSummaryCache``.

A :class:`~repro.analysis.summaries.SummaryBackend` that fronts a
cluster of shard servers.  The routing is the same CRC-32 method
partition the servers were spawned with, so every key has exactly one
owner; entries travel in the :mod:`repro.api.snapshot` wire format and
are resolved back to PAG nodes here (the backend learns its PAG via
:meth:`RemoteSummaryCache.bind_pag`, which DYNSUM calls on attach).

Correctness stance — the part the tests pin down:

* **fallback, always.**  A remote miss, a timeout, a refused
  connection, a server killed mid-batch, a malformed response, or an
  entry that no longer resolves in this client's PAG all degrade to
  ``lookup() -> None`` — i.e. to local computation.  Summaries are pure
  memos, so the service can only ever move *cost*; answers are
  element-wise identical with the service up, down, or dying.
* **local read-through tier.**  Remote hits (and local computes, via
  write-through ``store``) land in a process-local store, so a hot key
  costs one network round-trip per process, not per probe.  The tier
  has the same lifetime and semantics as the purely local cache it
  replaces: a process observes *its own* edits immediately
  (``invalidate_method`` clears the tier **and** the owning shard), and
  other processes observe them at their next shard fetch.  A client
  that never applied an edit keeps serving its own pre-edit memos from
  the tier — exactly as it would have with no service at all, which is
  the consistency contract of the in-process cache too.
* **epoch-hardened consistency (protocol 1.4).**  Every store-level op
  carries the client's per-method **consistency epoch** (bumped by
  each ``invalidate_method``) plus its program fingerprint.  The shard
  rules close the mixed-version windows the pre-1.4 tier documented
  as caveats: a server *behind* a client's epoch drops the method's
  residue and adopts (a shard that missed an invalidate self-heals on
  first contact); a client *behind* the server is answered with a miss
  and its write-throughs are refused with a typed ``stale-epoch``
  response (counted in ``epoch_rejections``) — a pre-edit summary can
  never overwrite a post-edit one, and a prefetch only adopts entries
  whose epoch matches this client's view.  On **reconnect** to a shard
  that dropped (restarted blank, network blip), the link replays a
  seed snapshot of the local tier's entries for that shard in the same
  flight as the first request (``reconnects``/``seeded_entries``), so
  a blank shard is re-warmed instead of serving misses forever.
* **breaker-bounded backoff, not retry storms.**  A failed shard link
  is torn down and its per-link :class:`~repro.cacheserver.faults.CircuitBreaker`
  opens: requests fail fast until the jittered-exponential
  :class:`~repro.cacheserver.faults.RetryPolicy` window lapses, then a
  single half-open probe decides whether the circuit closes again.  A
  dead fleet costs at most one connect attempt per link per backoff
  window, and the per-address jitter keys keep N links from probing in
  lockstep.  Every fall-open decision — any path that degrades to
  local computation — additionally counts ``degraded``, and injected
  faults (:class:`~repro.cacheserver.faults.FaultSchedule`) count
  ``faults``, so a chaos run can prove the fail-open ladder was
  actually exercised.
* **pipelining is the default.**  Under ``pipeline=True`` (protocol
  1.2, and what ``CachePolicy(remote=...)`` now defaults to) the
  engine's batch hooks make a warm batch cost O(shards) round trips:
  ``begin_batch`` prefetches each shard's resident entries in one
  ``fetch-methods`` exchange, and write-through publishes coalesce
  into per-shard ``batch-store`` flushes at ``end_batch``.  Every
  pipelined failure falls open exactly like the single-op paths, and
  an ``invalidate_method`` purges the edited method's buffered
  publishes before reaching the shard, so a flush can never resurrect
  pre-edit memos.  ``pipeline=False`` (the ``--no-pipeline`` escape
  hatches) restores immediate write-through, whose prompt cross-client
  visibility some multi-process tests deliberately pin down.

Accounting: the backend keeps its own hit/miss counters (a hit =
answered from tier or service; a miss = the caller must compute), and a
:class:`~repro.api.protocol.RemoteStoreStats` of the service traffic —
surfaced through ``EngineStats.remote`` and the ``stats`` wire op so
clients can observe cache provenance.
"""

import socket
import threading
import time

from repro.analysis.summaries import (
    CacheStats,
    SummaryBackend,
    SummaryCache,
    shard_for_method,
)
from repro.api.codec import decode_response, encode
from repro.api.protocol import (
    BatchStoreRequest,
    BatchStoreResponse,
    InvalidateRequest,
    InvalidateResponse,
    LookupRequest,
    LookupResponse,
    MethodEntriesRequest,
    MethodEntriesResponse,
    ProtocolError,
    RemoteStoreStats,
    SnapshotError,
    StaleEpochResponse,
    StoreRequest,
    StoreResponse,
    StoreStatsResponse,
    StoreStatsRequest,
    WireError,
)
from repro.api.snapshot import (
    check_entry,
    entry_to_wire,
    key_to_wire,
    resolve_wire_entry,
)
from repro.cacheserver.faults import (
    CircuitBreaker,
    FaultError,
    FaultInjector,
    FaultSchedule,
    InjectedDisconnect,
    InjectedFault,
    InjectedTimeout,
    RetryPolicy,
    coerce_schedule,
    corrupt_line,
    truncate_line,
)
from zlib import crc32


class ShardUnavailable(Exception):
    """A shard link could not complete one request (connection refused,
    timeout, mid-stream disconnect, or backing off after one of those)."""


def parse_addresses(text):
    """The shard-ordered address tuple from a comma-separated
    ``host:port`` list — the format ``repro-cached`` prints and every
    ``--remote``/``--connect`` flag accepts.  Raises ``ValueError``
    when the list names no shards."""
    addresses = tuple(
        address.strip() for address in text.split(",") if address.strip()
    )
    if not addresses:
        raise ValueError(f"no shard addresses in {text!r}")
    return addresses


class ShardLink:
    """One persistent JSON-lines connection to one shard server.

    Lazily connected, serialized by a lock, reused across batches (the
    connection is process state — no reconnect-per-op path exists), torn
    down on any transport error.  Failures feed a per-link
    :class:`~repro.cacheserver.faults.CircuitBreaker`: while the
    circuit is open every request fails fast with
    :class:`ShardUnavailable` instead of re-paying the connect timeout,
    and when the (jittered, exponential) backoff window lapses exactly
    one caller becomes the half-open probe.  The legacy
    ``retry_interval`` float is still accepted and mapped onto an
    equivalent :class:`~repro.cacheserver.faults.RetryPolicy`.

    :meth:`request_many` pipelines several request lines into one
    flight — all lines written, then all responses read — so a chunked
    bulk operation still costs a single network round trip.

    **Reconnect-and-seed**: when the link re-establishes a connection
    it had before (the shard restarted, or the network blipped), it
    asks its ``seed_provider`` — installed by
    :class:`RemoteSummaryCache` — for request lines that re-warm the
    shard from the client's local tier, and prepends them to the same
    flight; ``on_seed`` then sees the seed responses.  A shard that
    came back *blank* is re-seeded instead of serving misses until the
    fleet recomputes everything; a shard that never dropped just
    re-adopts entries it already holds (stores are idempotent).
    """

    def __init__(self, address, timeout=1.0, retry_interval=None, retry=None,
                 faults=None, shard_index=0, clock=None):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"shard address must be 'host:port', got {address!r}")
        self.address = address
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retry_interval = retry_interval
        if retry is None:
            retry = RetryPolicy.from_interval(
                timeout if retry_interval is None else retry_interval
            )
        self.retry_policy = retry
        # The jitter key is the address hash: deterministic for this
        # link, different from its siblings' — no lockstep retries.
        self.breaker = CircuitBreaker(
            retry=retry, clock=clock, key=crc32(address.encode())
        )
        #: Client-side fault injector shared across a backend's links
        #: (``None`` in production).
        self.faults = faults
        self.shard_index = shard_index
        self.seed_failures = 0  # seed flights abandoned before sending
        self._lock = threading.Lock()
        self._sock = None
        self._reader = None
        self._ever_connected = False
        #: ``() -> iterable of request lines`` replayed on reconnect
        #: (not on first connect); ``None`` disables seeding.
        self.seed_provider = None
        #: ``(seed_lines, response_lines) -> None`` — accounting hook.
        self.on_seed = None

    def request(self, line):
        """Send one request line, return the response line."""
        return self.request_many((line,))[0]

    def request_many(self, lines):
        """Pipeline many request lines in one flight; aligned responses.

        The whole exchange is one lock hold and one send/receive pass:
        the server answers in order, so response *i* belongs to line
        *i*.  Any transport failure tears the link down (no partial
        results — the caller cannot tell which ops landed, the same
        contract a single failed :meth:`request` has).
        """
        with self._lock:
            if not self.breaker.allow():
                # Fail fast while the circuit is open.  No attempt is
                # made, so this does not count as a breaker failure.
                raise ShardUnavailable(
                    f"{self.address}: circuit open, backing off after failure"
                )
            action = (
                self.faults.begin_op(self.shard_index)
                if self.faults is not None
                else None
            )
            try:
                if action == "connect-refused":
                    self._teardown()
                    raise InjectedFault("connect-refused", self.address)
                seed_lines = ()
                if self._sock is None:
                    reconnecting = self._ever_connected
                    self._connect()
                    self._ever_connected = True
                    if reconnecting and self.seed_provider is not None:
                        try:
                            seed_lines = tuple(self.seed_provider())
                        except (FaultError, OSError, SnapshotError, ProtocolError):
                            # Seeding is best-effort re-warming; a
                            # provider failure must not fail the
                            # triggering request.
                            self.seed_failures += 1
                            seed_lines = ()
                if action == "delay":
                    time.sleep(self.faults.delay_sec)
                flight = list(seed_lines) + list(lines)
                payload = "".join(line + "\n" for line in flight)
                if action == "write-timeout":
                    raise InjectedTimeout("write-timeout", self.address)
                self._sock.sendall(payload.encode("utf-8"))
                if action == "read-timeout":
                    raise InjectedTimeout("read-timeout", self.address)
                if action == "disconnect":
                    raise InjectedDisconnect("disconnect", self.address)
                responses = []
                for _ in flight:
                    response = self._reader.readline()
                    if not response:
                        raise OSError("connection closed by shard server")
                    responses.append(response)
                if action in ("truncate", "corrupt") and len(responses) > len(seed_lines):
                    # Mutate the first *payload* response: the caller's
                    # decoder must reject it and fall open.
                    mutate = truncate_line if action == "truncate" else corrupt_line
                    responses[len(seed_lines)] = mutate(responses[len(seed_lines)])
                if seed_lines and self.on_seed is not None:
                    try:
                        self.on_seed(seed_lines, responses[: len(seed_lines)])
                    except (FaultError, OSError, SnapshotError, ProtocolError, WireError):
                        # Accounting must never fail the request.
                        self.seed_failures += 1
                self.breaker.record_success()
                return responses[len(seed_lines):]
            except OSError as exc:
                self._teardown()
                self.breaker.record_failure()
                raise ShardUnavailable(f"{self.address}: {exc}") from None

    def _connect(self):
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8", newline="\n")

    def _teardown(self):
        for closer in (self._reader, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = None
        self._reader = None

    def close(self):
        with self._lock:
            self._teardown()

    def __repr__(self):
        state = "connected" if self._sock is not None else "idle"
        return f"ShardLink({self.address}, {state})"


class RemoteSummaryCache(SummaryBackend):
    """A summary backend served by shard-server processes.

    ``addresses`` is the cluster's shard-ordered ``host:port`` tuple
    (``CacheCluster.addresses``, or what ``repro-cached`` printed);
    ``local`` is the read-through tier — any local backend, defaulting
    to an unbounded :class:`~repro.analysis.summaries.SummaryCache`.
    The tier also decides ``concurrent_safe``: give a parallel engine a
    sharded tier (``CachePolicy(remote=..., shards=N)`` does) and the
    links serialize per shard on their own locks.
    """

    #: Entries per pipelined ``batch-store`` line; larger flushes are
    #: chunked and the chunks sent in ONE flight via ``request_many``.
    FLUSH_CHUNK = 256

    def __init__(self, addresses, local=None, timeout=1.0, retry_interval=None,
                 pipeline=False, retry=None, fault_schedule=None, _links=None):
        addresses = tuple(addresses)
        if not addresses:
            raise ValueError("RemoteSummaryCache needs at least one shard address")
        self.addresses = addresses
        self.n_shards = len(addresses)
        self.timeout = timeout
        self.retry_policy = retry
        #: Pipelined mode (protocol 1.2): between ``begin_batch`` and
        #: ``end_batch`` the backend prefetches each shard's entries in
        #: one ``fetch-methods`` round trip and coalesces write-through
        #: publishes into per-shard ``batch-store`` flushes — a warm
        #: batch then costs O(shards) round trips instead of one per
        #: lookup.  Off by default: non-pipelined clients publish every
        #: memo immediately, the latency-of-visibility the multi-client
        #: tests pin down.
        self.pipeline = pipeline
        self.retry_interval = retry_interval
        self.local_tier = local if local is not None else SummaryCache()
        if _links is not None:
            # Spawn path: links (and their injector/breakers — process
            # state) are shared across generations.
            self._links = _links
            self._faults = _links[0].faults if _links else None
        else:
            schedule = coerce_schedule(fault_schedule)
            if schedule is None:
                schedule = FaultSchedule.from_env()
            self._faults = (
                FaultInjector(schedule, side="client")
                if schedule is not None
                else None
            )
            self._links = tuple(
                ShardLink(
                    address,
                    timeout=timeout,
                    retry_interval=retry_interval,
                    retry=retry,
                    faults=self._faults,
                    shard_index=index,
                )
                for index, address in enumerate(addresses)
            )
        self._pag = None
        self._fingerprint = None
        self._stats_lock = threading.Lock()
        self._hits = 0  # guarded-by: _stats_lock
        self._misses = 0  # guarded-by: _stats_lock
        self._remote = {  # guarded-by: _stats_lock
            "remote_hits": 0,
            "remote_misses": 0,
            "remote_errors": 0,
            "unresolved": 0,
            "stores": 0,
            "store_errors": 0,
            "invalidations": 0,
            "invalidation_errors": 0,
            "round_trips": 0,
            "prefetched": 0,
            "epoch_rejections": 0,
            "reconnects": 0,
            "seeded_entries": 0,
            "degraded": 0,
        }
        self._buffer_lock = threading.Lock()
        self._buffering = False  # guarded-by: _buffer_lock
        self._write_buffers = tuple(  # guarded-by: _buffer_lock
            [] for _ in range(self.n_shards)
        )
        # Reconnect-and-seed: each link re-warms a restarted shard from
        # this client's tier.  Links are shared across spawn
        # generations; the newest backend (re)binds the hooks, which is
        # the one whose tier and epochs are current.
        for index, link in enumerate(self._links):
            link.seed_provider = self._make_seed_provider(index)
            link.on_seed = self._seed_ack

    # ------------------------------------------------------------------
    # backend plumbing
    # ------------------------------------------------------------------
    @property
    def concurrent_safe(self):
        return self.local_tier.concurrent_safe

    @property
    def eviction(self):
        return self.local_tier.eviction

    @property
    def max_entries(self):
        return self.local_tier.max_entries

    @property
    def max_facts(self):
        return self.local_tier.max_facts

    @property
    def hits(self):
        return self._hits

    @property
    def misses(self):
        return self._misses

    @property
    def evictions(self):
        return self.local_tier.evictions

    @property
    def invalidated(self):
        return self.local_tier.invalidated

    def bind_pag(self, pag):
        self._pag = pag
        # The program fingerprint rides every store-level op (protocol
        # 1.4) so shards can arbitrate same-epoch traffic from clients
        # that disagree about the program.  Fingerprint-less operation
        # (a PAG the hash cannot walk) stays legal — it just waives the
        # same-epoch arbitration, never correctness.
        try:
            from repro.pag.csr import pag_fingerprint

            self._fingerprint = pag_fingerprint(pag)
        except Exception:
            self._fingerprint = None
            self._bump("degraded")

    def _bump(self, *names):
        with self._stats_lock:
            for name in names:
                if name == "hit":
                    self._hits += 1
                elif name == "miss":
                    self._misses += 1
                else:
                    self._remote[name] += 1

    def _bump_n(self, name, count):
        if count:
            with self._stats_lock:
                self._remote[name] += count

    def _link_for(self, method_qname):
        return self._links[shard_for_method(method_qname, self.n_shards)]

    def _exchange(self, method_qname, request):
        """One routed request/response, decoded; raises
        :class:`ShardUnavailable` or :class:`ProtocolError` on failure.
        Every completed exchange counts one ``round_trips``."""
        line = self._link_for(method_qname).request(encode(request))
        self._bump("round_trips")
        return decode_response(line)

    def _exchange_link(self, link, request):
        """Like :meth:`_exchange` but for an explicit link (per-shard
        bulk ops)."""
        line = link.request(encode(request))
        self._bump("round_trips")
        return decode_response(line)

    # ------------------------------------------------------------------
    # the cache contract
    # ------------------------------------------------------------------
    def lookup(self, node, field_stack, state):
        summary = self.local_tier.lookup(node, field_stack, state)
        if summary is not None:
            self._bump("hit")
            return summary
        summary = self._remote_lookup(node, field_stack, state)
        if summary is not None:
            self._bump("hit", "remote_hits")
            return summary
        self._bump("miss")
        return None

    def _remote_lookup(self, node, field_stack, state):
        if self._pag is None:
            return None  # nothing to resolve entries against yet
        try:
            key = key_to_wire(node, field_stack, state)
        except SnapshotError:
            self._bump("degraded")
            return None  # a key shape the wire format cannot carry
        method = getattr(node, "method", None)
        try:
            response = self._exchange(
                method,
                LookupRequest(
                    key=key,
                    epoch=self.method_epoch(method),
                    fingerprint=self._fingerprint,
                ),
            )
        except (ShardUnavailable, ProtocolError):
            self._bump("remote_errors", "degraded")
            return None
        if not isinstance(response, LookupResponse):
            self._bump("remote_errors", "degraded")
            return None
        if not response.found:
            self._bump("remote_misses")
            return None
        try:
            check_entry(response.entry, "remote.entry")
            resolved = resolve_wire_entry(self._pag, response.entry)
        except SnapshotError:
            self._bump("unresolved", "degraded")
            return None
        if resolved is None:
            self._bump("unresolved")
            return None
        rnode, rstack, rstate, summary = resolved
        if (rnode, rstack, rstate) != (node, field_stack, state):
            # A served entry that answers a different key is a server
            # bug; refusing it keeps the memo-purity argument airtight.
            self._bump("unresolved")
            return None
        # Read-through fill: keep the fetched memo locally (no
        # write-back — the service already has it).
        self.local_tier.store(node, field_stack, state, summary)
        return summary

    def store(self, node, field_stack, state, ppta_result):
        stored = self.local_tier.store(node, field_stack, state, ppta_result)
        # Write-through, best effort: a failed publish only means other
        # clients recompute this memo themselves.
        try:
            entry = entry_to_wire(node, field_stack, state, ppta_result)
        except SnapshotError:
            self._bump("store_errors", "degraded")
            return stored
        method = getattr(node, "method", None)
        epoch = self.method_epoch(method)
        if self._buffering:
            # Coalesced: queue for the end-of-batch batch-store flush,
            # with the epoch *at publish time* — a later invalidate of
            # the method purges these anyway, so the pair stays
            # coherent.
            index = shard_for_method(method, self.n_shards)
            with self._buffer_lock:
                if self._buffering:
                    self._write_buffers[index].append((entry, epoch))
                    return stored
        try:
            response = self._exchange(
                method,
                StoreRequest(
                    entry=entry, epoch=epoch, fingerprint=self._fingerprint
                ),
            )
        except (ShardUnavailable, ProtocolError):
            self._bump("store_errors", "degraded")
            return stored
        if isinstance(response, StoreResponse):
            self._bump("stores")
        elif isinstance(response, StaleEpochResponse):
            # The shard is ahead of this client's view of the method —
            # the refusal *is* the consistency mechanism, not an error.
            self._bump("epoch_rejections")
        else:
            self._bump("store_errors", "degraded")
        return stored

    def invalidate_method(self, method_qname):
        """Drop one method's summaries locally **and** on its owning
        shard server, so other clients observe the edit at their next
        fetch.  Returns the *local* entries dropped — the same
        process-resident count every other backend reports (edit
        migration reconciles against it); the remote acknowledgement is
        counted in :meth:`remote_stats` (``invalidations`` vs.
        ``invalidation_errors``)."""
        # Bump this client's consistency epoch *first*: everything sent
        # for the method from here on (including the wire invalidate
        # below) carries the post-edit epoch, and any pre-edit traffic
        # still in flight elsewhere is now refusable server-side.
        epoch = self.bump_epoch(method_qname)
        if self._buffering:
            # Buffered publishes of the edited method are stale now —
            # purge them so the flush cannot resurrect pre-edit memos
            # after the invalidate below.
            index = shard_for_method(method_qname, self.n_shards)
            with self._buffer_lock:
                buffer = self._write_buffers[index]
                buffer[:] = [
                    (entry, entry_epoch)
                    for entry, entry_epoch in buffer
                    if entry["node"].get("method") != method_qname
                ]
        dropped = self.local_tier.invalidate_method(method_qname)
        try:
            response = self._exchange(
                method_qname,
                InvalidateRequest(method=method_qname, epoch=epoch),
            )
        except (ShardUnavailable, ProtocolError):
            self._bump("invalidation_errors", "degraded")
            return dropped
        if isinstance(response, InvalidateResponse):
            self._bump("invalidations")
        else:
            self._bump("invalidation_errors", "degraded")
        return dropped

    # ------------------------------------------------------------------
    # batch hooks (protocol 1.2 pipelining) — the engine calls these
    # around query_batch when the backend defines them
    # ------------------------------------------------------------------
    def begin_batch(self):
        """Start a pipelined batch: prefetch each shard's resident
        entries in one ``fetch-methods`` round trip per shard (filling
        the local read-through tier), then coalesce write-through
        publishes until :meth:`end_batch`.  No-op unless ``pipeline``;
        every failure falls open exactly like a missed lookup.

        The prefetch deliberately fetches the *whole* shard store
        (``methods=None``): traversals reach methods transitively, so
        the batch's root methods under-approximate what will actually
        be probed.  That makes per-batch cost O(resident entries) —
        fine for the cluster sizes this repo targets, and the
        ``fetch-methods`` filter already exists server-side for a
        future targeted mode (e.g. when a bounded local tier makes a
        full dump churn the LRU).
        """
        if not self.pipeline:
            return
        if self._pag is not None:
            for link in self._links:
                try:
                    response = self._exchange_link(
                        link,
                        MethodEntriesRequest(
                            methods=None, fingerprint=self._fingerprint
                        ),
                    )
                except (ShardUnavailable, ProtocolError):
                    self._bump("remote_errors", "degraded")
                    continue
                if not isinstance(response, MethodEntriesResponse):
                    self._bump("remote_errors", "degraded")
                    continue
                epochs = response.epochs
                for position, entry in enumerate(response.entries):
                    server_epoch = (
                        epochs[position] if position < len(epochs) else 0
                    )
                    try:
                        check_entry(entry, "prefetch.entry")
                        resolved = resolve_wire_entry(self._pag, entry)
                    except SnapshotError:
                        self._bump("unresolved", "degraded")
                        continue
                    if resolved is None:
                        self._bump("unresolved")
                        continue
                    node, stack, state, summary = resolved
                    # Adopt only entries whose epoch matches this
                    # client's view of the method: an entry computed
                    # for a program version this client has not caught
                    # up to (or has moved past) must not enter the
                    # tier.
                    method = getattr(node, "method", None)
                    if server_epoch != self.method_epoch(method):
                        self._bump("unresolved")
                        continue
                    self.local_tier.store(node, stack, state, summary)
                    self._bump("prefetched")
        with self._buffer_lock:
            self._buffering = True

    def end_batch(self):
        """Flush the coalesced writes: per shard one ``batch-store``
        line (chunked past :data:`FLUSH_CHUNK`, the chunks pipelined in
        one flight), then return to immediate write-through."""
        if not self.pipeline:
            return
        with self._buffer_lock:
            self._buffering = False
            pending = [list(buffer) for buffer in self._write_buffers]
            for buffer in self._write_buffers:
                buffer.clear()
        for index, buffered in enumerate(pending):
            if not buffered:
                continue
            link = self._links[index]
            chunks = [
                buffered[i:i + self.FLUSH_CHUNK]
                for i in range(0, len(buffered), self.FLUSH_CHUNK)
            ]
            lines = [
                encode(
                    BatchStoreRequest(
                        entries=tuple(entry for entry, _ in chunk),
                        epochs=tuple(epoch for _, epoch in chunk),
                        fingerprint=self._fingerprint,
                    )
                )
                for chunk in chunks
            ]
            try:
                responses = link.request_many(lines)
                self._bump("round_trips")
            except ShardUnavailable:
                self._bump("degraded")
                self._bump_n("store_errors", len(buffered))
                continue
            for chunk, line in zip(chunks, responses):
                try:
                    response = decode_response(line)
                except ProtocolError:
                    self._bump("degraded")
                    self._bump_n("store_errors", len(chunk))
                    continue
                if isinstance(response, BatchStoreResponse):
                    # Per-element verdicts: a stale element was refused
                    # by the epoch guard, the rest were stored.
                    stale = sum(1 for flag in response.stale if flag)
                    self._bump_n("epoch_rejections", stale)
                    self._bump_n("stores", len(chunk) - stale)
                else:
                    self._bump("degraded")
                    self._bump_n("store_errors", len(chunk))

    # ------------------------------------------------------------------
    # reconnect-and-seed (protocol 1.4): re-warm a restarted shard
    # ------------------------------------------------------------------
    def _make_seed_provider(self, index):
        def provide():
            return self._seed_lines(index)

        return provide

    def _seed_lines(self, index):
        """The ``batch-store`` request lines that re-warm shard
        ``index`` from this client's local tier — what the link
        prepends to its first flight after a reconnect.  Entries carry
        their method's current epoch and this client's fingerprint, so
        a seed can never smuggle stale memos past the epoch guard."""
        self._bump("reconnects")
        if self._pag is None:
            return ()
        entries = []
        epochs = []
        for (node, stack, state), summary in list(self.local_tier.entries()):
            method = getattr(node, "method", None)
            if shard_for_method(method, self.n_shards) != index:
                continue
            try:
                entry = entry_to_wire(node, stack, state, summary)
            except SnapshotError:
                self._bump("degraded")
                continue
            entries.append(entry)
            epochs.append(self.method_epoch(method))
        lines = []
        for i in range(0, len(entries), self.FLUSH_CHUNK):
            lines.append(
                encode(
                    BatchStoreRequest(
                        entries=tuple(entries[i:i + self.FLUSH_CHUNK]),
                        epochs=tuple(epochs[i:i + self.FLUSH_CHUNK]),
                        fingerprint=self._fingerprint,
                    )
                )
            )
        return lines

    def _seed_ack(self, seed_lines, response_lines):
        """Account the seed flight: every accepted element re-warmed
        the shard (``seeded_entries``); refused elements hit the epoch
        guard (``epoch_rejections``).  Seeds ride the triggering
        request's flight, so they cost no extra ``round_trips``."""
        for line in response_lines:
            try:
                response = decode_response(line)
            except ProtocolError:
                self._bump("degraded")
                continue
            if isinstance(response, BatchStoreResponse):
                stale = sum(1 for flag in response.stale if flag)
                self._bump_n("epoch_rejections", stale)
                self._bump_n("seeded_entries", len(response.stored) - stale)

    def clear(self):
        """Forget the local tier and this backend's counters.  The
        service is deliberately untouched: it belongs to every client;
        use :meth:`invalidate_method` for targeted shared drops."""
        self.local_tier.clear()
        with self._stats_lock:
            self._hits = 0
            self._misses = 0
            for name in self._remote:
                self._remote[name] = 0

    # ------------------------------------------------------------------
    # capacity cooperation + introspection: the local tier's business
    # ------------------------------------------------------------------
    def has_room(self, node, facts=0):
        return self.local_tier.has_room(node, facts)

    def promote(self, key):
        self.local_tier.promote(key)

    def spawn(self):
        """Same topology (shared links — the service connection is
        process state), fresh local tier of the same policy.  The
        spawn carries the consistency epochs forward: a post-edit
        cache must keep publishing at the post-edit epoch, or the
        service would refuse everything it stores."""
        fresh = type(self)(
            self.addresses,
            local=self.local_tier.spawn(),
            timeout=self.timeout,
            retry_interval=self.retry_interval,
            pipeline=self.pipeline,
            retry=self.retry_policy,
            _links=self._links,
        )
        fresh.adopt_epochs(self.method_epochs())
        return fresh

    def entries(self):
        return self.local_tier.entries()

    def entries_by_recency(self, hottest_first=True):
        return self.local_tier.entries_by_recency(hottest_first)

    def __len__(self):
        return len(self.local_tier)

    def __contains__(self, key):
        return key in self.local_tier

    def summary_point_count(self):
        return self.local_tier.summary_point_count()

    def total_facts(self):
        return self.local_tier.total_facts()

    def approx_bytes(self):
        return self.local_tier.approx_bytes()

    def stats_snapshot(self):
        """This process's view: resident entries are the local tier's;
        hits count answers from either tier, misses count fall-throughs
        to local compute."""
        return CacheStats(
            entries=len(self.local_tier),
            facts=self.local_tier.total_facts(),
            hits=self._hits,
            misses=self._misses,
            evictions=self.local_tier.evictions,
            invalidated=self.local_tier.invalidated,
            approx_bytes=self.local_tier.approx_bytes(),
            max_entries=self.local_tier.max_entries,
            max_facts=self.local_tier.max_facts,
        )

    def restore_counters(self, stats):
        with self._stats_lock:
            self._hits = stats.hits
            self._misses = stats.misses
        # Evictions/invalidated are reported from the local tier (see
        # stats_snapshot), so the round-trip contract needs them
        # restored there, not here.
        self.local_tier.restore_counters(stats)

    def remote_stats(self):
        """The service-traffic accounting, as wire-ready
        :class:`~repro.api.protocol.RemoteStoreStats`.  Protocol 1.6
        rows: ``faults`` (injected by the client-side schedule),
        ``degraded`` (fall-open decisions) and per-link
        ``breaker_state``."""
        faults = self._faults.total_injected() if self._faults is not None else 0
        breaker_state = tuple(link.breaker.state for link in self._links)
        with self._stats_lock:
            return RemoteStoreStats(
                shards=self.n_shards,
                faults=faults,
                breaker_state=breaker_state,
                **self._remote,
            )

    def shard_stats(self):
        """Live per-shard :class:`~repro.api.protocol.StoreStatsResponse`
        from every reachable server (``None`` for unreachable shards) —
        the observability hook dashboards and the REPL use."""
        snapshots = []
        for index, link in enumerate(self._links):
            try:
                response = self._exchange_link(link, StoreStatsRequest())
            except (ShardUnavailable, ProtocolError, WireError):
                self._bump("degraded")
                snapshots.append(None)
                continue
            snapshots.append(
                response if isinstance(response, StoreStatsResponse) else None
            )
        return snapshots

    def close(self):
        self.end_batch()  # publish whatever a dying batch left queued
        for link in self._links:
            link.close()

    def __repr__(self):
        return (
            f"RemoteSummaryCache({self.n_shards} shard(s), "
            f"{len(self.local_tier)} local entries, hits={self._hits}, "
            f"misses={self._misses})"
        )
