"""The process-level shared summary-cache service.

The GIL caps what thread-level parallelism (PR 2) can buy; the next
scaling rung is sharing DYNSUM summaries **across analysis processes**.
This package is that rung, built on two earlier layers: summaries
travel in the :mod:`repro.api.snapshot` entry format over the
store-level ops of the versioned wire protocol
(``lookup``/``store``/``invalidate``/``store-stats``), and the service
is partitioned by the same CRC-32 method partition
(:func:`~repro.analysis.summaries.shard_for_method`) the in-process
:class:`~repro.analysis.summaries.ShardedSummaryCache` uses — one
shard-server *process* per shard instead of one lock.

Three pieces:

* :class:`~repro.cacheserver.server.ShardServer` — one shard: a
  JSON-lines socket server over a method-indexed, optionally bounded
  wire-form store (:class:`~repro.cacheserver.store.WireSummaryStore`).
  It is program-agnostic: entries are stored in wire form, so one
  service can back any number of clients analysing the same program.
  :class:`~repro.cacheserver.server.CacheCluster` spawns N of them as
  child processes (the ``repro-cached`` launcher rides it).
* :class:`~repro.cacheserver.client.RemoteSummaryCache` — the
  client-side store stub: a
  :class:`~repro.analysis.summaries.SummaryBackend` whose lookups probe
  a local read-through tier first, then the owning shard server.
  Misses, timeouts and dead servers fall back to local computation —
  summaries are pure memos, so answers are element-wise identical with
  the service up, down, or killed mid-batch; only cost moves.
  Engines opt in with ``CachePolicy(remote=(addr, ...))``.
* the ``repro-cached`` console entry point
  (:mod:`repro.cacheserver.cli`) — cluster launcher, single-shard
  server, and a JSON-lines client REPL for scripted exchanges.
"""

from repro.cacheserver.client import (
    RemoteSummaryCache,
    ShardLink,
    ShardUnavailable,
    parse_addresses,
)
from repro.cacheserver.server import CacheCluster, ShardServer
from repro.cacheserver.store import WireSummaryStore, canonical_key

__all__ = [
    "CacheCluster",
    "RemoteSummaryCache",
    "ShardLink",
    "ShardServer",
    "ShardUnavailable",
    "WireSummaryStore",
    "canonical_key",
    "parse_addresses",
]
