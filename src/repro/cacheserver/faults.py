"""Deterministic fault injection + unified retry/backoff/circuit breaking.

The serving stack's resilience story ("fail-open, always") accumulated
across PRs 4-7 as ad-hoc mechanisms: fixed ``retry_interval`` backoff,
reconnect-and-seed, epoch self-heal.  None of it was exercisable on
demand — there was no way to inject a timeout or a half-written line,
so the failure paths were asserted in prose rather than in tests.
This module turns failure into a first-class, *deterministic* input:

* :class:`FaultSchedule` — a frozen, seeded description of *which*
  operations fail and *how*.  Decisions are a pure function of
  ``(seed, shard, op_index)``, so a schedule replays identically across
  runs, tiers (threaded vs async) and processes.  Schedules round-trip
  through a compact spec grammar (``repro-cached --faults SPEC``, env
  ``REPRO_FAULTS``) so child shard processes can be told to misbehave.
* :class:`FaultInjector` — the stateful, thread-safe counterpart: one
  per transport end, numbering that end's operation stream and counting
  every injected fault (surfaced as ``stats-result.faults``).
* :class:`RetryPolicy` — jittered exponential backoff with a cap and
  optional deadline/attempt budget, replacing the fixed
  ``retry_interval``.  Jitter is *deterministic per key* (a link hashes
  its address), so N links to a dead fleet spread out instead of
  retrying in lockstep, while a given link stays reproducible.
* :class:`CircuitBreaker` — closed → open on a consecutive-failure
  threshold → half-open single probe.  Reconnect-and-seed rides the
  probe.  The clock is injectable so tests can bound the error cost of
  a dead fleet exactly.

Injected faults raise :class:`InjectedFault` subclasses that inherit
from ``OSError`` (and ``ConnectionError`` for disconnects), so they
flow through exactly the teardown/fall-open paths a real network
failure would — the injection layer cannot take a path production
traffic could not.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple
from zlib import crc32

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CLIENT_KINDS",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultError",
    "FaultInjector",
    "FaultRule",
    "FaultSchedule",
    "InjectedDisconnect",
    "InjectedFault",
    "InjectedTimeout",
    "RetryPolicy",
    "SERVER_KINDS",
    "corrupt_line",
    "truncate_line",
    "wait_until",
]

FAULTS_ENV = "REPRO_FAULTS"

#: Every fault kind the layer can inject, client- or server-side.
FAULT_KINDS = (
    "connect-refused",
    "read-timeout",
    "write-timeout",
    "disconnect",
    "truncate",
    "corrupt",
    "delay",
    "blank-restart",
)

#: Kinds meaningful on the client (link) side of the socket seam.
CLIENT_KINDS = (
    "connect-refused",
    "read-timeout",
    "write-timeout",
    "disconnect",
    "truncate",
    "corrupt",
    "delay",
)

#: Kinds meaningful inside a shard server's transport.
SERVER_KINDS = (
    "disconnect",
    "truncate",
    "corrupt",
    "delay",
    "blank-restart",
)


class FaultError(Exception):
    """Base of the injected-fault hierarchy.

    Client code that wants to fall open on *any* injected condition can
    catch this one name; ERR002 recognises it as a fail-open trigger.
    """


class InjectedFault(FaultError, OSError):
    """An injected transport fault.

    Subclasses ``OSError`` on purpose: the link and server teardown
    paths already catch ``OSError`` for real network failures, so an
    injected fault exercises exactly those paths rather than a parallel
    test-only code path.
    """

    def __init__(self, kind: str, detail: str = "") -> None:
        message = f"injected {kind}" + (f": {detail}" if detail else "")
        super().__init__(message)
        self.kind = kind


class InjectedTimeout(InjectedFault, TimeoutError):
    """An injected read/write timeout (raises immediately — no waiting)."""


class InjectedDisconnect(InjectedFault, ConnectionError):
    """An injected mid-flight disconnect (connection must be torn down)."""


def truncate_line(line: str) -> str:
    """Cut a wire line in half — a half-written response."""
    return line[: max(1, len(line) // 2)]


def corrupt_line(line: str) -> str:
    """Prepend junk that no JSON decoder will accept."""
    return "!corrupt!" + line


@dataclass(frozen=True)
class FaultRule:
    """Force fault ``kind`` on operation ``op`` (of ``shard``, or any)."""

    kind: str
    op: int
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.op < 0:
            raise ValueError("fault rule op index must be >= 0")

    def to_spec(self) -> str:
        shard = "*" if self.shard is None else str(self.shard)
        return f"rule={self.kind}:{shard}:{self.op}"


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded, deterministic description of which operations fail.

    ``decide(shard, op_index)`` is a pure function: explicit
    :class:`FaultRule` entries win, then (for ``op_index >= start`` on a
    targeted shard) a crc32 draw over ``(seed, shard, op_index)`` fires
    with probability ``rate`` and picks uniformly among ``kinds``.
    Frozen and hashable so it can live inside ``CachePolicy``.
    """

    seed: int = 0
    rate: float = 0.0
    kinds: Tuple[str, ...] = CLIENT_KINDS
    shards: Optional[Tuple[int, ...]] = None
    rules: Tuple[FaultRule, ...] = ()
    start: int = 0
    limit: Optional[int] = None
    delay_sec: float = 0.005

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds", tuple(self.kinds))
        object.__setattr__(self, "rules", tuple(self.rules))
        if self.shards is not None:
            object.__setattr__(self, "shards", tuple(self.shards))
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be within [0, 1]")
        if self.rate > 0.0 and not self.kinds:
            raise ValueError("a rated schedule needs at least one kind")

    def decide(self, shard: int, op_index: int) -> Optional[str]:
        """The fault to inject on ``shard``'s ``op_index``-th op, if any."""
        for rule in self.rules:
            if rule.op == op_index and rule.shard in (None, shard):
                return rule.kind
        if self.rate <= 0.0 or op_index < self.start:
            return None
        if self.shards is not None and shard not in self.shards:
            return None
        draw = crc32(f"fault:{self.seed}:{shard}:{op_index}".encode())
        if draw / 2**32 >= self.rate:
            return None
        pick = crc32(f"kind:{self.seed}:{shard}:{op_index}".encode())
        return self.kinds[pick % len(self.kinds)]

    # -- spec grammar ------------------------------------------------
    #
    #   spec      = item ("," item)*
    #   item      = "seed=" INT | "rate=" FLOAT | "start=" INT
    #             | "limit=" INT | "delay=" FLOAT
    #             | "kinds=" KIND ("|" KIND)*
    #             | "shards=" INT ("|" INT)*
    #             | "rule=" KIND ":" ("*" | INT) ":" INT
    #
    # e.g.  "seed=7,rate=0.25,kinds=disconnect|corrupt,rule=blank-restart:*:3"

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse the ``--faults`` / ``REPRO_FAULTS`` spec grammar."""
        kwargs: Dict[str, object] = {}
        rules = []
        for raw in spec.split(","):
            item = raw.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"bad fault spec item {item!r} (want key=value)")
            key, value = item.split("=", 1)
            key = key.strip()
            value = value.strip()
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "rate":
                kwargs["rate"] = float(value)
            elif key == "start":
                kwargs["start"] = int(value)
            elif key == "limit":
                kwargs["limit"] = int(value)
            elif key == "delay":
                kwargs["delay_sec"] = float(value)
            elif key == "kinds":
                kwargs["kinds"] = tuple(k.strip() for k in value.split("|") if k.strip())
            elif key == "shards":
                kwargs["shards"] = tuple(int(s) for s in value.split("|") if s.strip())
            elif key == "rule":
                parts = value.split(":")
                if len(parts) != 3:
                    raise ValueError(f"bad fault rule {value!r} (want KIND:SHARD:OP)")
                kind, shard_text, op_text = parts
                shard = None if shard_text == "*" else int(shard_text)
                rules.append(FaultRule(kind=kind, op=int(op_text), shard=shard))
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        if rules:
            kwargs["rules"] = tuple(rules)
        return cls(**kwargs)  # type: ignore[arg-type]

    def to_spec(self) -> str:
        """The inverse of :meth:`parse` (to hand schedules to children)."""
        items = []
        if self.seed:
            items.append(f"seed={self.seed}")
        if self.rate:
            items.append(f"rate={self.rate!r}")
        if self.kinds != CLIENT_KINDS:
            items.append("kinds=" + "|".join(self.kinds))
        if self.shards is not None:
            items.append("shards=" + "|".join(str(s) for s in self.shards))
        if self.start:
            items.append(f"start={self.start}")
        if self.limit is not None:
            items.append(f"limit={self.limit}")
        if self.delay_sec != 0.005:
            items.append(f"delay={self.delay_sec!r}")
        items.extend(rule.to_spec() for rule in self.rules)
        return ",".join(items)

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> Optional["FaultSchedule"]:
        """The schedule named by ``REPRO_FAULTS``, or None."""
        env = os.environ if environ is None else environ
        spec = env.get(FAULTS_ENV, "").strip()
        return cls.parse(spec) if spec else None


def coerce_schedule(schedule) -> Optional[FaultSchedule]:
    """Accept a :class:`FaultSchedule`, a spec string, or None."""
    if schedule is None:
        return None
    if isinstance(schedule, FaultSchedule):
        return schedule
    if isinstance(schedule, str):
        return FaultSchedule.parse(schedule)
    raise TypeError(f"fault schedule must be FaultSchedule or spec str, got {type(schedule).__name__}")


class FaultInjector:
    """The stateful end of a schedule: numbers one transport's operation
    stream and injects what :meth:`FaultSchedule.decide` dictates.

    One injector per transport end (all of a client's links share one;
    each shard server owns one), ``side`` filtering the schedule down to
    the kinds that end can express.  Filtered-out decisions still
    consume their op index, so a mixed schedule replays the same
    op-numbering on both sides.  Thread-safe: links and server worker
    threads hit ``begin_op`` concurrently.
    """

    def __init__(self, schedule: FaultSchedule, side: str = "client") -> None:
        if side not in ("client", "server"):
            raise ValueError(f"fault injector side must be client|server, got {side!r}")
        self.schedule = schedule
        self.side = side
        self._allowed = frozenset(CLIENT_KINDS if side == "client" else SERVER_KINDS)
        self._lock = threading.Lock()
        self._ops: Dict[int, int] = {}  # guarded-by: _lock
        self._counts: Dict[str, int] = {}  # guarded-by: _lock
        self._total = 0  # guarded-by: _lock

    def begin_op(self, shard: int) -> Optional[str]:
        """Advance ``shard``'s op counter; return the fault to inject, if any."""
        with self._lock:
            index = self._ops.get(shard, 0)
            self._ops[shard] = index + 1
            if self.schedule.limit is not None and self._total >= self.schedule.limit:
                return None
            kind = self.schedule.decide(shard, index)
            if kind is None or kind not in self._allowed:
                return None
            self._counts[kind] = self._counts.get(kind, 0) + 1
            self._total += 1
            return kind

    @property
    def delay_sec(self) -> float:
        return self.schedule.delay_sec

    def total_injected(self) -> int:
        with self._lock:
            return self._total

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff with a cap and optional budgets.

    ``delay_for(cycle, key)`` is deterministic: the jitter fraction is a
    crc32 draw over ``(key, cycle)``, so a link keyed by its address
    gets a reproducible schedule that still differs from its siblings'
    (no lockstep retry storms).  ``deadline`` bounds total elapsed time
    and ``budget`` total attempts for retry loops built on
    :func:`wait_until`.
    """

    initial: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    deadline: Optional[float] = None
    budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.initial <= 0.0:
            raise ValueError("retry initial delay must be > 0")
        if self.multiplier < 1.0:
            raise ValueError("retry multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("retry jitter must be within [0, 1)")

    @classmethod
    def from_interval(cls, interval: float) -> "RetryPolicy":
        """Back-compat mapping for the old fixed ``retry_interval``."""
        return cls(initial=interval, multiplier=2.0, max_delay=interval * 8)

    def delay_for(self, cycle: int, key: int = 0) -> float:
        """The backoff delay after ``cycle`` consecutive failures."""
        base = min(self.max_delay, self.initial * self.multiplier ** max(0, cycle))
        if self.jitter <= 0.0:
            return base
        frac = crc32(f"jitter:{key}:{cycle}".encode()) / 2**32
        return base * (1.0 - self.jitter * frac)

    def attempts_within(self, window: float, key: int = 0) -> int:
        """Upper bound on attempts a breaker driving this policy makes
        against a dead endpoint over ``window`` seconds (1 probe per
        backoff window)."""
        attempts, elapsed, cycle = 1, 0.0, 0
        while True:
            elapsed += self.delay_for(cycle, key=key)
            if elapsed >= window:
                return attempts
            attempts += 1
            cycle += 1

    def as_spec(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def wait_until(predicate, policy: RetryPolicy, key: int = 0, clock=None, sleep=None) -> bool:
    """Poll ``predicate`` under ``policy``'s backoff schedule until it
    returns truthy, the deadline elapses, or the budget is exhausted."""
    import time

    clock = time.monotonic if clock is None else clock
    sleep = time.sleep if sleep is None else sleep
    started = clock()
    cycle = 0
    while True:
        if predicate():
            return True
        if policy.budget is not None and cycle + 1 >= policy.budget:
            return False
        delay = policy.delay_for(cycle, key=key)
        if policy.deadline is not None and (clock() - started) + delay > policy.deadline:
            return False
        sleep(delay)
        cycle += 1


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """A per-link circuit breaker: closed → open on ``threshold``
    consecutive failures → half-open single probe.

    While open, :meth:`allow` refuses instantly (the caller fails fast
    and falls open locally).  When the backoff window lapses the next
    caller becomes the half-open probe; its success closes the circuit,
    its failure reopens it for the *next* (longer, jittered) window —
    so a dead fleet costs at most one connect attempt per link per
    backoff window.  Reconnect-and-seed rides the probe: the link's
    seed flight happens on the same attempt.

    Not internally locked — the owning link serialises calls under its
    own lock.  ``clock`` is injectable so tests can drive the schedule
    exactly.
    """

    def __init__(self, retry: Optional[RetryPolicy] = None, threshold: int = 1,
                 clock=None, key: int = 0) -> None:
        import time

        self.retry = retry if retry is not None else RetryPolicy()
        self.threshold = max(1, threshold)
        self._clock = time.monotonic if clock is None else clock
        self._key = key
        self.state = BREAKER_CLOSED
        self.failures = 0  # consecutive failures since the last success
        self.cycles = 0  # consecutive open windows (drives the backoff)
        self.opened_until = 0.0
        self.probes = 0  # half-open probes granted
        self.trips = 0  # closed/half-open -> open transitions

    def allow(self) -> bool:
        """May the caller attempt the operation right now?"""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN and self._clock() >= self.opened_until:
            self.state = BREAKER_HALF_OPEN
            self.probes += 1
            return True
        return False

    def record_success(self) -> None:
        self.state = BREAKER_CLOSED
        self.failures = 0
        self.cycles = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == BREAKER_HALF_OPEN or self.failures >= self.threshold:
            delay = self.retry.delay_for(self.cycles, key=self._key)
            self.cycles += 1
            self.trips += 1
            self.opened_until = self._clock() + delay
            self.state = BREAKER_OPEN

    def reset(self) -> None:
        """Forget all failure history (tests use this to clear backoff)."""
        self.record_success()
        self.opened_until = 0.0

    @property
    def retry_at(self) -> float:
        return self.opened_until

    @property
    def key(self) -> int:
        """The jitter key (the owning link's address hash) — what to
        pass to :meth:`RetryPolicy.attempts_within` to reproduce this
        breaker's exact ladder."""
        return self._key
