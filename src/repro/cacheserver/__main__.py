"""``python -m repro.cacheserver`` — the ``repro-cached`` entry point
(how :class:`~repro.cacheserver.server.CacheCluster` spawns its shard
children without needing the console script installed)."""

from repro.cacheserver.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
