"""One analysis *process* of a shared-cache deployment, scriptable.

``python -m repro.cacheserver.workload`` builds an engine (over a named
synthetic benchmark or a PIR program file), optionally joins a shard
cluster (``--remote``), replays a client workload through the paper's
protocol (published query stream: no dedup, no reorder, sequential),
and prints one JSON report: deterministic step counts per round, a
canonical digest of every answer (so answers can be compared
element-wise *across processes*), and the engine/remote accounting.

This is the client half of the multi-process integration tests, the
``benchmarks/bench_shared_cache.py`` protocol, and the CI smoke job —
one honest subprocess instead of three ad-hoc scripts.
"""

import argparse
import hashlib
import json
import sys

from repro.bench.runner import bench_engine_policy
from repro.clients import ALL_CLIENTS
from repro.engine import CachePolicy, PointsToEngine

CLIENTS = {cls.name: cls for cls in ALL_CLIENTS}


def canonical_results(results):
    """A JSON-stable form of a batch's answers: per query, completeness
    plus the sorted ``(object id, class, context)`` pairs.  Equal
    canonical forms mean element-wise identical answers."""
    return [
        {
            "complete": result.complete,
            "pairs": sorted(
                [str(obj.object_id), obj.class_name, list(ctx.to_tuple())]
                for obj, ctx in result.pairs
            ),
        }
        for result in results
    ]


def results_digest(canonical):
    return hashlib.sha256(
        json.dumps(canonical, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


def _wait_for_cluster(addresses, deadline_sec):
    """Block until every shard accepts a TCP connection, with the same
    jittered-backoff policy the serving client uses (one ladder, not a
    bespoke sleep loop).  Raises ``ShardUnavailable`` at the deadline —
    a workload told to wait for a cluster that never comes up should
    fail loudly, not silently measure the local fallback."""
    import socket

    from repro.cacheserver.client import ShardUnavailable
    from repro.cacheserver.faults import RetryPolicy, wait_until

    pending = list(addresses)

    def probe():
        still = []
        for address in pending:
            host, port = address.rsplit(":", 1)
            try:
                with socket.create_connection((host, int(port)), timeout=0.25):
                    pass
            except OSError:
                still.append(address)
        pending[:] = still
        return not pending

    policy = RetryPolicy(initial=0.05, max_delay=0.5, deadline=deadline_sec)
    if not wait_until(probe, policy):
        raise ShardUnavailable(
            f"cluster not reachable within {deadline_sec}s: "
            + ",".join(pending)
        )


def build_engine(args):
    if args.benchmark is not None:
        from repro.bench.suite import load_benchmark

        instance = load_benchmark(args.benchmark, scale=args.scale)
        pag = instance.pag
    else:
        from repro.ir.parser import parse_program
        from repro.pag.builder import build_pag

        with open(args.program, "r", encoding="utf-8") as handle:
            source = handle.read()
        pag = build_pag(parse_program(source, entry=args.entry))
    remote = None
    if args.remote:
        from repro.cacheserver.client import parse_addresses

        remote = parse_addresses(args.remote)
        if args.wait_remote:
            _wait_for_cluster(remote, args.wait_remote)
    cache = CachePolicy(
        max_entries=args.max_entries,
        max_facts=args.max_facts,
        shards=args.shards,
        eviction=args.eviction,
        remote=remote,
        remote_timeout=args.remote_timeout,
        remote_pipeline=args.pipeline if remote else None,
        fault_schedule=args.faults if remote else None,
    )
    # The paper protocol's policy (field-depth k-limit, sequential) —
    # the same numbers every other benchmark in the repo reports.
    return PointsToEngine(pag, bench_engine_policy(cache=cache)), pag


def run(args):
    engine, pag = build_engine(args)
    client = CLIENTS[args.client](pag)
    rounds = []
    canonical = None
    for _ in range(args.rounds):
        _verdicts, batch = client.run_engine(engine, dedupe=False, reorder=False)
        canonical = canonical_results(batch.results)
        rounds.append(
            {
                "steps": batch.stats.steps,
                "hit_rate": round(batch.stats.hit_rate, 4),
                "digest": results_digest(canonical),
            }
        )
    invalidated = None
    if args.invalidate is not None:
        invalidated = engine.invalidate_method(args.invalidate)
    stats = engine.stats()
    report = {
        "workload": args.benchmark or args.program,
        "client": args.client,
        "n_queries": len(canonical) if canonical is not None else 0,
        "rounds": rounds,
        "steps": [r["steps"] for r in rounds],
        "digest": rounds[-1]["digest"] if rounds else None,
        "invalidated": invalidated,
        "cache": {
            "hits": stats.cache.hits,
            "misses": stats.cache.misses,
            "entries": stats.cache.entries,
        }
        if stats.cache is not None
        else None,
        "remote": {
            "shards": stats.remote.shards,
            "remote_hits": stats.remote.remote_hits,
            "remote_misses": stats.remote.remote_misses,
            "remote_errors": stats.remote.remote_errors,
            "unresolved": stats.remote.unresolved,
            "stores": stats.remote.stores,
            "store_errors": stats.remote.store_errors,
            "invalidations": stats.remote.invalidations,
            "invalidation_errors": stats.remote.invalidation_errors,
            "round_trips": stats.remote.round_trips,
            "prefetched": stats.remote.prefetched,
            "epoch_rejections": stats.remote.epoch_rejections,
            "reconnects": stats.remote.reconnects,
            "seeded_entries": stats.remote.seeded_entries,
            "faults": stats.remote.faults,
            "degraded": stats.remote.degraded,
            "breaker_state": list(stats.remote.breaker_state),
        }
        if stats.remote is not None
        else None,
    }
    if args.results is not None:
        with open(args.results, "w", encoding="utf-8") as handle:
            json.dump(canonical, handle, sort_keys=True)
            handle.write("\n")
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.cacheserver.workload",
        description="run one client workload as one analysis process",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--benchmark", metavar="NAME", default=None)
    source.add_argument("--program", metavar="PATH", default=None)
    parser.add_argument("--entry", default="Main.main")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--client", default="SafeCast", choices=sorted(CLIENTS)
    )
    parser.add_argument("--remote", metavar="ADDR,ADDR,...", default=None)
    parser.add_argument("--remote-timeout", type=float, default=2.0)
    parser.add_argument(
        "--wait-remote",
        type=float,
        metavar="SECONDS",
        default=0.0,
        help="wait up to SECONDS for every shard to accept connections "
        "before the workload starts (jittered backoff; fails loudly at "
        "the deadline instead of silently measuring the local fallback)",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="deterministic client-side fault injection, e.g. "
        "'seed=7,rate=0.1,kinds=disconnect|read-timeout' (see "
        "repro.cacheserver.faults.FaultSchedule.parse; the REPRO_FAULTS "
        "environment variable applies when this flag is absent)",
    )
    parser.add_argument(
        "--pipeline",
        dest="pipeline",
        action="store_true",
        default=None,
        help="pipelined remote mode: per-shard prefetch + coalesced "
        "batch-store flushes (protocol 1.2) — the default whenever "
        "--remote is set",
    )
    parser.add_argument(
        "--no-pipeline",
        dest="pipeline",
        action="store_false",
        help="immediate write-through: publish every memo as it is "
        "computed (pre-1.4 visibility semantics)",
    )
    parser.add_argument("--max-entries", type=int, default=None)
    parser.add_argument("--max-facts", type=int, default=None)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--eviction", choices=("lru", "cost"), default="lru")
    parser.add_argument(
        "--rounds", type=int, default=1, help="workload repetitions (default 1)"
    )
    parser.add_argument(
        "--invalidate",
        metavar="METHOD",
        default=None,
        help="invalidate one method after the workload (edit simulation)",
    )
    parser.add_argument(
        "--results",
        metavar="PATH",
        default=None,
        help="write the canonical answers to PATH for exact comparison",
    )
    args = parser.parse_args(argv)
    json.dump(run(args), sys.stdout, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
