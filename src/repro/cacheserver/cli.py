"""``repro-cached`` — operate the shared summary-cache service.

Three modes, one binary:

* **cluster launcher** (default): spawn N shard-server processes, print
  one ``{"event":"listening",...}`` JSON line per shard plus a final
  ``{"event":"ready","addresses":[...]}`` line, then serve until stdin
  reaches EOF (or SIGTERM/SIGINT) — at which point every child is
  terminated before exiting, so the launcher can never leak orphans::

      $ repro-cached --shards 2
      {"event": "listening", "host": "127.0.0.1", "port": 40001, ...}
      {"event": "listening", "host": "127.0.0.1", "port": 40002, ...}
      {"event": "ready", "addresses": ["127.0.0.1:40001", "127.0.0.1:40002"]}

  Clients join with ``CachePolicy(remote=...)`` or
  ``repro-serve --remote addr,addr``.

* **single shard** (``--serve-shard I``): run one shard server in this
  process — what the launcher's children run, and what a process
  supervisor (systemd, k8s) would run one-per-pod.

* **client REPL** (``--connect addr,addr``): read store-level requests
  as JSON lines on stdin, route each to the owning shard (the same
  CRC-32 partition the engines use), write responses to stdout — the
  scripted-exchange tool the CI smoke job drives.  ``store-stats`` is a
  fan-out: one response line per shard.
"""

import argparse
import json
import os
import signal
import sys

from repro.api.codec import decode_request, encode
from repro.api.protocol import (
    PROTOCOL_VERSION,
    BatchInvalidateRequest,
    BatchLookupRequest,
    BatchStoreRequest,
    ErrorResponse,
    InvalidateRequest,
    LookupRequest,
    MethodEntriesRequest,
    StoreRequest,
    StoreStatsRequest,
    WireError,
)
from repro.api.snapshot import check_entry, check_key
from repro.cacheserver.client import ShardLink, ShardUnavailable, parse_addresses
from repro.cacheserver.server import CacheCluster, ShardServer, _listening_line
from repro.cacheserver.store import entry_method


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-cached",
        description=(
            "Shared summary-cache service for points-to engines "
            f"(protocol {PROTOCOL_VERSION}): launch a shard cluster, run "
            "one shard server, or script store-level exchanges."
        ),
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--serve-shard",
        type=int,
        metavar="INDEX",
        default=None,
        help="run one shard server in this process (blocks)",
    )
    mode.add_argument(
        "--connect",
        metavar="ADDR,ADDR,...",
        default=None,
        help="client REPL against a running cluster (stdin JSON lines)",
    )
    parser.add_argument(
        "--shards", type=int, default=2, help="shard count (default 2)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="--serve-shard port (0 = OS pick)"
    )
    parser.add_argument("--max-entries", type=int, default=None)
    parser.add_argument("--max-facts", type=int, default=None)
    parser.add_argument("--eviction", choices=("lru", "cost"), default="lru")
    parser.add_argument(
        "--timeout", type=float, default=1.0, help="--connect socket timeout"
    )
    parser.add_argument(
        "--threaded",
        action="store_true",
        help=(
            "serve on the thread-per-connection transport instead of the "
            "asyncio tier (the default event-loop server; applies to "
            "--serve-shard and to the children a launcher spawns)"
        ),
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=(
            "deterministic server-side fault injection, e.g. "
            "'seed=7,rate=0.1,kinds=disconnect|corrupt' (see "
            "repro.cacheserver.faults.FaultSchedule.parse; defaults to "
            "the REPRO_FAULTS environment variable; applies to "
            "--serve-shard and to the children a launcher spawns)"
        ),
    )
    return parser


def _resolve_faults(args):
    """The ``--faults`` spec (or ``REPRO_FAULTS``), parsed; exits loudly
    on a malformed spec — a chaos run that silently injected nothing
    would defeat its purpose."""
    from repro.cacheserver.faults import FaultSchedule

    spec = args.faults if args.faults is not None else os.environ.get("REPRO_FAULTS", "")
    spec = spec.strip()
    return FaultSchedule.parse(spec) if spec else None


# ----------------------------------------------------------------------
# mode: one shard server (the launcher's child / the pod entry point)
# ----------------------------------------------------------------------
def _serve_shard(args):
    server_cls = ShardServer
    if not args.threaded:
        from repro.cacheserver.aserver import AsyncShardServer

        server_cls = AsyncShardServer
    try:
        server = server_cls(
            args.serve_shard,
            args.shards,
            host=args.host,
            port=args.port,
            max_entries=args.max_entries,
            max_facts=args.max_facts,
            eviction=args.eviction,
            faults=_resolve_faults(args),
        )
    except (ValueError, OSError) as exc:
        print(f"repro-cached: {exc}", file=sys.stderr)
        return 2
    print(_listening_line(server, pid=os.getpid()))
    sys.stdout.flush()

    if args.threaded:

        def shutdown(signum, frame):
            server.stop()
            raise SystemExit(0)

    else:
        # The async server drains gracefully on stop(); let
        # serve_forever return instead of raising out of the handler
        # (SystemExit inside a signal handler would tear through the
        # running event loop mid-drain).
        def shutdown(signum, frame):
            server.stop()

    signal.signal(signal.SIGTERM, shutdown)
    signal.signal(signal.SIGINT, shutdown)
    server.serve_forever()
    return 0


# ----------------------------------------------------------------------
# mode: cluster launcher
# ----------------------------------------------------------------------
def _launch_cluster(args):
    # Handlers first: a SIGTERM/SIGINT that lands *during* spawn turns
    # into SystemExit, which spawn's own BaseException cleanup and the
    # finally below both honour — the launcher can never leak children.
    def shutdown(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, shutdown)
    signal.signal(signal.SIGINT, shutdown)
    try:
        cluster = CacheCluster.spawn(
            shards=args.shards,
            host=args.host,
            max_entries=args.max_entries,
            max_facts=args.max_facts,
            eviction=args.eviction,
            threaded=args.threaded,
            faults=_resolve_faults(args),
        )
    except (ValueError, OSError, RuntimeError) as exc:
        print(f"repro-cached: {exc}", file=sys.stderr)
        return 2
    try:
        # Re-emit the children's own announce lines: the format lives in
        # one place (_listening_line, printed by --serve-shard).
        for info in cluster.announcements:
            print(json.dumps(info, sort_keys=True))
        print(
            json.dumps(
                {"event": "ready", "addresses": list(cluster.addresses)},
                sort_keys=True,
            )
        )
        sys.stdout.flush()
        # Serve until the operator hangs up: stdin EOF is the polite
        # shutdown signal (what the CI job and tests use).
        for _line in sys.stdin:
            pass
        return 0
    finally:
        cluster.stop()
        print(
            json.dumps({"event": "stopped", "shards": args.shards}, sort_keys=True),
            file=sys.stderr,
        )


# ----------------------------------------------------------------------
# mode: client REPL (scripted exchanges)
# ----------------------------------------------------------------------
def _route(request, n_shards):
    """The shard index that owns this request (validates the payload
    enough to route it); ``None`` means broadcast (store-stats, and
    fetch-methods with no method filter).

    Batched ops (protocol 1.2) route like their single-op forms; every
    element must belong to the same shard — the REPL is a scripting
    tool, and a mixed-shard batch would be refused server-side as
    ``wrong-shard`` anyway, so it is refused here with a clearer
    message.
    """
    from repro.analysis.summaries import shard_for_method

    def one(method):
        return shard_for_method(method, n_shards)

    def same_shard(methods, what):
        shards = {one(method) for method in methods}
        if len(shards) != 1:
            raise WireError(
                "invalid-request",
                f"a batched {what} must target one shard per line; "
                f"split the batch by owning shard",
            )
        return shards.pop()

    if isinstance(request, LookupRequest):
        return one(entry_method(check_key(request.key, "lookup.key")))
    if isinstance(request, StoreRequest):
        check_entry(request.entry, "store.entry")
        return one(entry_method(request.entry))
    if isinstance(request, InvalidateRequest):
        return one(request.method)
    if isinstance(request, StoreStatsRequest):
        return None
    if isinstance(request, BatchLookupRequest):
        if not request.keys:
            raise WireError("invalid-request", "batch-lookup names no keys")
        return same_shard(
            [
                entry_method(check_key(key, f"batch-lookup.keys[{i}]"))
                for i, key in enumerate(request.keys)
            ],
            "lookup",
        )
    if isinstance(request, BatchStoreRequest):
        if not request.entries:
            raise WireError("invalid-request", "batch-store names no entries")
        methods = []
        for i, entry in enumerate(request.entries):
            check_entry(entry, f"batch-store.entries[{i}]")
            methods.append(entry_method(entry))
        return same_shard(methods, "store")
    if isinstance(request, BatchInvalidateRequest):
        if not request.methods:
            raise WireError("invalid-request", "batch-invalidate names no methods")
        return same_shard(request.methods, "invalidate")
    if isinstance(request, MethodEntriesRequest):
        if request.methods is None:
            return None  # broadcast: every shard dumps its entries
        if not request.methods:
            raise WireError("invalid-request", "fetch-methods names no methods")
        return same_shard(request.methods, "fetch-methods")
    raise WireError(
        "invalid-request",
        f"the store REPL routes store-level ops only, not "
        f"{type(request).__name__}",
    )


def _connect_repl(args, input_stream=None, output_stream=None):
    input_stream = input_stream or sys.stdin
    output_stream = output_stream or sys.stdout
    try:
        addresses = parse_addresses(args.connect)
    except ValueError as exc:
        print(f"repro-cached: {exc}", file=sys.stderr)
        return 2
    links = [ShardLink(address, timeout=args.timeout) for address in addresses]

    def emit(line):
        output_stream.write(line.strip())
        output_stream.write("\n")
        output_stream.flush()

    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        try:
            request = decode_request(line)
            shard = _route(request, len(links))
        except WireError as exc:
            emit(encode(ErrorResponse(code=exc.code, message=str(exc))))
            continue
        targets = links if shard is None else [links[shard]]
        for link in targets:
            try:
                emit(link.request(line))
            except ShardUnavailable as exc:
                emit(
                    encode(
                        ErrorResponse(code="shard-unavailable", message=str(exc))
                    )
                )
    for link in links:
        link.close()
    return 0


def main(argv=None):
    args = _build_parser().parse_args(argv)
    if args.serve_shard is not None:
        return _serve_shard(args)
    if args.connect is not None:
        return _connect_repl(args)
    return _launch_cluster(args)


if __name__ == "__main__":
    raise SystemExit(main())
