"""The shard server's store: summaries in wire form, no PAG required.

A shard server must outlive any single client and serve clients whose
engines were built independently, so it cannot hold interned PAG node
objects — it keeps entries exactly as they travel: validated
:mod:`repro.api.snapshot` entry dicts, keyed by the canonical JSON of
their context-free key.  Resolution back to nodes happens client-side
(:func:`repro.api.snapshot.resolve_wire_entry`), where a PAG exists.

Semantics mirror the in-process :class:`~repro.analysis.summaries
.SummaryStore` contract — probe counting, method-indexed invalidation,
optional entry/fact ceilings with LRU or cost-aware eviction — so the
accounting a shard reports (:class:`~repro.analysis.summaries
.CacheStats`) means the same thing it means locally.
"""

import heapq
import json
import threading
from collections import OrderedDict

from repro.analysis.summaries import (
    ENTRY_OVERHEAD_BYTES,
    FACT_BYTES,
    CacheStats,
    check_eviction,
)


def canonical_key(key):
    """The canonical JSON of a wire store key — the dictionary key one
    summary has on every shard server, whatever client produced it."""
    return json.dumps(key, sort_keys=True, separators=(",", ":"))


def entry_key(entry):
    """The canonical key of a full wire entry."""
    return canonical_key(
        {"node": entry["node"], "stack": entry["stack"], "state": entry["state"]}
    )


def entry_method(entry_or_key):
    """The method a wire entry/key belongs to (``None`` for globals) —
    the partition and invalidation granularity."""
    return entry_or_key["node"].get("method")


def _entry_facts(entry):
    return len(entry["objects"]) + len(entry["boundaries"])


def _entry_score(entry, facts):
    """Steps-to-recompute per byte — the cost-aware eviction rank (the
    wire-form twin of :func:`repro.analysis.summaries.entry_cost_score`)."""
    return entry.get("steps", 0) / (ENTRY_OVERHEAD_BYTES + facts * FACT_BYTES)


class StaleEpochRejection(Exception):
    """A write-through refused because the client's consistency epoch
    for the entry's method lags the store's: the summary was computed
    against a program version an invalidation has since retired.  The
    server layer turns this into the typed ``stale-epoch`` response."""

    def __init__(self, method, sent, current):
        self.method = method
        self.sent = sent
        self.current = current
        super().__init__(
            f"stale write-through for {method!r}: client epoch {sent} "
            f"behind store epoch {current}"
        )


class WireSummaryStore:
    """A method-indexed, optionally bounded store of wire-form entries.

    Thread-safe: one lock guards every operation (a shard server runs
    one connection handler per client).  Capacity follows the local
    stores' rules — least-recently-used victim by default,
    lowest-cost-per-byte under ``eviction="cost"``, and one pathological
    oversized entry is always admitted rather than thrashed.
    """

    def __init__(self, max_entries=None, max_facts=None, eviction="lru"):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_facts is not None and max_facts < 1:
            raise ValueError(f"max_facts must be >= 1, got {max_facts}")
        self.eviction = check_eviction(eviction)
        if eviction == "cost" and max_entries is None and max_facts is None:
            raise ValueError(
                "eviction='cost' needs a capacity ceiling (max_entries "
                "and/or max_facts); an unbounded store never evicts, so "
                "the policy would be silently inert"
            )
        self.max_entries = max_entries
        self.max_facts = max_facts
        self._lock = threading.RLock()
        self._entries = OrderedDict()  # guarded-by: _lock — key -> entry
        self._by_method = {}  # guarded-by: _lock
        self._facts = 0  # guarded-by: _lock
        # Consistency epochs (protocol 1.4): method -> the newest epoch
        # any client has presented, and the program fingerprint that
        # defined it.  Entries are only served/accepted at the current
        # epoch; see `_sync_method_locked` for the full rule.
        self._epochs = {}  # guarded-by: _lock
        self._fprints = {}  # guarded-by: _lock
        #: Write-throughs refused as stale (the guard firing).
        self.stale_rejections = 0  # guarded-by: _lock
        # Greedy-Dual state (eviction="cost"): see
        # CostAwareSummaryCache — same rule, wire-form entries, and the
        # same heap-backed victim index with lazy invalidation (rank is
        # authoritative; stale heap records are skipped on pop).
        self._clock = 0.0  # guarded-by: _lock
        self._rank = {}  # guarded-by: _lock
        self._heap = []  # guarded-by: _lock
        self._stamp = 0  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self.invalidated = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # the cache contract, keyed by canonical wire keys
    # ------------------------------------------------------------------
    def _refresh_locked(self, ckey, entry):
        """Recency + Greedy-Dual priority refresh for one resident key."""
        self._entries.move_to_end(ckey)
        if self.eviction == "cost":
            self._stamp += 1
            record = (
                self._clock + _entry_score(entry, _entry_facts(entry)),
                self._stamp,
                ckey,
            )
            self._rank[ckey] = record
            heapq.heappush(self._heap, record)
            # Compact here too, not only on eviction: hit-dominated
            # traffic pushes a record per refresh and would otherwise
            # grow the heap without bound.
            if len(self._heap) > 2 * len(self._rank) + 64:
                self._heap = sorted(self._rank.values())

    def _sync_method_locked(self, method, epoch, fingerprint):
        """Reconcile one op's ``(epoch, fingerprint)`` with the store's
        view of ``method``; returns whether the op may proceed.

        * client **ahead** — the client observed an invalidation this
          shard missed (or the shard restarted blank): drop the
          method's residue, adopt the client's epoch and fingerprint,
          proceed.  This is the self-heal rule, now exact instead of
          per-entry best-effort.
        * client **behind** — refuse: a lookup is answered with a miss
          (sound — the client recomputes locally), a store raises
          :class:`StaleEpochRejection`.
        * **equal** epochs — the fingerprint arbitrates: the first
          client to present one pins the method's program version, and
          a differing fingerprint at the same epoch is a different
          program, refused the same way (two programs may never trade
          same-named summaries).  Fingerprint-less (pre-1.4) traffic
          always passes this half of the check.
        """
        se = self._epochs.get(method, 0)
        if epoch > se:
            self._drop_method_locked(method)
            self._epochs[method] = epoch
            if fingerprint is None:
                self._fprints.pop(method, None)
            else:
                self._fprints[method] = fingerprint
            return True
        if epoch < se:
            return False
        if fingerprint is not None:
            recorded = self._fprints.get(method)
            if recorded is None:
                self._fprints[method] = fingerprint
            elif recorded != fingerprint:
                return False
        return True

    def method_epoch(self, method_qname):
        """The store's current consistency epoch for one method."""
        with self._lock:
            return self._epochs.get(method_qname, 0)

    def lookup(self, key, epoch=0, fingerprint=None):
        """The resident entry for wire key ``key``, or ``None``.

        A key whose method the store knows at a *newer* epoch is a
        miss (never a stale entry); a key presented at a newer epoch
        than the store's drops the method's residue first.
        """
        ckey = canonical_key(key)
        with self._lock:
            if not self._sync_method_locked(entry_method(key), epoch, fingerprint):
                self.misses += 1
                return None
            entry = self._entries.get(ckey)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
                self._refresh_locked(ckey, entry)
            return entry

    def store(self, entry, epoch=0, fingerprint=None):
        """Insert a *validated* wire entry.

        A resident **equal** entry only gets its recency refreshed
        (returns False — the in-process re-store rule).  A resident
        entry with a *different* payload is **replaced** (returns
        True): summaries are pure memos, so two honest clients can only
        disagree across a program edit — and then the publish is
        fresher than whatever invalidation this shard may have missed.
        This is what lets an edited client's write-through self-heal a
        shard that was unreachable during the invalidate.

        With epochs on the wire (protocol 1.4) the rule is exact: a
        write-through whose epoch *lags* the method's raises
        :class:`StaleEpochRejection` instead of being arbitrated by
        payload comparison.
        """
        with self._lock:
            if not self._sync_method_locked(entry_method(entry), epoch, fingerprint):
                self.stale_rejections += 1
                raise StaleEpochRejection(
                    entry_method(entry),
                    epoch,
                    self._epochs.get(entry_method(entry), 0),
                )
            return self._store_locked(entry)

    def _store_locked(self, entry):
        ckey = entry_key(entry)
        resident = self._entries.get(ckey)
        if resident is not None:
            # Equality is the *payload* — objects and boundaries —
            # exactly like the in-process rule.  `steps` is cost
            # metadata, not content: a steps-only difference (e.g. a
            # legacy snapshot replayed with steps=0) must not fake a
            # program edit; the better cost estimate is kept instead
            # so cost-aware eviction never loses information.
            if (
                resident["objects"] == entry["objects"]
                and resident["boundaries"] == entry["boundaries"]
            ):
                if entry.get("steps", 0) > resident.get("steps", 0):
                    resident["steps"] = entry.get("steps", 0)
                self._refresh_locked(ckey, resident)
                return False
            self._facts += _entry_facts(entry) - _entry_facts(resident)
            self._entries[ckey] = entry
            self._refresh_locked(ckey, entry)
            self._enforce_capacity_locked()
            return True
        self._entries[ckey] = entry
        self._refresh_locked(ckey, entry)
        self._facts += _entry_facts(entry)
        method = entry_method(entry)
        if method is not None:
            self._by_method.setdefault(method, set()).add(ckey)
        self._enforce_capacity_locked()
        return True

    def invalidate_method(self, method_qname, epoch=0):
        """Drop every entry of one method; returns the number dropped.

        The method's epoch advances to ``max(current + 1, epoch)`` —
        so even an epoch-less (pre-1.4) invalidate retires the version,
        and an epoch-carrying one lands the store exactly on the
        client's post-edit epoch.  The recorded fingerprint is cleared:
        the post-edit program is a version this store has not seen yet,
        and the first write-through at the new epoch will pin it.
        """
        with self._lock:
            return self._invalidate_locked(method_qname, epoch)

    def _invalidate_locked(self, method_qname, epoch=0):
        self._epochs[method_qname] = max(self._epochs.get(method_qname, 0) + 1, epoch)
        self._fprints.pop(method_qname, None)
        return self._drop_method_locked(method_qname)

    def _drop_method_locked(self, method_qname):
        keys = self._by_method.pop(method_qname, ())
        dropped = 0
        for ckey in list(keys):
            if self._remove_locked(ckey) is not None:
                dropped += 1
        self.invalidated += dropped
        return dropped

    # ------------------------------------------------------------------
    # batched ops (protocol 1.2) — each runs under ONE lock acquisition,
    # which is the whole point: a pipelined client pays one round trip
    # and the server pays one lock round trip, however many ops arrived.
    # ------------------------------------------------------------------
    @staticmethod
    def _epoch_at(epochs, index):
        """The epoch aligned with batch element ``index`` (0 when the
        batch carried no epochs — the pre-1.4 wire form)."""
        return epochs[index] if index < len(epochs) else 0

    def lookup_many(self, keys, epochs=(), fingerprint=None):
        """Aligned entries (or ``None``) for many wire keys at once."""
        with self._lock:
            results = []
            for i, key in enumerate(keys):
                if not self._sync_method_locked(
                    entry_method(key), self._epoch_at(epochs, i), fingerprint
                ):
                    self.misses += 1
                    results.append(None)
                    continue
                ckey = canonical_key(key)
                entry = self._entries.get(ckey)
                if entry is None:
                    self.misses += 1
                else:
                    self.hits += 1
                    self._refresh_locked(ckey, entry)
                results.append(entry)
            return results

    def store_many(self, entries, epochs=(), fingerprint=None):
        """Insert many validated wire entries in one lock acquisition;
        returns aligned ``(stored, stale)`` flag lists — a stale
        element is refused individually (never stored) instead of
        failing the whole flush."""
        with self._lock:
            stored, stale = [], []
            for i, entry in enumerate(entries):
                if not self._sync_method_locked(
                    entry_method(entry), self._epoch_at(epochs, i), fingerprint
                ):
                    self.stale_rejections += 1
                    stored.append(False)
                    stale.append(True)
                else:
                    stored.append(self._store_locked(entry))
                    stale.append(False)
            return stored, stale

    def invalidate_many(self, methods, epochs=()):
        """Drop many methods' entries; aligned per-method drop counts."""
        with self._lock:
            return [
                self._invalidate_locked(method, self._epoch_at(epochs, i))
                for i, method in enumerate(methods)
            ]

    def entries_for_methods(self, methods=None):
        """Every resident entry of ``methods`` (all methods when
        ``None``), coldest-first so a client replaying them through
        ``store`` reconstructs this shard's recency order."""
        return self.entries_with_epochs(methods)[0]

    def entries_with_epochs(self, methods=None, fingerprint=None):
        """:meth:`entries_for_methods` plus each entry's method epoch,
        as aligned ``(entries, epochs)`` lists — what the 1.4 prefetch
        serves, so a client can refuse entries whose epoch disagrees
        with its own view.  When the requester presents a
        ``fingerprint``, methods pinned to a *different* fingerprint
        are omitted entirely (a prefetch must never import another
        program's same-named summaries)."""
        with self._lock:
            wanted = None if methods is None else set(methods)
            entries, epochs = [], []
            for entry in self._entries.values():
                method = entry_method(entry)
                if wanted is not None and method not in wanted:
                    continue
                if fingerprint is not None:
                    recorded = self._fprints.get(method)
                    if recorded is not None and recorded != fingerprint:
                        continue
                entries.append(entry)
                epochs.append(self._epochs.get(method, 0))
            return entries, epochs

    def clear(self):
        # Epochs and fingerprints survive a clear: they version the
        # *program*, not the resident entries.
        with self._lock:
            self._entries.clear()
            self._by_method.clear()
            self._facts = 0
            self._clock = 0.0
            self._rank.clear()
            self._heap = []
            self._stamp = 0
            self.hits = self.misses = self.evictions = self.invalidated = 0
            self.stale_rejections = 0  # guarded-by: _lock

    def restart_blank(self):
        """Forget *everything*, epochs and fingerprints included — the
        observable state of a freshly restarted shard process.  This is
        the ``blank-restart`` fault-injection primitive: unlike
        :meth:`clear` it resets the program version too, so clients
        ahead of the blank store self-heal it on first contact (the
        adopt-and-drop epoch rule), exactly as they would a respawned
        child."""
        with self._lock:
            self.clear()
            self._epochs.clear()
            self._fprints.clear()

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------
    def _remove_locked(self, ckey):
        entry = self._entries.pop(ckey, None)
        if entry is None:
            return None
        self._rank.pop(ckey, None)
        self._facts -= _entry_facts(entry)
        method = entry_method(entry)
        if method is not None:
            keys = self._by_method.get(method)
            if keys is not None:
                keys.discard(ckey)
                if not keys:
                    del self._by_method[method]
        return entry

    def _over_capacity_locked(self):
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            return True
        if self.max_facts is not None and self._facts > self.max_facts:
            return True
        return False

    def _pick_victim_locked(self):
        if self.eviction == "cost":
            # Heap pop with lazy invalidation; priority ties resolve by
            # stamp = least-recently-refreshed, the LRU order the old
            # O(n) scan produced.
            heap = self._heap
            rank = self._rank
            while heap:
                record = heap[0]
                if rank.get(record[2]) is not record:
                    heapq.heappop(heap)  # stale: evicted or re-stamped
                    continue
                heapq.heappop(heap)
                self._clock = record[0]
                return record[2]
        return next(iter(self._entries))

    def _enforce_capacity_locked(self):
        while self._over_capacity_locked() and len(self._entries) > 1:
            self._remove_locked(self._pick_victim_locked())
            self.evictions += 1
        if len(self._heap) > 2 * len(self._rank) + 64:
            self._heap = sorted(self._rank.values())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return canonical_key(key) in self._entries

    def total_facts(self):
        with self._lock:
            return self._facts

    def approx_bytes(self):
        with self._lock:
            return (
                len(self._entries) * ENTRY_OVERHEAD_BYTES
                + self._facts * FACT_BYTES
            )

    def stats_snapshot(self):
        with self._lock:
            return CacheStats(
                entries=len(self._entries),
                facts=self._facts,
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                invalidated=self.invalidated,
                approx_bytes=len(self._entries) * ENTRY_OVERHEAD_BYTES
                + self._facts * FACT_BYTES,
                max_entries=self.max_entries,
                max_facts=self.max_facts,
            )

    def __repr__(self):
        return (
            f"WireSummaryStore({len(self)} entries, hits={self.hits}, "
            f"misses={self.misses}, eviction={self.eviction!r})"
        )
