"""Shard servers: the service side of the shared summary cache.

One :class:`ShardServer` owns one slice of the CRC-32 method partition
(:func:`~repro.analysis.summaries.shard_for_method`) and speaks the
store-level ops of the :mod:`repro.api` protocol over a JSON-lines
socket — one request per line, one response per line, concurrent
clients each on their own connection thread.  A request whose key
belongs to a different shard is answered with a ``wrong-shard`` error
rather than silently stored: the partition is part of the contract, and
a routing bug should be loud.

:class:`CacheCluster` is the operational unit: it spawns N shard-server
*processes* (``python -m repro.cacheserver --serve-shard I``), collects
their listening addresses in shard order — exactly the tuple a client
passes to ``CachePolicy(remote=...)`` — and owns their lifetime.  The
``repro-cached`` console script is a thin CLI over it.
"""

import json
import socket
import subprocess
import sys
import threading
import time

from repro.analysis.summaries import shard_for_method
from repro.api.codec import decode_request, encode
from repro.api.protocol import (
    BatchInvalidateRequest,
    BatchInvalidateResponse,
    BatchLookupRequest,
    BatchLookupResponse,
    BatchStoreRequest,
    BatchStoreResponse,
    ErrorResponse,
    InvalidateRequest,
    InvalidateResponse,
    LookupRequest,
    LookupResponse,
    MethodEntriesRequest,
    MethodEntriesResponse,
    ProtocolError,
    StoreRequest,
    StoreResponse,
    StoreStatsRequest,
    StoreStatsResponse,
    WireError,
)
from repro.api.snapshot import check_entry, check_key
from repro.cacheserver.faults import (
    FaultInjector,
    InjectedDisconnect,
    coerce_schedule,
    corrupt_line,
    truncate_line,
)
from repro.cacheserver.store import (
    StaleEpochRejection,
    WireSummaryStore,
    entry_method,
)
from repro.api.protocol import StaleEpochResponse

#: How long ``CacheCluster.spawn`` waits for a child's listening line.
SPAWN_TIMEOUT_SEC = 30.0


class ShardDispatcher:
    """The transport-independent half of a shard server: one
    :class:`~repro.cacheserver.store.WireSummaryStore` plus the
    line-level request dispatch.  The threaded :class:`ShardServer`
    and the asyncio :class:`~repro.cacheserver.aserver.AsyncShardServer`
    both embed exactly this, so the two transports can never drift in
    semantics — and the unit tests drive :meth:`handle_line` directly
    with no socket at all.
    """

    def __init__(
        self,
        shard_index,
        n_shards,
        max_entries=None,
        max_facts=None,
        eviction="lru",
        faults=None,
    ):
        if not 0 <= shard_index < n_shards:
            raise ValueError(
                f"shard_index {shard_index} out of range for {n_shards} shard(s)"
            )
        self.shard_index = shard_index
        self.n_shards = n_shards
        self.store = WireSummaryStore(
            max_entries=max_entries, max_facts=max_facts, eviction=eviction
        )
        # Server-side fault injection (``repro-cached --faults SPEC``):
        # a FaultInjector, FaultSchedule or spec string; ``None`` (the
        # production value) injects nothing.
        if faults is not None and not isinstance(faults, FaultInjector):
            faults = FaultInjector(coerce_schedule(faults), side="server")
        self.faults = faults

    # ------------------------------------------------------------------
    # dispatch (transport-independent; unit tests drive this directly)
    # ------------------------------------------------------------------
    def handle_line(self, line):
        """Decode one request line, dispatch, encode the response —
        every failure becomes a typed error line, never a traceback.

        Fault injection lives HERE, on the transport-independent seam,
        so the threaded and async tiers misbehave identically:
        ``delay`` stalls before dispatch, ``blank-restart`` wipes the
        store (the observable state of a freshly restarted shard
        process) and then serves the request against the blank store,
        ``disconnect`` raises :class:`InjectedDisconnect` for the
        transport to drop the connection, and ``truncate``/``corrupt``
        mutate the encoded response so the client's decoder must refuse
        it and fall open.
        """
        action = (
            self.faults.begin_op(self.shard_index)
            if self.faults is not None
            else None
        )
        if action == "disconnect":
            raise InjectedDisconnect("disconnect", f"shard {self.shard_index}")
        if action == "delay":
            time.sleep(self.faults.delay_sec)
        elif action == "blank-restart":
            self.store.restart_blank()
        response = self._handle_line_inner(line)
        if action == "truncate":
            return truncate_line(response)
        if action == "corrupt":
            return corrupt_line(response)
        return response

    def _handle_line_inner(self, line):
        try:
            request = decode_request(line)
        except WireError as exc:
            return encode(ErrorResponse(code=exc.code, message=str(exc)))
        try:
            return encode(self._dispatch(request))
        except WireError as exc:
            return encode(ErrorResponse(code=exc.code, message=str(exc)))
        except Exception as exc:  # same no-traceback guarantee as the wire
            return encode(
                ErrorResponse(
                    code="internal-error", message=f"{type(exc).__name__}: {exc}"
                )
            )

    def _check_ownership(self, method):
        owner = shard_for_method(method, self.n_shards)
        if owner != self.shard_index:
            raise WireError(
                "wrong-shard",
                f"method {method!r} belongs to shard {owner}, not "
                f"{self.shard_index} (of {self.n_shards})",
            )

    @staticmethod
    def _check_epochs(request, count, path):
        """A batch's ``epochs`` must be absent (pre-1.4) or aligned."""
        if request.epochs and len(request.epochs) != count:
            raise ProtocolError(
                "invalid-request",
                f"{path}: epochs must align with the batch "
                f"({len(request.epochs)} epochs for {count} element(s))",
            )

    def _dispatch(self, request):
        if isinstance(request, LookupRequest):
            key = check_key(request.key, "lookup.key")
            self._check_ownership(entry_method(key))
            entry = self.store.lookup(
                key, epoch=request.epoch, fingerprint=request.fingerprint
            )
            if entry is None:
                return LookupResponse(found=False)
            return LookupResponse(found=True, entry=entry)
        if isinstance(request, StoreRequest):
            check_entry(request.entry, "store.entry")
            self._check_ownership(entry_method(request.entry))
            try:
                stored = self.store.store(
                    request.entry,
                    epoch=request.epoch,
                    fingerprint=request.fingerprint,
                )
            except StaleEpochRejection as stale:
                return StaleEpochResponse(
                    method=stale.method, sent=stale.sent, current=stale.current
                )
            return StoreResponse(stored=stored)
        if isinstance(request, InvalidateRequest):
            self._check_ownership(request.method)
            dropped = self.store.invalidate_method(
                request.method, epoch=request.epoch
            )
            return InvalidateResponse(method=request.method, dropped=dropped)
        if isinstance(request, StoreStatsRequest):
            return StoreStatsResponse(
                shard=self.shard_index,
                shards=self.n_shards,
                stats=self.store.stats_snapshot(),
            )
        # Batched ops (protocol 1.2): validate + ownership-check every
        # element first, then hand the whole batch to the store, which
        # applies it under ONE lock acquisition.
        if isinstance(request, BatchLookupRequest):
            self._check_epochs(request, len(request.keys), "batch-lookup")
            for i, key in enumerate(request.keys):
                check_key(key, f"batch-lookup.keys[{i}]")
                self._check_ownership(entry_method(key))
            entries = self.store.lookup_many(
                request.keys,
                epochs=request.epochs,
                fingerprint=request.fingerprint,
            )
            return BatchLookupResponse(entries=tuple(entries))
        if isinstance(request, BatchStoreRequest):
            self._check_epochs(request, len(request.entries), "batch-store")
            for i, entry in enumerate(request.entries):
                check_entry(entry, f"batch-store.entries[{i}]")
                self._check_ownership(entry_method(entry))
            stored, stale = self.store.store_many(
                request.entries,
                epochs=request.epochs,
                fingerprint=request.fingerprint,
            )
            return BatchStoreResponse(
                stored=tuple(stored),
                stale=tuple(stale) if any(stale) else (),
            )
        if isinstance(request, BatchInvalidateRequest):
            self._check_epochs(request, len(request.methods), "batch-invalidate")
            for method in request.methods:
                self._check_ownership(method)
            dropped = self.store.invalidate_many(
                request.methods, epochs=request.epochs
            )
            return BatchInvalidateResponse(dropped=tuple(dropped))
        if isinstance(request, MethodEntriesRequest):
            if request.methods is not None:
                for method in request.methods:
                    self._check_ownership(method)
            entries, epochs = self.store.entries_with_epochs(
                request.methods, fingerprint=request.fingerprint
            )
            return MethodEntriesResponse(
                entries=tuple(entries),
                epochs=tuple(epochs) if any(epochs) else (),
            )
        raise ProtocolError(
            "invalid-request",
            f"shard servers speak store-level ops only "
            f"(lookup/store/invalidate/store-stats and their 1.2 "
            f"batched forms), not {type(request).__name__}",
        )


class ShardServer(ShardDispatcher):
    """One shard of the cache service: a socket JSON-lines store server
    with a thread per connection — the original transport, kept for
    in-process embedding and as the ``--threaded`` escape hatch of
    ``repro-cached`` (the async tier in
    :mod:`repro.cacheserver.aserver` is the default).

    ``port=0`` (the default) lets the OS pick a free port; the bound
    address is available as :attr:`address` before :meth:`start` /
    :meth:`serve_forever` is called, so launchers can print it first.
    """

    def __init__(
        self,
        shard_index,
        n_shards,
        host="127.0.0.1",
        port=0,
        max_entries=None,
        max_facts=None,
        eviction="lru",
        faults=None,
    ):
        super().__init__(
            shard_index,
            n_shards,
            max_entries=max_entries,
            max_facts=max_facts,
            eviction=eviction,
            faults=faults,
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        # A bare close() does not take a listener down while another
        # thread sits in accept(): the in-flight syscall keeps the
        # kernel socket alive and the port keeps accepting.  A short
        # accept timeout bounds how long that window can last; stop()
        # additionally shutdown()s the listener to wake the loop now.
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._shutdown = threading.Event()
        self._accept_thread = None
        self._conn_lock = threading.Lock()
        self._connections = set()

    @property
    def address(self):
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _serve_connection(self, conn):
        try:
            conn.settimeout(None)
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            writer = conn.makefile("w", encoding="utf-8", newline="\n")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                writer.write(self.handle_line(line))
                writer.write("\n")
                writer.flush()
        except (OSError, ValueError):
            pass  # client went away mid-line (or stop() closed us)
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _accept_loop(self):
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue  # periodic shutdown-flag check
            except OSError:
                break  # listener closed by stop()
            with self._conn_lock:
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def start(self):
        """Serve in a background thread (in-process embedding, tests)."""
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        return self

    def serve_forever(self):
        """Serve on the calling thread until :meth:`stop` (the child
        process mode of ``repro-cached --serve-shard``)."""
        self._accept_loop()

    def stop(self):
        """Stop accepting and drop every open connection — after this
        returns, clients see refused connects and closed streams, the
        same failure surface a killed server process presents."""
        self._shutdown.set()
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()

    def __repr__(self):
        return (
            f"ShardServer(shard {self.shard_index}/{self.n_shards} on "
            f"{self.address}, {len(self.store)} entries)"
        )


def _listening_line(server, pid):
    return json.dumps(
        {
            "event": "listening",
            "shard": server.shard_index,
            "shards": server.n_shards,
            "host": server.host,
            "port": server.port,
            "pid": pid,
        },
        sort_keys=True,
    )


class CacheCluster:
    """N shard-server processes, spawned and owned as one unit.

    ``addresses`` is in shard order — pass it straight to
    ``CachePolicy(remote=cluster.addresses)``.  The cluster is a context
    manager; :meth:`stop` terminates the children politely and kills
    stragglers, so a test or launcher can guarantee no orphans.
    """

    def __init__(self, processes, addresses, announcements=None):
        self.processes = list(processes)
        self.addresses = tuple(addresses)
        #: Each child's parsed ``{"event": "listening", ...}`` line, in
        #: shard order — the single source launchers re-emit, so the
        #: announce format exists in exactly one place
        #: (:func:`_listening_line`).
        self.announcements = list(announcements or ())

    @classmethod
    def spawn(
        cls,
        shards=2,
        host="127.0.0.1",
        max_entries=None,
        max_facts=None,
        eviction="lru",
        python=None,
        threaded=False,
        faults=None,
    ):
        """Spawn ``shards`` shard-server child processes on ``host``.

        Each child picks a free port and announces it as a JSON line on
        stdout; spawn blocks until every child has announced (or died —
        then the whole cluster is torn down and the failure raised).
        Children serve on the asyncio tier by default; ``threaded=True``
        keeps them on the thread-per-connection transport.  ``faults``
        (a :class:`~repro.cacheserver.faults.FaultSchedule` or spec
        string) makes every child inject server-side faults
        deterministically — the chaos-soak battery's server leg.
        """
        python = python or sys.executable
        cluster = None
        schedule = coerce_schedule(faults)
        faults_spec = schedule.to_spec() if schedule is not None else None
        processes, addresses, announcements = [], [], []
        try:
            for index in range(shards):
                proc, info = cls._spawn_child(
                    python, index, shards, host, 0,
                    max_entries, max_facts, eviction, threaded, faults_spec,
                )
                processes.append(proc)
                addresses.append(f"{info['host']}:{info['port']}")
                announcements.append(info)
        except BaseException:
            # BaseException on purpose: a Ctrl-C / SystemExit while the
            # cluster is half-spawned must not leak the children that
            # already started.
            cls(processes, addresses).stop()
            raise
        cluster = cls(processes, addresses, announcements)
        cluster._spawn_opts = {
            "python": python,
            "shards": shards,
            "host": host,
            "max_entries": max_entries,
            "max_facts": max_facts,
            "eviction": eviction,
            "threaded": threaded,
            "faults": faults_spec,
        }
        return cluster

    @staticmethod
    def _spawn_child(
        python, index, shards, host, port,
        max_entries, max_facts, eviction, threaded, faults_spec=None,
    ):
        cmd = [
            python,
            "-m",
            "repro.cacheserver",
            "--serve-shard",
            str(index),
            "--shards",
            str(shards),
            "--host",
            host,
            "--port",
            str(port),
            "--eviction",
            eviction,
        ]
        if max_entries is not None:
            cmd += ["--max-entries", str(max_entries)]
        if max_facts is not None:
            cmd += ["--max-facts", str(max_facts)]
        if threaded:
            cmd += ["--threaded"]
        if faults_spec:
            cmd += ["--faults", faults_spec]
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, text=True, encoding="utf-8"
        )
        line = _readline_with_timeout(proc, SPAWN_TIMEOUT_SEC)
        info = json.loads(line)
        if info.get("event") != "listening":
            raise RuntimeError(f"shard {index} announced {info!r}")
        return proc, info

    def restart_shard(self, index, timeout=5.0):
        """Kill shard ``index`` (if still alive) and respawn it *blank*
        on the same port — the failure-injection primitive behind the
        reconnect-and-seed tests.  Only clusters created by
        :meth:`spawn` can restart (the spawn options are replayed)."""
        opts = getattr(self, "_spawn_opts", None)
        if opts is None:
            raise RuntimeError("restart_shard needs a spawn()-created cluster")
        proc = self.processes[index]
        if proc.poll() is None:
            proc.kill()
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            pass
        if proc.stdout is not None:
            proc.stdout.close()
        host, port = self.addresses[index].rsplit(":", 1)
        fresh, info = self._spawn_child(
            opts["python"], index, opts["shards"], host, int(port),
            opts["max_entries"], opts["max_facts"], opts["eviction"],
            opts["threaded"], opts.get("faults"),
        )
        self.processes[index] = fresh
        if index < len(self.announcements):
            self.announcements[index] = info
        return fresh

    def alive(self):
        """Liveness per shard (True = the child process is running)."""
        return [proc.poll() is None for proc in self.processes]

    def kill(self):
        """Hard-kill every shard immediately (failure-injection tests)."""
        for proc in self.processes:
            if proc.poll() is None:
                proc.kill()
        self._reap()

    def stop(self, timeout=5.0):
        """Terminate every shard; kill whatever ignores SIGTERM."""
        for proc in self.processes:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.processes:
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
        self._reap()

    def _reap(self):
        for proc in self.processes:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                pass
            if proc.stdout is not None:
                proc.stdout.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()

    def __repr__(self):
        up = sum(self.alive())
        return f"CacheCluster({up}/{len(self.processes)} shards up)"


def _readline_with_timeout(proc, timeout):
    """One stdout line from a child, or a RuntimeError if it dies or
    stalls — a crashed shard must fail the spawn, not hang it."""
    result = {}

    def read():
        result["line"] = proc.stdout.readline()

    thread = threading.Thread(target=read, daemon=True)
    thread.start()
    thread.join(timeout)
    line = result.get("line", "")
    if thread.is_alive() or not line:
        raise RuntimeError(
            f"shard server (pid {proc.pid}) did not announce a listening "
            f"address within {timeout}s (exit code {proc.poll()})"
        )
    return line
