"""Self-hosted developer tooling: the ``repro-lint`` static-analysis
pass that mechanizes this repo's concurrency, hot-path, async and
wire-protocol invariants (a static-analysis reproduction should dogfood
its own discipline).

Entry points: the ``repro-lint`` console script
(:func:`repro.devtools.cli.main`), or programmatically::

    from repro.devtools import ALL_RULES, collect_findings, load_project

    project = load_project(Path("."), [Path("src")])
    findings = collect_findings(project, list(ALL_RULES.values()))
"""

from repro.devtools.analyzer import (
    BaselineError,
    Finding,
    Module,
    Project,
    Rule,
    collect_findings,
    load_baseline,
    load_project,
    split_findings,
    write_baseline,
)
from repro.devtools.cli import ALL_RULES, main
from repro.devtools.registry import HOT_FUNCTIONS, HotFunction, hot_function_ids

__all__ = [
    "ALL_RULES",
    "BaselineError",
    "Finding",
    "HOT_FUNCTIONS",
    "HotFunction",
    "Module",
    "Project",
    "Rule",
    "collect_findings",
    "hot_function_ids",
    "load_baseline",
    "load_project",
    "main",
    "split_findings",
    "write_baseline",
]
