"""WIRE001: protocol drift.

The wire contract is one schema in three places: the frozen dataclasses
of :mod:`repro.api.protocol` (the source of truth — the codec derives
its validators from their annotations at runtime), the kind registries
that route decoding, and the human-facing protocol-version story
(``PROTOCOL_VERSION``, the README version table).  WIRE001 pins the
ways they can drift:

* every ``*Request`` / ``*Response`` dataclass must be registered in
  ``REQUEST_KINDS`` / ``RESPONSE_KINDS`` (an unregistered message
  encodes but can never be decoded), and every registry entry must
  name a defined dataclass;
* every registered message must carry a ``protocol_version`` field
  defaulting to the ``PROTOCOL_VERSION`` constant — a hardcoded
  ``"1.3"`` default is exactly the silent skew this rule exists for;
* every field annotation must be built from atoms the codec can
  validate (builtins, ``Optional``/``Tuple``/``Dict``/``Any``, and the
  protocol's own dataclasses) — a field the codec cannot derive a
  validator for fails open at runtime;
* the version literal lives in ``protocol.py`` **only**: ``service.py``
  must import it, never re-state it; and the README's protocol version
  table must list ``PROTOCOL_VERSION`` as its newest row (docstrings
  and doc examples showing *old* versions are fine — old minors stay
  accepted on the wire).
"""

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.analyzer import Finding, Module, Project, Rule
from repro.devtools.registry import WIRE_PROTOCOL_SUFFIX, WIRE_SERVICE_SUFFIX

_VERSION_RE = re.compile(r"^\d+\.\d+$")
_TABLE_ROW_RE = re.compile(r"^\|\s*(\d+\.\d+)\s*\|")

#: Annotation atoms the codec's derived validators understand.
_CODEC_ATOMS = frozenset(
    {
        "Any",
        "Dict",
        "Optional",
        "Tuple",
        "bool",
        "bytes",
        "float",
        "int",
        "str",
        "None",
    }
)


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else None
        )
        if name == "dataclass":
            return True
    return False


def _dict_value_names(node: ast.expr) -> List[Tuple[str, Optional[str]]]:
    """``(kind, class name)`` pairs from a ``{"kind": Class}`` literal."""
    pairs: List[Tuple[str, Optional[str]]] = []
    if isinstance(node, ast.Dict):
        for key, value in zip(node.keys, node.values):
            kind = (
                key.value
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
                else ""
            )
            name = value.id if isinstance(value, ast.Name) else None
            pairs.append((kind, name))
    return pairs


def _annotation_atoms(annotation: ast.expr) -> Set[str]:
    atoms: Set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            atoms.add(node.id)
        elif isinstance(node, ast.Attribute):
            atoms.add(node.attr)
        elif isinstance(node, ast.Constant) and node.value is None:
            atoms.add("None")
    return atoms


class ProtocolDrift(Rule):
    id = "WIRE001"
    summary = (
        "wire dataclasses, kind registries, the PROTOCOL_VERSION "
        "constant and the README version table must agree"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        protocol = project.by_suffix(WIRE_PROTOCOL_SUFFIX)
        if protocol is None:
            return
        dataclasses: Dict[str, ast.ClassDef] = {}
        registries: Dict[str, List[Tuple[str, Optional[str]]]] = {}
        version: Optional[str] = None
        version_line = 1
        imported: Set[str] = set()
        for stmt in protocol.tree.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    imported.add((alias.asname or alias.name).split(".")[0])
            if isinstance(stmt, ast.ClassDef) and _is_dataclass(stmt):
                dataclasses[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "PROTOCOL_VERSION":
                    version_line = stmt.lineno
                    if isinstance(stmt.value, ast.Constant) and isinstance(
                        stmt.value.value, str
                    ):
                        version = stmt.value.value
                elif target.id in ("REQUEST_KINDS", "RESPONSE_KINDS"):
                    registries[target.id] = _dict_value_names(stmt.value)

        if version is None or not _VERSION_RE.match(version):
            yield Finding(
                file=protocol.relpath,
                line=version_line,
                col=0,
                rule=self.id,
                message=(
                    "PROTOCOL_VERSION must be a '<major>.<minor>' string "
                    "literal assigned at module level"
                ),
            )
            version = None

        registered: Set[str] = set()
        for registry_name in ("REQUEST_KINDS", "RESPONSE_KINDS"):
            entries = registries.get(registry_name)
            if entries is None:
                yield Finding(
                    file=protocol.relpath,
                    line=1,
                    col=0,
                    rule=self.id,
                    message=f"missing dict-literal registry {registry_name}",
                )
                continue
            seen_kinds: Set[str] = set()
            for kind, class_name in entries:
                if kind in seen_kinds:
                    yield Finding(
                        file=protocol.relpath,
                        line=1,
                        col=0,
                        rule=self.id,
                        message=(
                            f"{registry_name} registers kind {kind!r} twice"
                        ),
                    )
                seen_kinds.add(kind)
                if class_name is None or class_name not in dataclasses:
                    yield Finding(
                        file=protocol.relpath,
                        line=1,
                        col=0,
                        rule=self.id,
                        message=(
                            f"{registry_name}[{kind!r}] names "
                            f"{class_name!r}, which is not a protocol "
                            f"dataclass"
                        ),
                    )
                else:
                    registered.add(class_name)

        suffix_of = {"Request": "REQUEST_KINDS", "Response": "RESPONSE_KINDS"}
        for name, cls in dataclasses.items():
            for suffix, registry_name in suffix_of.items():
                if name.endswith(suffix) and name not in registered:
                    yield Finding(
                        file=protocol.relpath,
                        line=cls.lineno,
                        col=cls.col_offset,
                        rule=self.id,
                        message=(
                            f"wire dataclass {name} is not registered in "
                            f"{registry_name} — it can be encoded but "
                            f"never decoded"
                        ),
                    )
            yield from self._check_fields(
                protocol, cls, name in registered, set(dataclasses) | imported
            )

        yield from self._check_service(project)
        if version is not None:
            yield from self._check_readme(project, protocol, version)

    def _check_fields(
        self,
        protocol: Module,
        cls: ast.ClassDef,
        is_registered: bool,
        class_names: Set[str],
    ) -> Iterator[Finding]:
        has_version_field = False
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            field_name = stmt.target.id
            unknown = _annotation_atoms(stmt.annotation) - _CODEC_ATOMS - class_names
            if unknown:
                yield Finding(
                    file=protocol.relpath,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    rule=self.id,
                    message=(
                        f"{cls.name}.{field_name}: annotation uses "
                        f"{sorted(unknown)!r}, which the codec cannot "
                        f"derive a validator for"
                    ),
                )
            if field_name == "protocol_version":
                has_version_field = True
                default = stmt.value
                if not (
                    isinstance(default, ast.Name)
                    and default.id == "PROTOCOL_VERSION"
                ):
                    yield Finding(
                        file=protocol.relpath,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        rule=self.id,
                        message=(
                            f"{cls.name}.protocol_version must default to "
                            f"the PROTOCOL_VERSION constant, not a literal"
                        ),
                    )
            elif isinstance(stmt.value, ast.Constant) and isinstance(
                stmt.value.value, str
            ):
                if _VERSION_RE.match(stmt.value.value):
                    yield Finding(
                        file=protocol.relpath,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        rule=self.id,
                        message=(
                            f"{cls.name}.{field_name}: hardcoded protocol "
                            f"version literal {stmt.value.value!r}"
                        ),
                    )
        if is_registered and not has_version_field:
            yield Finding(
                file=protocol.relpath,
                line=cls.lineno,
                col=cls.col_offset,
                rule=self.id,
                message=(
                    f"registered wire dataclass {cls.name} lacks a "
                    f"protocol_version field"
                ),
            )

    def _check_service(self, project: Project) -> Iterator[Finding]:
        service = project.by_suffix(WIRE_SERVICE_SUFFIX)
        if service is None:
            return
        imports_version = False
        for node in ast.walk(service.tree):
            if isinstance(node, ast.ImportFrom):
                if any(
                    alias.name == "PROTOCOL_VERSION" for alias in node.names
                ):
                    imports_version = True
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "PROTOCOL_VERSION"
                    ):
                        yield Finding(
                            file=service.relpath,
                            line=node.lineno,
                            col=node.col_offset,
                            rule=self.id,
                            message=(
                                "service.py redefines PROTOCOL_VERSION — "
                                "import it from the protocol module"
                            ),
                        )
        if not imports_version:
            yield Finding(
                file=service.relpath,
                line=1,
                col=0,
                rule=self.id,
                message=(
                    "service.py must import PROTOCOL_VERSION from the "
                    "protocol module (never restate the version)"
                ),
            )

    @staticmethod
    def _check_readme(
        project: Project, protocol: Module, version: str
    ) -> Iterator[Finding]:
        readme = project.root / "README.md"
        if not readme.exists():
            return
        rows: List[str] = []
        for line in readme.read_text(encoding="utf-8").splitlines():
            match = _TABLE_ROW_RE.match(line.strip())
            if match:
                rows.append(match.group(1))
        if not rows:
            yield Finding(
                file="README.md",
                line=1,
                col=0,
                rule=ProtocolDrift.id,
                message=(
                    "README has no protocol version table "
                    "(rows of the form '| <major>.<minor> | ... |')"
                ),
            )
            return
        newest = max(rows, key=lambda v: tuple(int(p) for p in v.split(".")))
        if newest != version:
            yield Finding(
                file="README.md",
                line=1,
                col=0,
                rule=ProtocolDrift.id,
                message=(
                    f"README version table tops out at {newest} but "
                    f"PROTOCOL_VERSION is {version}"
                ),
            )
