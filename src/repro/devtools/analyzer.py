"""The ``repro-lint`` engine: module walking, rule registry, findings,
inline suppressions and the committed baseline.

The analyzer is pure :mod:`ast` + source text — it never imports the
code under analysis, so it can lint a broken tree and runs identically
under any interpreter that parses the source.  The moving parts:

* :class:`Finding` — one diagnostic, carrying ``file:line:col``, the
  rule id and a stable message.  The *message* (not the line number)
  is the identity the baseline matches on, so findings survive
  unrelated edits above them.
* :class:`Module` / :class:`Project` — a parsed file and the set of
  parsed files a run covers, plus the project root (rules that need
  non-Python context, like WIRE001's README check, resolve against
  it).
* Inline suppressions — ``# repro-lint: ignore[RULE]`` on the
  offending line (or on a standalone comment line directly above it)
  silences that rule there; ``ignore[RULE1,RULE2]`` lists several.
* The baseline — a committed JSON file of grandfathered findings, each
  with a mandatory human justification.  ``repro-lint`` exits non-zero
  only on findings that are neither suppressed nor baselined, so the
  rules can be strict without a flag-day fix of every legacy site.
"""

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "BaselineError",
    "Finding",
    "Module",
    "Project",
    "Rule",
    "collect_findings",
    "load_baseline",
    "load_project",
    "mutated_self_attr",
    "self_attr_root",
    "split_findings",
    "write_baseline",
]


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, and a stable message."""

    file: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.message}"

    @property
    def key(self) -> str:
        """The baseline identity: rule + file + message, line-free so a
        grandfathered finding survives edits elsewhere in the file."""
        return f"{self.rule}::{self.file}::{self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


# ----------------------------------------------------------------------
# modules and projects
# ----------------------------------------------------------------------
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Z0-9_,\s]+)\]")


@dataclass
class Module:
    """One parsed Python file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: Tuple[str, ...] = field(default_factory=tuple)
    _suppressions: Optional[Dict[int, Set[str]]] = field(
        default=None, repr=False, compare=False
    )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressions(self) -> Dict[int, Set[str]]:
        """``lineno -> rule ids`` silenced there.  A trailing comment
        covers its own line; a standalone comment line covers the next
        line (for statements too long to share a line with)."""
        if self._suppressions is None:
            table: Dict[int, Set[str]] = {}
            for index, text in enumerate(self.lines):
                match = _SUPPRESS_RE.search(text)
                if not match:
                    continue
                rules = {
                    rule.strip()
                    for rule in match.group(1).split(",")
                    if rule.strip()
                }
                lineno = index + 1
                if text.lstrip().startswith("#"):
                    lineno += 1  # standalone comment: covers the next line
                table.setdefault(lineno, set()).update(rules)
            self._suppressions = table
        return self._suppressions

    def is_suppressed(self, finding: Finding) -> bool:
        return finding.rule in self.suppressions().get(finding.line, set())


@dataclass
class Project:
    """The set of modules one lint run covers, plus the repo root."""

    root: Path
    modules: List[Module]
    parse_failures: List[Finding] = field(default_factory=list)

    def by_relpath(self, relpath: str) -> Optional[Module]:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None

    def by_suffix(self, suffix: str) -> Optional[Module]:
        for module in self.modules:
            if module.relpath.endswith(suffix):
                return module
        return None


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def load_project(root: Path, paths: Sequence[Path]) -> Project:
    """Parse every ``.py`` under ``paths`` into a :class:`Project`.
    A file that fails to parse becomes a ``PARSE`` finding rather than
    aborting the run — a syntax error elsewhere must not hide lint
    findings in files that do parse."""
    root = root.resolve()
    modules: List[Module] = []
    failures: List[Finding] = []
    for path in _iter_python_files([Path(p) for p in paths]):
        resolved = path.resolve()
        try:
            relpath = resolved.relative_to(root).as_posix()
        except ValueError:
            relpath = resolved.as_posix()
        source = resolved.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(resolved))
        except SyntaxError as exc:
            failures.append(
                Finding(
                    file=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="PARSE",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        modules.append(
            Module(
                path=resolved,
                relpath=relpath,
                source=source,
                tree=tree,
                lines=tuple(source.splitlines()),
            )
        )
    return Project(root=root, modules=modules, parse_failures=failures)


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
class Rule:
    """One lint rule.  ``check_module`` runs per file;
    ``check_project`` runs once per lint run (for cross-file
    invariants like protocol drift)."""

    id: str = "RULE000"
    summary: str = ""

    def check_module(self, module: Module, project: Project) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


def collect_findings(
    project: Project, rules: Sequence[Rule]
) -> List[Finding]:
    """Every finding from every rule, parse failures included, sorted
    by location.  Inline suppressions are *not* applied here — see
    :func:`split_findings`."""
    findings: List[Finding] = list(project.parse_failures)
    for rule in rules:
        for module in project.modules:
            findings.extend(rule.check_module(module, project))
        findings.extend(rule.check_project(project))
    return sorted(set(findings))


def split_findings(
    project: Project,
    findings: Iterable[Finding],
    baseline: Dict[str, str],
) -> Tuple[List[Finding], List[Finding], List[Finding]]:
    """Partition into ``(fresh, suppressed, baselined)``.  Only fresh
    findings fail the run."""
    fresh: List[Finding] = []
    suppressed: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        module = project.by_relpath(finding.file)
        if module is not None and module.is_suppressed(finding):
            suppressed.append(finding)
        elif finding.key in baseline:
            baselined.append(finding)
        else:
            fresh.append(finding)
    return fresh, suppressed, baselined


# ----------------------------------------------------------------------
# the baseline
# ----------------------------------------------------------------------
class BaselineError(Exception):
    """The baseline file is unusable (malformed, or an entry lacks the
    mandatory justification)."""


_TODO_JUSTIFICATION = "TODO: justify this grandfathered finding or fix it"


def load_baseline(path: Path) -> Dict[str, str]:
    """``finding key -> justification``.  Every entry must carry a
    non-placeholder justification: a baseline is an explicit, reviewed
    debt list, not a mute button."""
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise BaselineError(f"{path}: unreadable baseline: {exc}") from None
    entries = payload.get("findings") if isinstance(payload, dict) else None
    if not isinstance(entries, list):
        raise BaselineError(f"{path}: expected {{'findings': [...]}}")
    baseline: Dict[str, str] = {}
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineError(f"{path}: findings[{index}] is not an object")
        try:
            key = f"{entry['rule']}::{entry['file']}::{entry['message']}"
        except KeyError as exc:
            raise BaselineError(
                f"{path}: findings[{index}] lacks {exc}"
            ) from None
        justification = str(entry.get("justification", "")).strip()
        if not justification or justification == _TODO_JUSTIFICATION:
            raise BaselineError(
                f"{path}: findings[{index}] ({entry['rule']} in "
                f"{entry['file']}) needs a real justification"
            )
        baseline[key] = justification
    return baseline


def write_baseline(
    path: Path, findings: Iterable[Finding], existing: Dict[str, str]
) -> None:
    """Write the baseline for ``findings``, keeping justifications of
    entries that already had one and stamping ``TODO`` on new ones (the
    loader refuses TODOs, so a regenerated baseline must be reviewed
    before it passes)."""
    entries = []
    for finding in sorted(set(findings)):
        entries.append(
            {
                "rule": finding.rule,
                "file": finding.file,
                "message": finding.message,
                "justification": existing.get(
                    finding.key, _TODO_JUSTIFICATION
                ),
            }
        )
    payload = {"version": 1, "findings": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
#: Method names that mutate their receiver in place — the calls LOCK001
#: treats as writes when invoked on a guarded field.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)


def self_attr_root(node: ast.AST) -> Optional[str]:
    """The ``X`` in a ``self.X...`` attribute/subscript/call chain
    (``self.X``, ``self.X[i]``, ``self.X.y.z()``), or ``None`` when the
    chain is not rooted at ``self``."""
    root: Optional[str] = None
    current: ast.AST = node
    while True:
        if isinstance(current, ast.Attribute):
            if isinstance(current.value, ast.Name) and current.value.id == "self":
                root = current.attr
            current = current.value
        elif isinstance(current, (ast.Subscript, ast.Starred)):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        else:
            return root


def mutated_self_attr(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(attr, site)`` for every in-place mutation of a
    ``self.<attr>`` chain inside ``node``: assignment / augmented
    assignment / deletion targets and :data:`MUTATOR_METHODS` calls."""
    for child in ast.walk(node):
        targets: List[ast.expr] = []
        if isinstance(child, ast.Assign):
            targets = list(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            targets = [child.target]
        elif isinstance(child, ast.Delete):
            targets = list(child.targets)
        elif isinstance(child, ast.Call):
            func = child.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                attr = self_attr_root(func.value)
                if attr is not None:
                    yield attr, child
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                continue  # plain local
            attr = self_attr_root(target)
            if attr is not None:
                yield attr, target
        # Unpacking targets like ``a, self.x = ...``
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    attr = self_attr_root(element)
                    if attr is not None:
                        yield attr, element
