"""LOCK001 / LOCK002: the locking discipline rules.

**LOCK001** — a field declared guarded (a ``# guarded-by: <lock_attr>``
comment on its ``self.<field> = ...`` line, conventionally in
``__init__``) may only be mutated

* inside a ``with self.<lock_attr>:`` (or ``with <lock_attr>:``) block,
* in a method whose name ends in ``_locked`` (the
  :class:`~repro.cacheserver.store.WireSummaryStore` convention: the
  caller holds the lock), or
* in ``__init__`` (construction happens-before publication).

Reads are deliberately out of scope: the codebase's counters are
documented lock-free monotonic reads, and the GIL makes a stale read
benign where a lost update is not.

**LOCK002** — in a class that owns a *family* of shard locks
(``self._locks``), no second shard lock may be acquired while one is
held.  The codebase acquires shard locks one at a time today
(``shard, lock = self._slot(node); with lock:`` and
``for shard, lock in zip(self._shards, self._locks):``); keeping it
that way is the deadlock-freedom precondition for the planned shard
rebalancing, which will move entries *between* shards.
"""

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.analyzer import (
    Finding,
    Module,
    Project,
    Rule,
    mutated_self_attr,
    self_attr_root,
)

_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


def _class_functions(
    cls: ast.ClassDef,
) -> Iterator[ast.stmt]:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def _guarded_fields(module: Module, cls: ast.ClassDef) -> Dict[str, str]:
    """``field -> lock_attr`` declared via ``# guarded-by:`` comments
    on ``self.<field> = ...`` lines anywhere in the class."""
    guards: Dict[str, str] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                match = _GUARD_RE.search(module.line_text(target.lineno))
                if match:
                    guards[target.attr] = match.group(1)
    return guards


def _with_item_names(stmt: ast.stmt) -> List[str]:
    names: List[str] = []
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            names.append(ast.unparse(item.context_expr))
    return names


class LockDiscipline(Rule):
    id = "LOCK001"
    summary = (
        "fields declared '# guarded-by: <lock>' may only be mutated "
        "under 'with self.<lock>'"
    )

    def check_module(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                guards = _guarded_fields(module, node)
                if guards:
                    yield from self._check_class(module, node, guards)

    def _check_class(
        self, module: Module, cls: ast.ClassDef, guards: Dict[str, str]
    ) -> Iterator[Finding]:
        for func in _class_functions(cls):
            assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
            exempt = func.name == "__init__" or func.name.endswith("_locked")
            yield from self._walk(
                module, cls, func.name, func.body, guards, [], exempt
            )

    def _walk(
        self,
        module: Module,
        cls: ast.ClassDef,
        func_name: str,
        body: List[ast.stmt],
        guards: Dict[str, str],
        held: List[str],
        exempt: bool,
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function runs later, under whatever locks its
                # *caller* holds — analyze it with no inherited locks,
                # honoring the ``_locked`` naming escape.
                yield from self._walk(
                    module,
                    cls,
                    stmt.name,
                    stmt.body,
                    guards,
                    [],
                    stmt.name.endswith("_locked"),
                )
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = _with_item_names(stmt)
                yield from self._walk(
                    module, cls, func_name, stmt.body, guards,
                    held + acquired, exempt,
                )
            elif isinstance(
                stmt, (ast.For, ast.AsyncFor, ast.While, ast.If)
            ):
                header: List[ast.AST] = []
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    header = [stmt.iter, stmt.target]
                else:
                    header = [stmt.test]
                for node in header:
                    yield from self._check_leaf(
                        module, cls, func_name, node, guards, held, exempt
                    )
                yield from self._walk(
                    module, cls, func_name, stmt.body, guards, held, exempt
                )
                yield from self._walk(
                    module, cls, func_name, stmt.orelse, guards, held, exempt
                )
            elif isinstance(stmt, ast.Try):
                yield from self._walk(
                    module, cls, func_name, stmt.body, guards, held, exempt
                )
                for handler in stmt.handlers:
                    yield from self._walk(
                        module, cls, func_name, handler.body, guards,
                        held, exempt,
                    )
                yield from self._walk(
                    module, cls, func_name, stmt.orelse, guards, held, exempt
                )
                yield from self._walk(
                    module, cls, func_name, stmt.finalbody, guards,
                    held, exempt,
                )
            else:
                yield from self._check_leaf(
                    module, cls, func_name, stmt, guards, held, exempt
                )

    def _check_leaf(
        self,
        module: Module,
        cls: ast.ClassDef,
        func_name: str,
        node: ast.AST,
        guards: Dict[str, str],
        held: List[str],
        exempt: bool,
    ) -> Iterator[Finding]:
        if exempt:
            return
        for attr, site in mutated_self_attr(node):
            lock = guards.get(attr)
            if lock is None:
                continue
            if any(self._covers(expr, lock) for expr in held):
                continue
            yield Finding(
                file=module.relpath,
                line=getattr(site, "lineno", 1),
                col=getattr(site, "col_offset", 0),
                rule=self.id,
                message=(
                    f"{cls.name}.{func_name} mutates guarded field "
                    f"'{attr}' outside 'with self.{lock}'"
                ),
            )

    @staticmethod
    def _covers(held_expr: str, lock: str) -> bool:
        return (
            held_expr == lock
            or held_expr == f"self.{lock}"
            or held_expr.endswith(f".{lock}")
        )


class ShardLockNesting(Rule):
    id = "LOCK002"
    summary = "no second shard lock may be acquired while one is held"

    def check_module(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and self._owns_lock_family(node):
                for func in _class_functions(node):
                    assert isinstance(
                        func, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    lock_names = self._shard_lock_names(func)
                    yield from self._walk(
                        module, node, func, func.body, lock_names, 0
                    )

    @staticmethod
    def _owns_lock_family(cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "_locks"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
        return False

    @staticmethod
    def _shard_lock_names(
        func: ast.AST,
    ) -> Set[str]:
        """Local names that hold one shard lock: targets of
        ``..., lock = self._slot(...)`` unpacks and of ``for`` loops
        iterating anything derived from ``self._locks``."""
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                source = ast.unparse(node.value)
                if "._slot(" in source or "._locks" in source:
                    for target in node.targets:
                        elements = (
                            target.elts
                            if isinstance(target, (ast.Tuple, ast.List))
                            else [target]
                        )
                        for element in elements:
                            if isinstance(
                                element, ast.Name
                            ) and "lock" in element.id:
                                names.add(element.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if "._locks" in ast.unparse(node.iter):
                    target = node.target
                    elements = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for element in elements:
                        if isinstance(
                            element, ast.Name
                        ) and "lock" in element.id:
                            names.add(element.id)
        return names

    def _is_shard_lock(self, expr: ast.expr, lock_names: Set[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in lock_names
        source = ast.unparse(expr)
        return "._locks[" in source

    def _walk(
        self,
        module: Module,
        cls: ast.ClassDef,
        func: ast.AST,
        body: List[ast.stmt],
        lock_names: Set[str],
        depth: int,
    ) -> Iterator[Finding]:
        func_name = getattr(func, "name", "<lambda>")
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner_depth = depth
                for item in stmt.items:
                    if self._is_shard_lock(item.context_expr, lock_names):
                        inner_depth += 1
                        if inner_depth > 1:
                            yield Finding(
                                file=module.relpath,
                                line=item.context_expr.lineno,
                                col=item.context_expr.col_offset,
                                rule=self.id,
                                message=(
                                    f"{cls.name}.{func_name} acquires a "
                                    f"second shard lock "
                                    f"('{ast.unparse(item.context_expr)}') "
                                    f"while already holding one"
                                ),
                            )
                yield from self._walk(
                    module, cls, func, stmt.body, lock_names, inner_depth
                )
            elif isinstance(
                stmt,
                (ast.For, ast.AsyncFor, ast.While, ast.If, ast.Try),
            ):
                for child_body in self._bodies(stmt):
                    yield from self._walk(
                        module, cls, func, child_body, lock_names, depth
                    )
            elif depth > 0:
                # ``lock.acquire()`` on a second shard lock while one is
                # held is the same deadlock precondition without a
                # ``with``.
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "acquire"
                        and self._is_shard_lock(node.func.value, lock_names)
                    ):
                        yield Finding(
                            file=module.relpath,
                            line=node.lineno,
                            col=node.col_offset,
                            rule=self.id,
                            message=(
                                f"{cls.name}.{func_name} calls acquire() "
                                f"on a second shard lock "
                                f"('{ast.unparse(node.func.value)}') while "
                                f"already holding one"
                            ),
                        )

    @staticmethod
    def _bodies(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While, ast.If)):
            yield stmt.body
            yield stmt.orelse
        elif isinstance(stmt, ast.Try):
            yield stmt.body
            for handler in stmt.handlers:
                yield handler.body
            yield stmt.orelse
            yield stmt.finalbody
