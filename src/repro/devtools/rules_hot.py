"""HOT001: hot-loop hygiene.

The traversal inner loops (registered in
:data:`repro.devtools.registry.HOT_FUNCTIONS`) are kept at the CPython
dispatch floor: every name the loop repeats is bound to a local before
the loop starts, so the body runs on ``LOAD_FAST`` instead of
``LOAD_GLOBAL`` / ``LOAD_ATTR``, allocates nothing but its worklist
items, and sets up no exception blocks per iteration.  HOT001 checks
everything lexically inside a loop body of a hot function and flags

* loads of global names (anything not bound in the function),
* ``self.<attr>`` loads (bind the bound method / field to a local
  above the loop),
* closure or lambda creation, and
* ``try``/``except`` blocks (a ``try`` *around* the whole loop — the
  repo's budget-sync idiom — is fine; one inside the body pays a
  per-iteration setup on pre-3.11 interpreters).

Two deliberate exemptions keep the rule true to the code's intent:
ALL_CAPS module constants (``S1``, ``FAM_LOAD`` — flat compare fuel,
loaded rarely and cached by 3.11+ inline caches) and names used only to
*raise* (``raise BudgetExceededError(limit)`` is the cold abort path;
the load never happens on a completing traversal).
"""

import ast
import re
from typing import Iterator, List, Optional, Set, Tuple

from repro.devtools.analyzer import Finding, Module, Project, Rule
from repro.devtools.registry import HOT_FUNCTIONS

_CONST_RE = re.compile(r"^_?[A-Z][A-Z0-9_]*$")

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _qualified_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """``(qualname, def)`` for module-level functions and class
    methods (one level of class nesting, matching the registry's
    ``Class.method`` convention)."""
    for stmt in tree.body:
        if isinstance(stmt, _FuncDef):
            yield stmt.name, stmt  # type: ignore[misc]
        elif isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                if isinstance(inner, _FuncDef):
                    yield f"{stmt.name}.{inner.name}", inner  # type: ignore[misc]


def _local_names(func: ast.FunctionDef) -> Set[str]:
    """Every name bound inside ``func``: parameters plus all store
    targets (assignments, loop/with/except/import bindings, nested
    defs, comprehension targets)."""
    names: Set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, _FuncDef) and node is not func:
            names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names


class HotLoopHygiene(Rule):
    id = "HOT001"
    summary = (
        "registered hot functions must keep global loads, self.* loads, "
        "closures and try/except out of their loop bodies"
    )

    def check_module(self, module: Module, project: Project) -> Iterator[Finding]:
        hot = HOT_FUNCTIONS.get(module.relpath)
        if not hot:
            return
        # Only impl="python" entries are CPython loop bodies the
        # hygiene checks below apply to; impl="native" entries name C
        # symbols and are existence-checked in check_project instead.
        wanted = {f.name for f in hot if f.impl == "python"}
        if not wanted:
            return
        found: Set[str] = set()
        for qualname, func in _qualified_functions(module.tree):
            if qualname in wanted:
                found.add(qualname)
                yield from self._check_function(module, qualname, func)
        for missing in sorted(wanted - found):
            yield Finding(
                file=module.relpath,
                line=1,
                col=0,
                rule=self.id,
                message=(
                    f"registered hot function '{missing}' not found — "
                    f"update repro.devtools.registry.HOT_FUNCTIONS"
                ),
            )

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Existence check for ``impl="native"`` registry entries: the
        registered C symbol must be defined in the named source file.
        Files absent under the project root are skipped silently — a
        fixture project (tests lint a temp tree) carries no kernel, and
        that is not a finding against the fixture."""
        for relpath, functions in HOT_FUNCTIONS.items():
            native = [f for f in functions if f.impl == "native"]
            if not native:
                continue
            path = project.root / relpath
            if not path.is_file():
                continue
            try:
                source = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for function in native:
                if function.name not in source:
                    yield Finding(
                        file=relpath,
                        line=1,
                        col=0,
                        rule=self.id,
                        message=(
                            f"registered native hot function "
                            f"'{function.name}' not found in the C "
                            f"source — update "
                            f"repro.devtools.registry.HOT_FUNCTIONS"
                        ),
                    )

    def _check_function(
        self, module: Module, qualname: str, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        locals_ = _local_names(func)
        reported: Set[Tuple[int, int, str]] = set()

        def emit(node: ast.AST, what: str) -> Optional[Finding]:
            site = (
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                what,
            )
            if site in reported:
                return None
            reported.add(site)
            return Finding(
                file=module.relpath,
                line=site[0],
                col=site[1],
                rule=self.id,
                message=f"hot function '{qualname}': {what}",
            )

        def visit(node: ast.AST, in_loop: bool) -> Iterator[Finding]:
            if isinstance(node, _FuncDef) and node is not func:
                if in_loop:
                    finding = emit(
                        node,
                        f"closure '{node.name}' created inside a loop body",
                    )
                    if finding:
                        yield finding
                return  # a nested def's body runs on its own clock
            if isinstance(node, ast.Lambda):
                if in_loop:
                    finding = emit(node, "lambda created inside a loop body")
                    if finding:
                        yield finding
                return
            if in_loop and isinstance(node, ast.Try):
                finding = emit(node, "try/except inside a loop body")
                if finding:
                    yield finding
            if in_loop and isinstance(node, ast.Raise):
                # The cold abort path: skip the exception callee's name,
                # still check its arguments.
                exc = node.exc
                if isinstance(exc, ast.Call):
                    for arg in list(exc.args) + [
                        kw.value for kw in exc.keywords
                    ]:
                        yield from visit(arg, in_loop)
                if node.cause is not None:
                    yield from visit(node.cause, in_loop)
                return
            if in_loop and isinstance(node, ast.Name):
                if (
                    isinstance(node.ctx, ast.Load)
                    and node.id not in locals_
                    and not _CONST_RE.match(node.id)
                ):
                    finding = emit(
                        node, f"global-name load of '{node.id}' in a loop body"
                    )
                    if finding:
                        yield finding
                return
            if (
                in_loop
                and isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                finding = emit(
                    node, f"self attribute load '.{node.attr}' in a loop body"
                )
                if finding:
                    yield finding
                return
            entering_loop = isinstance(node, (ast.For, ast.While))
            for child in ast.iter_child_nodes(node):
                yield from visit(child, in_loop or entering_loop)

        yield from visit(func, False)
