"""ERR001/ERR002: error discipline on the wire/serving paths.

The wire contract promises that no input reachable over a socket can
surface a Python traceback — which only holds if every broad ``except``
in the serving paths either **re-raises** or **converts** the failure
into the typed error surface (:class:`~repro.api.protocol.WireError`
and its subclasses, or a typed ``ErrorResponse`` /
``StaleEpochResponse`` line).  A broad handler that silently swallows
does neither: it hides real bugs *and* erodes the no-traceback
guarantee's audit trail.

ERR001 flags ``except:``, ``except Exception:`` and
``except BaseException:`` handlers (bare or in a tuple) inside the
paths listed in
:data:`repro.devtools.registry.ERROR_DISCIPLINE_PREFIXES` whose body
neither raises nor references a typed-error name.  Narrow handlers
(``except OSError:``) are always fine — naming the failure you expect
is the discipline.

ERR002 polices the *accounting* half of the fail-open contract.  The
serving client's correctness stance is "degrade to local computation,
always" — which is only auditable if every fall-open decision is
counted (the ``degraded`` row of the protocol-1.6 remote stats).  So
inside :data:`repro.devtools.registry.FAIL_OPEN_PREFIXES` every
handler that catches a fail-open type (``ShardUnavailable``,
``ProtocolError``, ``SnapshotError``, ``FaultError``, ``WireError``,
or any broad except) must either re-raise, convert to the typed error
surface, or **increment a stats counter** — a ``_bump``-style call or
an augmented assignment.  Teardown handlers for narrow OS-level types
(``except OSError: pass`` around a ``close()``) are out of scope: they
release resources, they don't decide to degrade.
"""

import ast
from typing import Iterator

from repro.devtools.analyzer import Finding, Module, Project, Rule
from repro.devtools.registry import (
    ERROR_DISCIPLINE_PREFIXES,
    FAIL_OPEN_PREFIXES,
)

_BROAD = frozenset({"Exception", "BaseException"})

#: Names whose appearance in a handler body counts as conversion to the
#: typed error surface.
_TYPED_ERROR_NAMES = frozenset(
    {
        "ErrorResponse",
        "ProtocolError",
        "SnapshotError",
        "StaleEpochRejection",
        "StaleEpochResponse",
        "WireError",
    }
)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            return True
    return False


def _handler_disciplined(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Name) and node.id in _TYPED_ERROR_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _TYPED_ERROR_NAMES:
            return True
    return False


class TypedErrorDiscipline(Rule):
    id = "ERR001"
    summary = (
        "broad except handlers in wire/serving paths must re-raise or "
        "convert to the typed WireError surface"
    )

    def check_module(self, module: Module, project: Project) -> Iterator[Finding]:
        if not module.relpath.startswith(ERROR_DISCIPLINE_PREFIXES):
            return
        yield from self._walk(module, module.tree, "<module>")

    def _walk(
        self, module: Module, node: ast.AST, context: str
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_context = context
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_context = child.name
            elif isinstance(child, ast.ExceptHandler):
                if _is_broad(child) and not _handler_disciplined(child):
                    caught = (
                        ast.unparse(child.type)
                        if child.type is not None
                        else ""
                    )
                    yield Finding(
                        file=module.relpath,
                        line=child.lineno,
                        col=child.col_offset,
                        rule=self.id,
                        message=(
                            f"broad 'except {caught}'".rstrip()
                            + f" in {context} neither re-raises nor "
                            "produces a typed wire error"
                        ),
                    )
            yield from self._walk(module, child, child_context)


#: Exception names whose handlers embody a *fall-open decision*: the
#: operation degrades to the local path instead of propagating.  Broad
#: handlers count too (see :func:`_is_broad`).
_FAIL_OPEN_NAMES = frozenset(
    {
        "Exception",
        "BaseException",
        "ShardUnavailable",
        "ProtocolError",
        "SnapshotError",
        "WireError",
        "FaultError",
    }
)

#: Call-name shapes that count as incrementing a stats counter.
_COUNTER_PREFIXES = ("record", "count")


def _catches_fail_open(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        if isinstance(node, ast.Name) and node.id in _FAIL_OPEN_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _FAIL_OPEN_NAMES:
            return True
    return False


def _is_counter_call(node: ast.Call) -> bool:
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name is None:
        return False
    bare = name.lstrip("_")
    return "bump" in bare or bare.startswith(_COUNTER_PREFIXES)


def _handler_accounts(handler: ast.ExceptHandler) -> bool:
    """Does the handler *body* raise, convert to a typed wire error, or
    increment a counter?  (The body only — the caught type itself must
    not satisfy the rule it triggered.)"""
    for statement in handler.body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.AugAssign):
                return True
            if isinstance(node, ast.Call) and _is_counter_call(node):
                return True
            if isinstance(node, ast.Name) and node.id in _TYPED_ERROR_NAMES:
                return True
            if isinstance(node, ast.Attribute) and node.attr in _TYPED_ERROR_NAMES:
                return True
    return False


class FailOpenAccounting(Rule):
    id = "ERR002"
    summary = (
        "fail-open except sites in the serving client must account the "
        "degradation in a stats counter (or re-raise / convert to a "
        "typed wire error)"
    )

    def check_module(self, module: Module, project: Project) -> Iterator[Finding]:
        if not module.relpath.startswith(FAIL_OPEN_PREFIXES):
            return
        yield from self._walk(module, module.tree, "<module>")

    def _walk(
        self, module: Module, node: ast.AST, context: str
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_context = context
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_context = child.name
            elif isinstance(child, ast.ExceptHandler):
                if _catches_fail_open(child) and not _handler_accounts(child):
                    caught = (
                        ast.unparse(child.type)
                        if child.type is not None
                        else "<bare>"
                    )
                    yield Finding(
                        file=module.relpath,
                        line=child.lineno,
                        col=child.col_offset,
                        rule=self.id,
                        message=(
                            f"fail-open 'except {caught}' in {context} "
                            "neither counts the degradation nor "
                            "re-raises/converts it"
                        ),
                    )
            yield from self._walk(module, child, child_context)
