"""ERR001: typed-error discipline on the wire/serving paths.

The wire contract promises that no input reachable over a socket can
surface a Python traceback — which only holds if every broad ``except``
in the serving paths either **re-raises** or **converts** the failure
into the typed error surface (:class:`~repro.api.protocol.WireError`
and its subclasses, or a typed ``ErrorResponse`` /
``StaleEpochResponse`` line).  A broad handler that silently swallows
does neither: it hides real bugs *and* erodes the no-traceback
guarantee's audit trail.

ERR001 flags ``except:``, ``except Exception:`` and
``except BaseException:`` handlers (bare or in a tuple) inside the
paths listed in
:data:`repro.devtools.registry.ERROR_DISCIPLINE_PREFIXES` whose body
neither raises nor references a typed-error name.  Narrow handlers
(``except OSError:``) are always fine — naming the failure you expect
is the discipline.
"""

import ast
from typing import Iterator

from repro.devtools.analyzer import Finding, Module, Project, Rule
from repro.devtools.registry import ERROR_DISCIPLINE_PREFIXES

_BROAD = frozenset({"Exception", "BaseException"})

#: Names whose appearance in a handler body counts as conversion to the
#: typed error surface.
_TYPED_ERROR_NAMES = frozenset(
    {
        "ErrorResponse",
        "ProtocolError",
        "SnapshotError",
        "StaleEpochRejection",
        "StaleEpochResponse",
        "WireError",
    }
)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            return True
    return False


def _handler_disciplined(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Name) and node.id in _TYPED_ERROR_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _TYPED_ERROR_NAMES:
            return True
    return False


class TypedErrorDiscipline(Rule):
    id = "ERR001"
    summary = (
        "broad except handlers in wire/serving paths must re-raise or "
        "convert to the typed WireError surface"
    )

    def check_module(self, module: Module, project: Project) -> Iterator[Finding]:
        if not module.relpath.startswith(ERROR_DISCIPLINE_PREFIXES):
            return
        yield from self._walk(module, module.tree, "<module>")

    def _walk(
        self, module: Module, node: ast.AST, context: str
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_context = context
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_context = child.name
            elif isinstance(child, ast.ExceptHandler):
                if _is_broad(child) and not _handler_disciplined(child):
                    caught = (
                        ast.unparse(child.type)
                        if child.type is not None
                        else ""
                    )
                    yield Finding(
                        file=module.relpath,
                        line=child.lineno,
                        col=child.col_offset,
                        rule=self.id,
                        message=(
                            f"broad 'except {caught}'".rstrip()
                            + f" in {context} neither re-raises nor "
                            "produces a typed wire error"
                        ),
                    )
            yield from self._walk(module, child, child_context)
