"""The registries behind the codebase-specific lint rules.

``repro-lint`` rules are deliberately *not* generic: each one encodes
an invariant this repo already relies on, and the registries below are
the single place where "which code is under that invariant" lives.

* :data:`HOT_FUNCTIONS` — the traversal inner loops kept at the
  CPython dispatch floor.  **HOT001** checks everything inside their
  loop bodies; the perf-smoke CI job cross-checks the registry against
  what ``repro-perf`` actually measures (see
  :func:`repro.perf.harness.measured_hot_functions`), so a renamed or
  newly-hot function cannot silently escape the rule.  To register a
  new hot function, add ``"src-relative/path.py": ("QualName",)`` here
  *and* list it in the harness's measured map if ``repro-perf`` times
  it.
* :data:`ASYNC_ROOTS` — the modules whose ``async def`` bodies must
  never block the event loop (**ASYNC001** follows their repo-internal
  imports transitively).
* :data:`ERROR_DISCIPLINE_PREFIXES` — the wire/serving paths where a
  broad ``except`` must re-raise or produce a typed
  :class:`~repro.api.protocol.WireError` / ``ErrorResponse``
  (**ERR001**).

Guarded fields (**LOCK001**) are *not* registered here: they are
declared in place with a ``# guarded-by: <lock_attr>`` comment on the
``self.<field> = ...`` line, which keeps the declaration next to the
lock it names.
"""

from typing import Dict, Tuple

#: Hot traversal functions, keyed by path relative to the repo root.
#: Qualified names are ``Class.method`` for methods, bare names for
#: module-level functions.
HOT_FUNCTIONS: Dict[str, Tuple[str, ...]] = {
    "src/repro/analysis/ppta.py": ("_run_ppta_fast", "_run_ppta_array"),
    "src/repro/analysis/dynsum.py": ("DynSum._explore", "DynSum._explore_array"),
}

#: Modules whose async bodies (plus those of every repo-internal module
#: they import, transitively) must stay non-blocking.
ASYNC_ROOTS: Tuple[str, ...] = ("src/repro/cacheserver/aserver.py",)

#: Path prefixes that count as wire/serving code for ERR001.
ERROR_DISCIPLINE_PREFIXES: Tuple[str, ...] = (
    "src/repro/api/",
    "src/repro/cacheserver/",
)

#: Where WIRE001 finds the protocol schema and its consumers.
WIRE_PROTOCOL_SUFFIX = "api/protocol.py"
WIRE_SERVICE_SUFFIX = "api/service.py"


def hot_function_ids() -> Tuple[str, ...]:
    """Every registered hot function as ``"path::QualName"``, sorted —
    the exchange format the perf harness's measured map is compared
    against in CI and in ``tests/test_lint_rules.py``."""
    ids = []
    for path, names in HOT_FUNCTIONS.items():
        for name in names:
            ids.append(f"{path}::{name}")
    return tuple(sorted(ids))
