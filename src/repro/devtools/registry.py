"""The registries behind the codebase-specific lint rules.

``repro-lint`` rules are deliberately *not* generic: each one encodes
an invariant this repo already relies on, and the registries below are
the single place where "which code is under that invariant" lives.

* :data:`HOT_FUNCTIONS` — the traversal inner loops kept at the
  CPython dispatch floor.  **HOT001** checks everything inside their
  loop bodies; the perf-smoke CI job cross-checks the registry against
  what ``repro-perf`` actually measures (see
  :func:`repro.perf.harness.measured_hot_functions`), so a renamed or
  newly-hot function cannot silently escape the rule.  To register a
  new hot function, add ``"src-relative/path.py":
  (HotFunction("QualName"),)`` here *and* list it in the harness's
  measured map if ``repro-perf`` times it.  Entries with
  ``impl="native"`` name C kernel drivers (``kernel.c``): they are
  hot — the perf cross-check still covers them — but HOT001's
  Python-bytecode hygiene checks do not apply; the rule instead
  verifies the registered symbol exists in the C source.
* :data:`ASYNC_ROOTS` — the modules whose ``async def`` bodies must
  never block the event loop (**ASYNC001** follows their repo-internal
  imports transitively).
* :data:`ERROR_DISCIPLINE_PREFIXES` — the wire/serving paths where a
  broad ``except`` must re-raise or produce a typed
  :class:`~repro.api.protocol.WireError` / ``ErrorResponse``
  (**ERR001**).

Guarded fields (**LOCK001**) are *not* registered here: they are
declared in place with a ``# guarded-by: <lock_attr>`` comment on the
``self.<field> = ...`` line, which keeps the declaration next to the
lock it names.
"""

from typing import Dict, NamedTuple, Tuple


class HotFunction(NamedTuple):
    """One registered hot function.

    ``name`` is the qualified name (``Class.method`` for methods, bare
    names for module-level functions, C symbol names for native
    entries); ``impl`` is ``"python"`` for CPython loop bodies HOT001
    checks hygienically, ``"native"`` for C kernel drivers it only
    existence-checks.
    """

    name: str
    impl: str = "python"


#: Hot traversal functions, keyed by path relative to the repo root.
HOT_FUNCTIONS: Dict[str, Tuple[HotFunction, ...]] = {
    "src/repro/analysis/ppta.py": (
        HotFunction("_run_ppta_fast"),
        HotFunction("_run_ppta_array"),
    ),
    "src/repro/analysis/dynsum.py": (
        HotFunction("DynSum._explore"),
        HotFunction("DynSum._explore_array"),
    ),
    "src/repro/native/kernel.c": (
        HotFunction("rk_ppta", impl="native"),
        HotFunction("rk_dynsum", impl="native"),
    ),
}

#: Modules whose async bodies (plus those of every repo-internal module
#: they import, transitively) must stay non-blocking.
ASYNC_ROOTS: Tuple[str, ...] = ("src/repro/cacheserver/aserver.py",)

#: Path prefixes that count as wire/serving code for ERR001.
ERROR_DISCIPLINE_PREFIXES: Tuple[str, ...] = (
    "src/repro/api/",
    "src/repro/cacheserver/",
)

#: Path prefixes where ERR002 requires every fail-open except site to
#: account the degradation in a stats counter (the serving client and
#: its service-side siblings — the layer whose correctness stance is
#: "degrade to local computation, observably").
FAIL_OPEN_PREFIXES: Tuple[str, ...] = ("src/repro/cacheserver/",)

#: Where WIRE001 finds the protocol schema and its consumers.
WIRE_PROTOCOL_SUFFIX = "api/protocol.py"
WIRE_SERVICE_SUFFIX = "api/service.py"


def hot_function_ids() -> Tuple[str, ...]:
    """Every registered hot function as ``"path::QualName"``, sorted —
    the exchange format the perf harness's measured map is compared
    against in CI and in ``tests/test_lint_rules.py``."""
    ids = []
    for path, functions in HOT_FUNCTIONS.items():
        for function in functions:
            ids.append(f"{path}::{function.name}")
    return tuple(sorted(ids))
