"""The ``repro-lint`` console entry point.

Exit codes: ``0`` clean (every finding suppressed or baselined), ``1``
unsuppressed findings, ``2`` usage or baseline-config error.  See the
README's "Static analysis & code health" section for the rule
catalogue and the suppression/baseline workflow.
"""

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.devtools.analyzer import (
    BaselineError,
    Finding,
    Rule,
    collect_findings,
    load_baseline,
    load_project,
    split_findings,
    write_baseline,
)
from repro.devtools.rules_async import NoBlockingInAsync
from repro.devtools.rules_err import FailOpenAccounting, TypedErrorDiscipline
from repro.devtools.rules_hot import HotLoopHygiene
from repro.devtools.rules_lock import LockDiscipline, ShardLockNesting
from repro.devtools.rules_wire import ProtocolDrift

#: Every shipped rule, in catalogue order.
ALL_RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        LockDiscipline(),
        ShardLockNesting(),
        HotLoopHygiene(),
        NoBlockingInAsync(),
        ProtocolDrift(),
        TypedErrorDiscipline(),
        FailOpenAccounting(),
    )
}


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Self-hosted static analysis for this repo's concurrency, "
            "hot-path, async and wire-protocol invariants."
        ),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root (baseline + README resolve against it; "
        "default: cwd)",
    )
    parser.add_argument(
        "--paths",
        nargs="+",
        default=None,
        help="files/directories to lint (default: <root>/src)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: <root>/lint-baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from current findings (existing "
        "justifications are kept; new entries get a TODO the loader "
        "refuses, forcing review)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)

    if args.list_rules:
        for rule_id, rule in sorted(ALL_RULES.items()):
            print(f"{rule_id}  {rule.summary}")
        return 0

    if args.rule:
        unknown = [rule_id for rule_id in args.rule if rule_id not in ALL_RULES]
        if unknown:
            print(
                f"repro-lint: unknown rule(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(ALL_RULES))})",
                file=sys.stderr,
            )
            return 2
        rules: List[Rule] = [ALL_RULES[rule_id] for rule_id in args.rule]
    else:
        rules = list(ALL_RULES.values())

    root = Path(args.root)
    if not root.is_dir():
        print(f"repro-lint: --root {args.root!r} is not a directory",
              file=sys.stderr)
        return 2
    paths = (
        [Path(p) for p in args.paths]
        if args.paths
        else [root / "src"]
    )
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(
            f"repro-lint: no such path(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline else root / "lint-baseline.json"
    )

    project = load_project(root, paths)
    findings = collect_findings(project, rules)

    if args.write_baseline:
        try:
            existing = load_baseline(baseline_path)
        except BaselineError:
            existing = {}
        write_baseline(baseline_path, findings, existing)
        print(
            f"repro-lint: wrote {len(findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    try:
        baseline = load_baseline(baseline_path)
    except BaselineError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    fresh, suppressed, baselined = split_findings(project, findings, baseline)

    if args.json:
        report = {
            "root": str(project.root),
            "rules": sorted(rule.id for rule in rules),
            "counts": {
                "fresh": len(fresh),
                "suppressed": len(suppressed),
                "baselined": len(baselined),
            },
            "findings": [finding.to_json() for finding in fresh],
            "baselined": [finding.to_json() for finding in baselined],
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in fresh:
            print(finding.format())
        summary = (
            f"repro-lint: {len(fresh)} finding(s), "
            f"{len(suppressed)} suppressed, {len(baselined)} baselined"
        )
        print(summary, file=sys.stderr)

    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
