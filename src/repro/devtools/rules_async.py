"""ASYNC001: no blocking calls on the event loop.

The asyncio serving tier (:mod:`repro.cacheserver.aserver`) runs every
connection on **one** event loop — a single synchronous call in an
``async def`` body stalls every client at once.  ASYNC001 starts from
the registered async roots (:data:`repro.devtools.registry.ASYNC_ROOTS`),
follows their repo-internal imports transitively, and flags inside any
``async def`` body:

* ``time.sleep(...)`` (use ``asyncio.sleep``),
* synchronous :mod:`socket` module calls and socket-object ops
  (``recv`` / ``send`` / ``sendall`` / ``accept`` / ``connect`` /
  ``makefile``),
* blocking file I/O (``open(...)``),
* ``ShardLink.request`` / ``request_many`` (a full network round trip
  under a thread lock), and
* direct synchronous dispatcher calls (``handle_line`` /
  ``_handle_line``) — dispatch must be handed to an executor
  (``loop.run_in_executor``), never run inline on the loop.

Nested *synchronous* ``def``\\ s inside an async function are skipped:
they execute on whatever thread calls them, which is exactly how the
executor hand-off works.
"""

import ast
from typing import Iterator, List, Optional, Set

from repro.devtools.analyzer import Finding, Module, Project, Rule
from repro.devtools.registry import ASYNC_ROOTS

_SOCKET_METHODS = frozenset(
    {"accept", "connect", "makefile", "recv", "recvfrom", "send", "sendall"}
)
_LINK_METHODS = frozenset({"request", "request_many"})
_DISPATCH_METHODS = frozenset({"handle_line", "_handle_line"})


def _internal_import_relpaths(module: Module) -> Set[str]:
    """Repo-relative paths of the ``repro.*`` modules this module
    imports (module files and package ``__init__``\\ s)."""
    targets: Set[str] = set()
    for node in ast.walk(module.tree):
        names: List[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            names = [node.module]
            names.extend(f"{node.module}.{alias.name}" for alias in node.names)
        for name in names:
            if name == "repro" or name.startswith("repro."):
                base = "src/" + name.replace(".", "/")
                targets.add(base + ".py")
                targets.add(base + "/__init__.py")
    return targets


class NoBlockingInAsync(Rule):
    id = "ASYNC001"
    summary = (
        "async def bodies in the serving tier must not make blocking "
        "calls (time.sleep, sync socket ops, file I/O, ShardLink "
        "round trips, inline dispatch)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        scope = self._closure(project)
        for module in project.modules:
            if module.relpath not in scope:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_async(module, node)

    @staticmethod
    def _closure(project: Project) -> Set[str]:
        """The async roots plus every repo-internal module reachable
        from them through imports."""
        scope: Set[str] = set()
        pending = [
            root for root in ASYNC_ROOTS if project.by_relpath(root) is not None
        ]
        while pending:
            relpath = pending.pop()
            if relpath in scope:
                continue
            scope.add(relpath)
            module = project.by_relpath(relpath)
            if module is None:
                continue
            for target in _internal_import_relpaths(module):
                if target not in scope and project.by_relpath(target):
                    pending.append(target)
        return scope

    def _check_async(
        self, module: Module, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in self._async_body_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            verdict = self._blocking_call(node)
            if verdict is not None:
                yield Finding(
                    file=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        f"async def {func.name}: blocking call "
                        f"'{ast.unparse(node.func)}(...)' on the event "
                        f"loop ({verdict})"
                    ),
                )

    @staticmethod
    def _async_body_nodes(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Every node in the async body, excluding nested synchronous
        ``def``\\ s (those run off-loop via the executor hand-off)."""

        def walk(node: ast.AST) -> Iterator[ast.AST]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.Lambda)):
                    continue
                yield child
                yield from walk(child)

        yield from walk(func)

    @staticmethod
    def _blocking_call(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "blocking file I/O; use an executor"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        if isinstance(func.value, ast.Name):
            base = func.value.id
            if base == "time" and func.attr == "sleep":
                return "use 'await asyncio.sleep(...)'"
            if base == "socket":
                return "synchronous socket module call"
        if func.attr in _SOCKET_METHODS:
            return "synchronous socket op"
        if func.attr in _LINK_METHODS:
            return "ShardLink round trip blocks the loop"
        if func.attr in _DISPATCH_METHODS:
            return "dispatch inline on the loop; use run_in_executor"
        return None
