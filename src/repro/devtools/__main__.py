"""``python -m repro.devtools`` == the ``repro-lint`` console script."""

import sys

from repro.devtools.cli import main

if __name__ == "__main__":
    sys.exit(main())
