"""Plain-text renderers for every table and figure of the paper.

Each formatter consumes the runner's result objects and prints rows in
the paper's layout, so EXPERIMENTS.md can be regenerated mechanically and
paper-vs-measured comparisons stay side by side.
"""


def _render(headers, rows):
    widths = [len(h) for h in headers]
    str_rows = []
    for row in rows:
        cells = [str(cell) for cell in row]
        str_rows.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for cells in str_rows:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(cells))))
    return "\n".join(lines)


def format_capability_table(analyses):
    """Table 2: strengths and weaknesses of the four analyses."""
    headers = ["Algorithm", "Full Precision", "Memorization", "Reuse", "On-Demandness"]
    rows = []
    for analysis in analyses:
        caps = analysis.capabilities()
        rows.append(
            (
                caps["analysis"],
                "Yes" if caps["full_precision"] else "No",
                caps["memoization"],
                caps["reuse"],
                caps["on_demand"],
            )
        )
    return _render(headers, rows)


def format_table3(stats_rows, query_counts):
    """Table 3: benchmark statistics.

    ``stats_rows`` — list of :class:`~repro.pag.stats.PagStatistics`;
    ``query_counts`` — mapping benchmark name -> {client name: count}.
    """
    headers = [
        "Benchmark",
        "#Methods",
        "O",
        "V",
        "G",
        "new",
        "assign",
        "load",
        "store",
        "entry",
        "exit",
        "assignglobal",
        "Locality",
        "SafeCast",
        "NullDeref",
        "FactoryM",
    ]
    rows = []
    for stats in stats_rows:
        counts = query_counts.get(stats.name, {})
        rows.append(
            stats.as_row()
            + (
                counts.get("SafeCast", 0),
                counts.get("NullDeref", 0),
                counts.get("FactoryM", 0),
            )
        )
    return _render(headers, rows)


def format_table4(runs, benchmarks, clients, analyses, use_steps=False):
    """Table 4: analysis cost per (client, benchmark, analysis).

    ``runs`` — iterable of :class:`~repro.bench.runner.ClientRun`.
    Values are seconds (3 decimals) or raw step counts.
    """
    by_key = {(r.client, r.analysis, r.benchmark): r for r in runs}
    blocks = []
    for client in clients:
        headers = [client] + list(benchmarks)
        rows = []
        for analysis in analyses:
            cells = [analysis]
            for benchmark in benchmarks:
                run = by_key.get((client, analysis, benchmark))
                if run is None:
                    cells.append("-")
                elif use_steps:
                    cells.append(str(run.steps))
                else:
                    cells.append(f"{run.time_sec:.3f}")
            rows.append(cells)
        blocks.append(_render(headers, rows))
    return "\n\n".join(blocks)


def format_speedup_summary(runs, baseline, subject, clients, benchmarks, use_steps=True):
    """Average per-client speedups of ``subject`` over ``baseline`` —
    the paper's headline 1.95x / 2.28x / 1.37x numbers."""
    by_key = {(r.client, r.analysis, r.benchmark): r for r in runs}
    lines = []
    for client in clients:
        ratios = []
        for benchmark in benchmarks:
            base = by_key.get((client, baseline, benchmark))
            subj = by_key.get((client, subject, benchmark))
            if base is None or subj is None:
                continue
            denom = subj.steps if use_steps else subj.time_sec
            numer = base.steps if use_steps else base.time_sec
            if denom:
                ratios.append(numer / denom)
        if ratios:
            geomean = 1.0
            for ratio in ratios:
                geomean *= ratio
            geomean **= 1.0 / len(ratios)
            lines.append(
                f"{client}: {subject} vs {baseline} "
                f"avg {sum(ratios) / len(ratios):.2f}x (geomean {geomean:.2f}x) "
                f"over {len(ratios)} benchmark(s)"
            )
    return "\n".join(lines)


def format_figure4(series_list, n_batches=10):
    """Figure 4: per-batch DYNSUM time normalized to REFINEPTS.

    ``series_list`` — list of ``(dynsum_series, refine_series)`` pairs.
    """
    headers = ["benchmark/client"] + [f"b{i + 1}" for i in range(n_batches)]
    rows = []
    for dynsum_series, refine_series in series_list:
        label = f"{dynsum_series.benchmark}/{dynsum_series.client}"
        cells = [label]
        for dyn, ref in zip(dynsum_series.batch_steps, refine_series.batch_steps):
            cells.append(f"{dyn / ref:.2f}" if ref else "-")
        rows.append(cells)
    return _render(headers, rows)


def format_figure5(series_list, n_batches=10):
    """Figure 5: cumulative DYNSUM summaries as % of STASUM's.

    ``series_list`` — list of ``(dynsum_series, stasum_total)`` pairs.
    """
    headers = ["benchmark/client"] + [f"b{i + 1}" for i in range(n_batches)]
    rows = []
    for series, stasum_total in series_list:
        label = f"{series.benchmark}/{series.client}"
        cells = [label]
        for count in series.summary_counts:
            if stasum_total:
                cells.append(f"{100.0 * count / stasum_total:.1f}%")
            else:
                cells.append("-")
        rows.append(cells)
    return _render(headers, rows)
