"""Command-line experiment harness: ``python -m repro.bench``.

Regenerates the paper's tables and figures without pytest:

.. code-block:: console

   python -m repro.bench --artifact table3
   python -m repro.bench --artifact table4 --benchmarks soot-c bloat
   python -m repro.bench --artifact all --scale 0.5

Artifacts: ``table2``, ``table3``, ``table4``, ``figure4``, ``figure5``
or ``all``.  ``--scale`` shrinks the generated programs proportionally
(0.5 ≈ quarter-size experiments for smoke runs).
"""

import argparse
import sys

from repro import DynSum, NoRefine, RefinePts, StaSum
from repro.bench.runner import (
    bench_analysis_config,
    run_batches,
    run_client,
    run_summary_series,
)
from repro.bench.suite import BENCHMARK_NAMES, load_benchmark
from repro.bench.tables import (
    format_capability_table,
    format_figure4,
    format_figure5,
    format_speedup_summary,
    format_table3,
    format_table4,
)
from repro.clients import ALL_CLIENTS

FIGURE_BENCHMARKS = ("soot-c", "bloat", "jython")
TABLE4_ANALYSES = (NoRefine, RefinePts, DynSum)


def _load(names, scale):
    instances = {}
    for name in names:
        print(f"  generating {name} ...", file=sys.stderr)
        instances[name] = load_benchmark(name, scale=scale)
    return instances


def cmd_table2(instances):
    pag = instances[next(iter(instances))].pag
    analyses = [
        cls(pag, bench_analysis_config()) for cls in (NoRefine, RefinePts, DynSum, StaSum)
    ]
    print("\nTable 2 — capability matrix")
    print(format_capability_table(analyses))


def cmd_table3(instances):
    stats_rows = [instances[name].stats for name in instances]
    query_counts = {
        name: {
            cls.name: len(cls(instances[name].pag).queries()) for cls in ALL_CLIENTS
        }
        for name in instances
    }
    print("\nTable 3 — benchmark statistics")
    print(format_table3(stats_rows, query_counts))


def cmd_table4(instances):
    runs = []
    names = list(instances)
    for name in names:
        for client_cls in ALL_CLIENTS:
            for analysis_cls in TABLE4_ANALYSES:
                analysis = analysis_cls(instances[name].pag, bench_analysis_config())
                runs.append(run_client(instances[name], client_cls, analysis))
    client_names = [cls.name for cls in ALL_CLIENTS]
    analysis_names = [cls.name for cls in TABLE4_ANALYSES]
    print("\nTable 4 — analysis steps (deterministic)")
    print(format_table4(runs, names, client_names, analysis_names, use_steps=True))
    print("\nTable 4 — wall-clock seconds")
    print(format_table4(runs, names, client_names, analysis_names, use_steps=False))
    print("\nSpeedups (paper headline: 1.95x / 2.28x / 1.37x vs REFINEPTS)")
    print(format_speedup_summary(runs, "REFINEPTS", "DYNSUM", client_names, names))
    print(format_speedup_summary(runs, "NOREFINE", "DYNSUM", client_names, names))


def cmd_figure4(instances):
    series = []
    for name in instances:
        for client_cls in ALL_CLIENTS:
            dynsum = DynSum(instances[name].pag, bench_analysis_config())
            refinepts = RefinePts(instances[name].pag, bench_analysis_config())
            dyn = run_batches(instances[name], client_cls, dynsum)
            ref = run_batches(instances[name], client_cls, refinepts)
            series.append((dyn, ref))
    print("\nFigure 4 — DYNSUM / REFINEPTS per-batch step ratio")
    print(format_figure4(series))


def cmd_figure5(instances):
    series = []
    for name in instances:
        stasum = StaSum(instances[name].pag, bench_analysis_config())
        for client_cls in ALL_CLIENTS:
            dynsum = DynSum(instances[name].pag, bench_analysis_config())
            series.append(
                run_summary_series(instances[name], client_cls, dynsum, stasum)
            )
    print("\nFigure 5 — cumulative DYNSUM summaries (% of STASUM)")
    print(format_figure5(series))


ARTIFACTS = {
    "table2": (cmd_table2, "first benchmark only"),
    "table3": (cmd_table3, "all requested benchmarks"),
    "table4": (cmd_table4, "all requested benchmarks"),
    "figure4": (cmd_figure4, "figure benchmarks"),
    "figure5": (cmd_figure5, "figure benchmarks"),
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--artifact",
        choices=sorted(ARTIFACTS) + ["all"],
        default="all",
        help="which artifact to regenerate (default: all)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        metavar="NAME",
        choices=BENCHMARK_NAMES,
        help="restrict to these benchmarks (default: artifact-appropriate set)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="program-size multiplier (default 1.0)",
    )
    parser.add_argument(
        "--dump-programs",
        metavar="DIR",
        help="additionally write each generated benchmark as PIR source "
        "(<name>.pir) into DIR",
    )
    args = parser.parse_args(argv)

    wanted = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    full_needed = any(a in ("table3", "table4") for a in wanted)
    if args.benchmarks:
        names = tuple(args.benchmarks)
    elif full_needed:
        names = BENCHMARK_NAMES
    else:
        names = FIGURE_BENCHMARKS
    instances = _load(names, args.scale)

    if args.dump_programs:
        import pathlib

        from repro.ir.pretty import pretty_print

        out_dir = pathlib.Path(args.dump_programs)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name, instance in instances.items():
            path = out_dir / f"{name}.pir"
            path.write_text(pretty_print(instance.program))
            print(f"  wrote {path}", file=sys.stderr)

    for artifact in wanted:
        command, _scope = ARTIFACTS[artifact]
        if artifact in ("figure4", "figure5") and not args.benchmarks:
            command({n: instances[n] for n in names if n in FIGURE_BENCHMARKS} or instances)
        else:
            command(instances)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
