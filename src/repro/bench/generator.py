"""Deterministic synthetic PIR program generator.

The generator replaces the paper's Java benchmarks.  It emits programs
with the structural properties the evaluation depends on:

* a **library layer** — ``Box``/``Vec`` containers and data classes with a
  small inheritance hierarchy — whose methods are invoked from many
  distinct call sites (this is what DYNSUM's context-independent
  summaries exploit: Table 3's observation that most PAG edges are local
  and most paths revisit library code);
* a **domain layer** of generated classes with fields, getters/setters,
  worker methods mixing local pointer statements with library round
  trips, peer calls, static-registry traffic, casts and null flows;
* **factory methods**, some returning fresh objects and some (the
  seeded "buggy" fraction) leaking a static-cached instance — giving the
  FactoryM client both verdict polarities;
* a **driver** (``Main.main``) that instantiates domain classes, wires
  heterogeneous payloads through shared containers (the Figure 2 pattern
  at scale — only a context-sensitive analysis keeps the payloads apart)
  and performs downcasts, some deliberately unsafe.

Everything is driven by one :class:`GeneratorConfig` and a seed; the same
config always yields the identical program, statement for statement.
"""

import random
from dataclasses import dataclass, field, replace

from repro.ir.builder import ProgramBuilder


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs of the synthetic program generator.

    Sizes are approximate drivers, not exact node counts: the PAG size
    also depends on how many temporaries each sampled statement pattern
    expands into.
    """

    seed: int = 0
    #: Number of generated domain classes.
    domain_classes: int = 12
    #: Number of leaf data classes (payloads; also cast targets).
    data_classes: int = 6
    #: Number of distinct Box container variants in the library.
    box_variants: int = 3
    #: Instance fields per domain class.
    fields_per_class: int = 3
    #: Worker methods per domain class.
    workers_per_class: int = 3
    #: Statement-pattern draws per worker body.
    stmts_per_worker: int = 8
    #: Fraction of workers that include a ``x = null`` flow.
    null_density: float = 0.25
    #: Fraction of workers performing a downcast.
    cast_density: float = 0.5
    #: Fraction of domain classes with a factory method.
    factory_fraction: float = 0.7
    #: Fraction of factories that (incorrectly) cache via a static.
    buggy_factory_fraction: float = 0.25
    #: Instances created and exercised by Main per domain class.
    driver_rounds: int = 2
    #: Number of delegation layers in the domain (Main calls layer 0,
    #: layer 0 delegates to layer 1, ...).  Deeper layering means longer
    #: call chains, more calling contexts per library method, and more
    #: opportunity for DYNSUM's cross-context summary reuse.
    layers: int = 3
    #: Depth of the data-class inheritance chains.
    hierarchy_depth: int = 2
    #: Number of static registry slots.
    registry_slots: int = 4
    #: Multiplier on the weight of library-call statement patterns
    #: (box/vec/registry).  Raising it lowers the PAG's locality, since
    #: call patterns mint entry/exit edges — Table 3's 80% vs 90% spread.
    library_call_bias: float = 1.0
    #: Adversarial stress shapes (0 = off).  All three are emitted
    #: rng-free and *after* the seeded program, so turning one on leaves
    #: every other statement of the same seed byte-identical — the perf
    #: harness relies on that to isolate each shape's traversal cost.
    #: ``recursion_depth``: length of a ``Rec0 → … → RecN → Rec0`` call
    #: cycle; every site in it is collapsed as recursive (Section 5.1).
    recursion_depth: int = 0
    #: Receiver-class fan-out of one shared dispatch site: ``degree``
    #: classes all flow into a single ``r.hit(p)`` call.
    megamorphic_degree: int = 0
    #: Length of a linked-list access path loaded back hop by hop —
    #: drives the PPTA's field stack to this depth.
    field_chain_depth: int = 0

    def scaled(self, factor):
        """A proportionally larger/smaller config (same densities)."""
        return replace(
            self,
            domain_classes=max(2, round(self.domain_classes * factor)),
            data_classes=max(2, round(self.data_classes * factor)),
            workers_per_class=max(1, round(self.workers_per_class * factor)),
            driver_rounds=max(1, round(self.driver_rounds * factor)),
        )


def generate_program(config):
    """Generate a finalized, validated PIR :class:`Program`."""
    return _Generator(config).generate()


class _Generator:
    def __init__(self, config):
        self.config = config
        self.rng = random.Random(config.seed)
        self.data_class_names = []
        self.domain_specs = []
        self.factory_methods = []  # (class_name, method_name, buggy)
        self.tag_field_of = {}  # data class -> its (inherited) tag field

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def generate(self):
        builder = ProgramBuilder(entry="Main.main")
        self._emit_library(builder)
        self._plan_domain()
        for spec in self.domain_specs:
            self._emit_domain_class(builder, spec)
        main = self._emit_main(builder)
        self._emit_stress(builder, main)
        return builder.build()

    # ------------------------------------------------------------------
    # library layer
    # ------------------------------------------------------------------
    def _emit_library(self, builder):
        config = self.config
        builder.cls("Object")

        # Leaf data classes with small inheritance chains.  Field names
        # are class-qualified (as Java fields are): each root data class
        # gets its own tag field, inherited by its subclass chain.
        for index in range(config.data_classes):
            parent = "Object"
            name = f"Data{index}"
            tag_field = f"tag{index}"
            builder.cls(name, superclass=parent, fields=[tag_field])
            self.data_class_names.append(name)
            self.tag_field_of[name] = tag_field
            chain_parent = name
            for depth in range(1, config.hierarchy_depth):
                sub = f"Data{index}_{depth}"
                builder.cls(sub, superclass=chain_parent, fields=[])
                self.data_class_names.append(sub)
                self.tag_field_of[sub] = tag_field
                chain_parent = sub

        # Box variants: one-slot containers with get/set/move.  Each
        # variant has its own slot field — distinct classes never share a
        # field in Java, and field-based match edges rely on that.
        for index in range(config.box_variants):
            val = f"val{index}"
            box = builder.cls(f"Box{index}", superclass="Object", fields=[val])
            box.method("get").load("r", "this", val).ret("r")
            box.method("set", params=["x"]).store("this", val, "x")
            (
                box.method("move", params=["other"])
                .vcall("other", "get", target="t")
                .vcall("this", "set", args=["t"])
            )

        # The paper's Vector: a backing array object with one collapsed slot.
        builder.cls("Arr", superclass="Object", fields=["slot"])
        vec = builder.cls("Vec", superclass="Object", fields=["elems"])
        vec.method("init").alloc("t", "Arr").store("this", "elems", "t")
        vec.method("add", params=["p"]).load("t", "this", "elems").store(
            "t", "slot", "p"
        )
        vec.method("get").load("t", "this", "elems").load("r", "t", "slot").ret("r")

        # Static registry: the program's globals.
        registry = builder.cls("Registry")
        for slot in range(self.config.registry_slots):
            registry.static_field(f"slot{slot}")

    # ------------------------------------------------------------------
    # domain layer
    # ------------------------------------------------------------------
    def _plan_domain(self):
        config = self.config
        rng = self.rng
        n_layers = max(1, config.layers)
        for index in range(config.domain_classes):
            name = f"Comp{index}"
            # Class-qualified field names, as in Java.
            fields = [f"c{index}f{k}" for k in range(config.fields_per_class)]
            has_factory = rng.random() < config.factory_fraction
            buggy = has_factory and rng.random() < config.buggy_factory_fraction
            self.domain_specs.append(
                {
                    "name": name,
                    "dep_field": f"dep{index}",
                    #: delegation layer (0 = called by Main, deeper layers
                    #: are reached only through shallower ones).
                    "layer": index * n_layers // max(1, config.domain_classes),
                    "fields": fields,
                    #: nominal content class per field (what setup stores).
                    "field_classes": {
                        fld: rng.choice(self.data_class_names) for fld in fields
                    },
                    "workers": config.workers_per_class,
                    "factory": has_factory,
                    "buggy_factory": buggy,
                    #: class name returned by each worker (None = param
                    #: pass-through); filled in while emitting workers.
                    "worker_returns": [],
                    "dep": None,
                }
            )
        # Wire each class to one dependency in the next layer down.
        for spec in self.domain_specs:
            deeper = [s for s in self.domain_specs if s["layer"] == spec["layer"] + 1]
            if deeper:
                spec["dep"] = rng.choice(deeper)

    def _emit_domain_class(self, builder, spec):
        rng = self.rng
        name = spec["name"]
        fields = list(spec["fields"])
        if spec["dep"] is not None:
            fields.append(spec["dep_field"])
        cls = builder.cls(name, superclass="Object", fields=fields)

        # setup(): populate every field with a fresh payload of the
        # field's nominal class — gives the getter chains something to
        # return and makes field-load cast targets realistic — and build
        # the dependency chain (setup recurses one layer down).
        setup = cls.method("setup")
        for fld in spec["fields"]:
            var = f"init_{fld}"
            setup.alloc(var, spec["field_classes"][fld])
            setup.store("this", fld, var)
        if spec["dep"] is not None:
            setup.alloc("d", spec["dep"]["name"])
            setup.vcall("d", "setup")
            setup.store("this", spec["dep_field"], "d")

        # Getters / setters.
        for fld in spec["fields"]:
            cls.method(f"get_{fld}").load("r", "this", fld).ret("r")
            cls.method(f"set_{fld}", params=["x"]).store("this", fld, "x")

        # Worker methods.
        for windex in range(spec["workers"]):
            self._emit_worker(cls, spec, windex)

        # Factory.
        if spec["factory"]:
            self._emit_factory(cls, spec)

    def _emit_worker(self, cls, spec, windex):
        """One worker: a param, a seeded mix of statement patterns, and a
        return value.

        Every library-call pattern is wrapped in local glue statements
        (copies into temporaries before and after the call), which keeps
        the PAG's locality in the paper's 80–90% band: the bulk of each
        method is ``new``/``assign``/``load``/``store`` edges that the
        PPTA can fold into a single reusable summary.
        """
        rng = self.rng
        config = self.config
        method = cls.method(f"work{windex}", params=["p"])
        pool = ["p"]
        #: locally allocated vars and their classes — safe cast sources.
        local_allocs = {}
        #: vars whose value arrived through a field or a call — the
        #: interesting (interprocedural) cast sources, tagged with the
        #: field's nominal class when one is known.
        flowed_vars = {}
        fresh = _Counter()

        def define(var):
            pool.append(var)
            return var

        def pick():
            return rng.choice(pool)

        def alloc_local(class_name=None):
            class_name = class_name or rng.choice(self.data_class_names)
            var = fresh.next("a")
            method.alloc(var, class_name)
            local_allocs[var] = class_name
            return define(var)

        def glue(source, length=2):
            """A short local copy chain ending in a fresh temp.

            The chains are what give generated methods their paper-like
            locality: most statements are local ``assign`` edges that the
            PPTA folds into one summary, so re-traversing them per
            calling context (as NOREFINE must) is pure waste.
            """
            var = source
            for _ in range(length):
                nxt = fresh.next("c")
                method.copy(nxt, var)
                var = define(nxt)
            return var

        bias = config.library_call_bias
        for _ in range(config.stmts_per_worker):
            pattern = rng.choices(
                (
                    "local_chain",
                    "self_store",
                    "self_load",
                    "copy",
                    "alloc",
                    "field_chain",
                    "box",
                    "vec",
                    "peer",
                    "registry",
                    "delegate",
                    "deep_get",
                ),
                weights=(
                    4,
                    3,
                    3,
                    3,
                    3,
                    2,
                    1.0 * bias,
                    0.5 * bias,
                    0.6 * bias,
                    0.3 * bias,
                    0.9 * bias,
                    0.7 * bias,
                ),
            )[0]
            if pattern in ("delegate", "deep_get") and spec["dep"] is None:
                pattern = "local_chain"  # bottom layer: keep it local
            if pattern == "local_chain":
                # new -> copy chain -> store -> load back: a pure-local
                # value flow the PPTA compresses into one summary entry.
                var = alloc_local()
                var = glue(var, length=3)
                fld = rng.choice(spec["fields"])
                method.store("this", fld, var)
                back = define(fresh.next("l"))
                method.load(back, "this", fld)
                glue(back)
            elif pattern == "self_store":
                method.store("this", rng.choice(spec["fields"]), pick())
            elif pattern == "self_load":
                fld = rng.choice(spec["fields"])
                var = define(fresh.next("l"))
                method.load(var, "this", fld)
                flowed_vars[var] = spec["field_classes"][fld]
            elif pattern == "copy":
                method.copy(define(fresh.next("c")), pick())
            elif pattern == "alloc":
                alloc_local()
            elif pattern == "field_chain":
                # Deep access path: load a field of a field (exercises the
                # field stack, the PPTA's summarisation target).  The
                # second hop uses the tag field of the first field's
                # nominal content class.
                fld = rng.choice(spec["fields"])
                first = define(fresh.next("h"))
                method.load(first, "this", fld)
                second = define(fresh.next("h"))
                method.load(second, first, self.tag_field_of[spec["field_classes"][fld]])
            elif pattern == "box":
                box_class = f"Box{rng.randrange(config.box_variants)}"
                box_var = fresh.next("b")
                method.alloc(box_var, box_class)
                payload = glue(pick())
                method.vcall(box_var, "set", args=[payload])
                got = fresh.next("g")
                method.vcall(box_var, "get", target=got)
                flowed_vars[define(got)] = None
                glue(got)
            elif pattern == "vec":
                vec_var = fresh.next("v")
                method.alloc(vec_var, "Vec")
                method.vcall(vec_var, "init")
                payload = glue(pick())
                method.vcall(vec_var, "add", args=[payload])
                element = fresh.next("e")
                method.vcall(vec_var, "get", target=element)
                flowed_vars[define(element)] = None
                glue(element)
            elif pattern == "peer":
                # Allocate a collaborator and exchange a value through its
                # accessors: two call sites into small shared bodies.
                peer_spec = rng.choice(self.domain_specs)
                peer = fresh.next("q")
                method.alloc(peer, peer_spec["name"])
                peer_field = rng.choice(peer_spec["fields"])
                method.vcall(peer, f"set_{peer_field}", args=[glue(pick())])
                got = fresh.next("g")
                method.vcall(peer, f"get_{peer_field}", target=got)
                flowed_vars[define(got)] = peer_spec["field_classes"][peer_field]
                glue(got)
            elif pattern == "registry":
                slot = f"slot{rng.randrange(config.registry_slots)}"
                if rng.random() < 0.5:
                    method.static_put("Registry", slot, glue(pick()))
                else:
                    method.static_get(define(fresh.next("s")), "Registry", slot)
            elif pattern == "delegate":
                # Hand work one layer down: load the dependency and call
                # one of its workers — the long call chains that make
                # context-sensitive exploration expensive and summary
                # reuse valuable.
                dep_spec = spec["dep"]
                dep_var = fresh.next("dd")
                method.load(dep_var, "this", spec["dep_field"])
                result = fresh.next("g")
                windex2 = rng.randrange(dep_spec["workers"])
                method.vcall(dep_var, f"work{windex2}", args=[glue(pick())], target=result)
                flowed_vars[define(result)] = None
                glue(result)
            elif pattern == "deep_get":
                # Two-hop access path through the dependency's accessor.
                dep_spec = spec["dep"]
                dep_var = fresh.next("dd")
                method.load(dep_var, "this", spec["dep_field"])
                dep_field = rng.choice(dep_spec["fields"])
                got = fresh.next("g")
                method.vcall(dep_var, f"get_{dep_field}", target=got)
                flowed_vars[define(got)] = dep_spec["field_classes"][dep_field]
                glue(got)

        if rng.random() < config.null_density:
            nil = fresh.next("n")
            method.null(nil)
            pool.append(nil)
            if rng.random() < 0.5:
                method.store("this", rng.choice(spec["fields"]), nil)
            else:
                # Null through a shared container: in field-based mode
                # every consumer of this box variant now sees a possible
                # null, so REFINEPTS cannot satisfy NullDeref without
                # refining — the paper's precision-hungry scenario.
                nbox = fresh.next("b")
                method.alloc(nbox, f"Box{rng.randrange(config.box_variants)}")
                method.vcall(nbox, "set", args=[glue(nil, length=1)])

        if rng.random() < config.cast_density:
            self._emit_worker_cast(method, rng, local_allocs, flowed_vars, pool, fresh)

        # Return a freshly allocated local (trackable class — lets the
        # driver cast it realistically) or pass the parameter through.
        if local_allocs and rng.random() < 0.8:
            ret_var = rng.choice(sorted(local_allocs))
            ret_class = local_allocs[ret_var]
        else:
            ret_var, ret_class = "p", None
        method.ret(ret_var)
        spec["worker_returns"].append(ret_class)

    def _emit_worker_cast(self, method, rng, local_allocs, flowed_vars, pool, fresh):
        """A downcast inside a worker.

        Mirrors the mix SafeCast meets in real code: mostly casts of
        values that arrived through fields or calls (each one a genuinely
        interprocedural query), cast to the field's nominal content class
        when known — usually provable, sometimes violated by a worker
        having stored something else — with a sprinkling of trivially
        checkable casts of local allocations and of outright type errors.
        """
        if flowed_vars and rng.random() < 0.75:
            source = rng.choice(sorted(flowed_vars))
            nominal = flowed_vars[source]
            roll = rng.random()
            if nominal is not None and roll < 0.7:
                target_class = nominal
            elif roll < 0.85:
                target_class = "Object"  # upcast: always provable
            else:
                target_class = rng.choice(self.data_class_names)
        elif local_allocs:
            source = rng.choice(sorted(local_allocs))
            target_class = (
                local_allocs[source]
                if rng.random() < 0.9
                else rng.choice(self.data_class_names)
            )
        else:
            source = rng.choice(pool)
            target_class = rng.choice(self.data_class_names)
        var = fresh.next("d")
        method.cast(var, target_class, source)
        pool.append(var)

    def _emit_factory(self, cls, spec):
        """``static create()``: fresh instance — or, for the buggy
        fraction, an instance laundered through a static registry slot
        (a singleton cache), which FactoryM must flag."""
        rng = self.rng
        name = spec["name"]
        method = cls.static_method("create")
        slot = f"slot{rng.randrange(self.config.registry_slots)}"
        if spec["buggy_factory"]:
            method.alloc("fresh", name)
            method.static_put("Registry", slot, "fresh")
            method.static_get("cached", "Registry", slot)
            method.vcall("cached", "setup")
            method.ret("cached")
        else:
            method.alloc("fresh", name)
            method.vcall("fresh", "setup")
            method.ret("fresh")
        self.factory_methods.append((name, "create", spec["buggy_factory"]))

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def _emit_main(self, builder):
        """Main wires heterogeneous payloads through the *same* library
        call sites so that only context-sensitive analyses keep them
        apart — Figure 2 at scale."""
        rng = self.rng
        config = self.config
        main = builder.cls("Main").static_method("main")
        fresh = _Counter()
        instances = []

        for round_index in range(config.driver_rounds):
            for spec in self.domain_specs:
                name = spec["name"]
                var = fresh.next("obj")
                if spec["factory"]:
                    main.scall(name, "create", target=var)
                else:
                    main.alloc(var, name)
                    main.vcall(var, "setup")
                instances.append((var, spec))

        # Exercise workers, pushing distinct payloads through shared code.
        # Layer-0 classes get their full worker surface driven; deeper
        # layers are mostly reached through delegation and only get one
        # direct call (keeping their factories and workers reachable).
        for var, spec in instances:
            payload_class = rng.choice(self.data_class_names)
            payload = fresh.next("pay")
            main.alloc(payload, payload_class)
            if spec["layer"] == 0:
                windices = range(spec["workers"])
            else:
                windices = [rng.randrange(spec["workers"])]
            for windex in windices:
                result = fresh.next("res")
                main.vcall(var, f"work{windex}", args=[payload], target=result)
                if rng.random() < config.cast_density:
                    # Cast to what actually comes back: the worker's own
                    # fresh allocation class, or — for parameter
                    # pass-through workers — the payload's class.  A small
                    # fraction casts to an unrelated class instead.
                    returned = spec["worker_returns"][windex]
                    cast_to = returned if returned is not None else payload_class
                    if rng.random() < 0.1:
                        cast_to = rng.choice(self.data_class_names)
                    main.cast(fresh.next("cst"), cast_to, result)

        # The Figure 2 pattern: two instances of the same class, distinct
        # payload types through the same Box/Vec accessors, then casts
        # that only a context-sensitive analysis can prove safe.
        for pair_index in range(max(1, config.domain_classes // 3)):
            box_class = f"Box{rng.randrange(config.box_variants)}"
            class_a, class_b = rng.sample(self.data_class_names, 2)
            box1, box2 = fresh.next("fig"), fresh.next("fig")
            pay1, pay2 = fresh.next("fig"), fresh.next("fig")
            out1, out2 = fresh.next("fig"), fresh.next("fig")
            main.alloc(box1, box_class)
            main.alloc(box2, box_class)
            main.alloc(pay1, class_a)
            main.alloc(pay2, class_b)
            main.vcall(box1, "set", args=[pay1])
            main.vcall(box2, "set", args=[pay2])
            main.vcall(box1, "get", target=out1)
            main.vcall(box2, "get", target=out2)
            main.cast(fresh.next("fig"), class_a, out1)  # safe only w/ context
            main.cast(fresh.next("fig"), class_b, out2)  # safe only w/ context
        return main

    # ------------------------------------------------------------------
    # adversarial stress shapes
    # ------------------------------------------------------------------
    def _emit_stress(self, builder, main):
        """Emit the knob-gated stress shapes and drive them from Main.

        Deliberately rng-free: the shapes draw nothing from ``self.rng``
        and append strictly after the seeded emission, so a config that
        differs only in a stress knob produces the same program plus the
        shape — cost attribution in the perf harness stays clean.
        """
        config = self.config
        fresh = _Counter()

        if config.recursion_depth > 0:
            # A call cycle: RecK.spin allocates Rec(K+1) and calls its
            # spin, the last link closing back to Rec0.  Andersen puts
            # the whole chain in one SCC, so every spin site is crossed
            # without context ops — the folded OP_*_REC rows in the CSR.
            depth = config.recursion_depth
            for k in range(depth):
                cls = builder.cls(f"Rec{k}", superclass="Object", fields=[f"held{k}"])
                method = cls.method("spin", params=["p"])
                method.store("this", f"held{k}", "p")
                method.load("g", "this", f"held{k}")
                method.alloc("t", f"Rec{(k + 1) % depth}")
                method.vcall("t", "spin", args=["g"], target="r")
                method.ret("r")
            seed_var = fresh.next("rec")
            main.alloc(seed_var, "Rec0")
            payload = fresh.next("rec")
            main.alloc(payload, self.data_class_names[0])
            main.vcall(seed_var, "spin", args=[payload], target=fresh.next("rec"))

        if config.megamorphic_degree > 0:
            # One dispatch site, `degree` receiver classes: Main funnels
            # every PolyK instance through PolyHub.dispatch, whose single
            # r.hit(p) site then targets all of them — a worst case for
            # the per-site crossing rows.
            degree = config.megamorphic_degree
            for k in range(degree):
                cls = builder.cls(f"Poly{k}", superclass="Object", fields=[f"pf{k}"])
                method = cls.method("hit", params=["p"])
                method.store("this", f"pf{k}", "p")
                method.load("r", "this", f"pf{k}")
                method.ret("r")
            hub = builder.cls("PolyHub")
            dispatch = hub.static_method("dispatch", params=["r", "p"])
            dispatch.vcall("r", "hit", args=["p"], target="out")
            dispatch.ret("out")
            payload = fresh.next("mm")
            main.alloc(payload, self.data_class_names[0])
            for k in range(degree):
                recv = fresh.next("mm")
                main.alloc(recv, f"Poly{k}")
                main.scall(
                    "PolyHub", "dispatch", args=[recv, payload], target=fresh.next("mm")
                )

        if config.field_chain_depth > 0:
            # A linked list built and walked inside one static method:
            # the walk-back loads push the field stack `depth` tokens
            # deep before the payload pops them all off.
            depth = config.field_chain_depth
            builder.cls("Link", superclass="Object", fields=["lnext", "lval"])
            walker = builder.cls("DeepWalk").static_method("walk", params=["p"])
            walker.alloc("n0", "Link")
            for k in range(1, depth + 1):
                walker.alloc(f"n{k}", "Link")
                walker.store(f"n{k - 1}", "lnext", f"n{k}")
            walker.store(f"n{depth}", "lval", "p")
            walker.copy("w0", "n0")
            for k in range(depth):
                walker.load(f"w{k + 1}", f"w{k}", "lnext")
            walker.load("wout", f"w{depth}", "lval")
            walker.ret("wout")
            payload = fresh.next("fc")
            main.alloc(payload, self.data_class_names[0])
            main.scall("DeepWalk", "walk", args=[payload], target=fresh.next("fc"))


class _Counter:
    """Fresh-name supply (deterministic, per scope)."""

    def __init__(self):
        self._counts = {}

    def next(self, prefix):
        count = self._counts.get(prefix, 0)
        self._counts[prefix] = count + 1
        return f"{prefix}{count}"
