"""Benchmark suite and experiment harness.

The paper evaluates on nine Java programs from SPECjvm98 and DaCapo run
through Soot — unavailable here, so :mod:`repro.bench.generator` produces
deterministic synthetic PIR programs whose *graph shape* matches what the
paper measures: 80–90% locality, a library layer shared across many call
sites (the reuse DYNSUM exploits), deep field-access paths, and client
query volumes in the paper's relative proportions.
:mod:`repro.bench.suite` instantiates the nine named benchmarks;
:mod:`repro.bench.runner` runs the Table 4 / Figure 4 / Figure 5
protocols; :mod:`repro.bench.tables` renders the output.
"""

from repro.bench.batching import split_batches
from repro.bench.generator import GeneratorConfig, generate_program
from repro.bench.runner import (
    BatchSeries,
    BenchmarkInstance,
    ClientRun,
    run_batches,
    run_client,
    run_summary_series,
)
from repro.bench.suite import BENCHMARK_NAMES, benchmark_config, load_benchmark
from repro.bench.tables import (
    format_capability_table,
    format_figure4,
    format_figure5,
    format_table3,
    format_table4,
)

__all__ = [
    "BENCHMARK_NAMES",
    "BatchSeries",
    "BenchmarkInstance",
    "ClientRun",
    "GeneratorConfig",
    "benchmark_config",
    "format_capability_table",
    "format_figure4",
    "format_figure5",
    "format_table3",
    "format_table4",
    "generate_program",
    "load_benchmark",
    "run_batches",
    "run_client",
    "run_summary_series",
    "split_batches",
]
