"""The nine named benchmarks (Table 3's programs, synthesised).

Each name from the paper's suite maps to a :class:`GeneratorConfig` tuned
so the *relative* proportions of the paper's Table 3 hold at laptop-Python
scale (graphs roughly 100x smaller than the Java originals):

* jack/javac are the largest graphs; avrora/luindex the smallest;
* avrora/batik/luindex/xalan have the lowest locality (more call
  traffic), jack..jython the highest (≈90%);
* query volume ordering follows the paper — xalan issues the most
  queries, jack the fewest, and NullDeref >= SafeCast >= FactoryM.

``load_benchmark(name, scale=...)`` generates the program, builds its
Andersen call graph and PAG, and returns a ready-to-measure
:class:`~repro.bench.runner.BenchmarkInstance`; ``load_engine(name)``
additionally fronts it with a :class:`~repro.engine.core.PointsToEngine`
so callers measure through the same query surface production hosts use.
"""

from repro.bench.generator import GeneratorConfig

#: Paper order (Table 3 rows).
BENCHMARK_NAMES = (
    "jack",
    "javac",
    "soot-c",
    "bloat",
    "jython",
    "avrora",
    "batik",
    "luindex",
    "xalan",
)

_CONFIGS = {
    "jack": GeneratorConfig(
        seed=101,
        domain_classes=16,
        data_classes=8,
        box_variants=3,
        workers_per_class=3,
        stmts_per_worker=14,
        cast_density=0.25,
        null_density=0.30,
        factory_fraction=0.6,
        library_call_bias=0.45,
        layers=2,
        driver_rounds=2,
    ),
    "javac": GeneratorConfig(
        seed=102,
        domain_classes=18,
        data_classes=8,
        box_variants=3,
        workers_per_class=3,
        stmts_per_worker=14,
        cast_density=0.35,
        null_density=0.50,
        factory_fraction=0.6,
        library_call_bias=0.45,
        layers=2,
        driver_rounds=2,
    ),
    "soot-c": GeneratorConfig(
        seed=103,
        domain_classes=10,
        data_classes=6,
        box_variants=3,
        workers_per_class=3,
        stmts_per_worker=13,
        cast_density=0.70,
        null_density=0.55,
        factory_fraction=0.8,
        library_call_bias=0.37,
        layers=2,
        driver_rounds=2,
    ),
    "bloat": GeneratorConfig(
        seed=104,
        domain_classes=11,
        data_classes=6,
        box_variants=2,
        workers_per_class=3,
        stmts_per_worker=13,
        cast_density=0.80,
        null_density=0.60,
        factory_fraction=0.8,
        library_call_bias=0.40,
        layers=2,
        driver_rounds=2,
    ),
    "jython": GeneratorConfig(
        seed=105,
        domain_classes=10,
        data_classes=6,
        box_variants=2,
        workers_per_class=3,
        stmts_per_worker=13,
        cast_density=0.50,
        null_density=0.65,
        factory_fraction=0.5,
        library_call_bias=0.45,
        layers=2,
        driver_rounds=2,
    ),
    "avrora": GeneratorConfig(
        seed=106,
        domain_classes=6,
        data_classes=4,
        box_variants=2,
        workers_per_class=2,
        stmts_per_worker=9,
        cast_density=0.90,
        null_density=0.70,
        factory_fraction=0.8,
        library_call_bias=1.0,
        layers=2,
        driver_rounds=3,
    ),
    "batik": GeneratorConfig(
        seed=107,
        domain_classes=11,
        data_classes=6,
        box_variants=3,
        workers_per_class=3,
        stmts_per_worker=10,
        cast_density=0.95,
        null_density=0.65,
        factory_fraction=0.7,
        library_call_bias=0.9,
        layers=2,
        driver_rounds=3,
    ),
    "luindex": GeneratorConfig(
        seed=108,
        domain_classes=6,
        data_classes=4,
        box_variants=2,
        workers_per_class=2,
        stmts_per_worker=9,
        cast_density=0.95,
        null_density=0.70,
        factory_fraction=0.9,
        library_call_bias=0.9,
        layers=2,
        driver_rounds=3,
    ),
    "xalan": GeneratorConfig(
        seed=109,
        domain_classes=9,
        data_classes=5,
        box_variants=2,
        workers_per_class=3,
        stmts_per_worker=10,
        cast_density=1.0,
        null_density=0.80,
        factory_fraction=0.9,
        library_call_bias=0.85,
        layers=2,
        driver_rounds=4,
    ),
}


def benchmark_config(name, scale=1.0):
    """The :class:`GeneratorConfig` for a named benchmark, optionally
    rescaled (``scale < 1`` shrinks the program for quick test runs)."""
    try:
        config = _CONFIGS[name]
    except KeyError:
        known = ", ".join(BENCHMARK_NAMES)
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
    if scale != 1.0:
        config = config.scaled(scale)
    return config


def load_benchmark(name, scale=1.0, config=None):
    """Generate, analyse and wrap a named benchmark.

    Returns a :class:`~repro.bench.runner.BenchmarkInstance` holding the
    program, PAG and Table 3 statistics.
    """
    from repro.bench.generator import generate_program
    from repro.bench.runner import BenchmarkInstance
    from repro.pag.builder import build_pag
    from repro.pag.stats import compute_statistics

    resolved = config if config is not None else benchmark_config(name, scale)
    program = generate_program(resolved)
    pag = build_pag(program)
    stats = compute_statistics(pag, name=name)
    return BenchmarkInstance(name=name, config=resolved, program=program, pag=pag, stats=stats)


def load_engine(name, scale=1.0, policy=None, config=None):
    """Load a named benchmark and front it with an engine.

    Returns ``(engine, instance)`` — the engine for issuing queries, the
    instance for its program/PAG/statistics.  ``policy`` is an
    :class:`~repro.engine.policy.EnginePolicy` (default:
    :func:`~repro.bench.runner.bench_engine_policy` — DYNSUM, unbounded
    cache, the harness's field-depth k-limit).
    """
    instance = load_benchmark(name, scale=scale, config=config)
    return instance.engine(policy), instance
