"""Experiment runner: executes the paper's measurement protocols.

Three entry points mirror the evaluation section:

* :func:`run_client` — one (benchmark, client, analysis) cell of Table 4:
  issue every query, record wall time, deterministic traversal steps and
  verdict counts;
* :func:`run_batches` — Figure 4: split the queries into 10 batches and
  time each batch per analysis (fresh analysis per *protocol*, shared
  DYNSUM cache across batches — that persistence is the whole point);
* :func:`run_summary_series` — Figure 5: cumulative DYNSUM summary count
  after each batch, normalised by STASUM's offline summary count.

All query traffic flows through the engine layer
(:class:`~repro.engine.core.PointsToEngine`); each entry point accepts
either an analysis instance (wrapped on the fly, as the shipped
benchmarks do) or a ready-made engine.  The paper's protocols issue the
published query streams verbatim, so the runner disables the scheduler's
dedup/reorder levers — ``benchmarks/bench_engine_batch.py`` measures what
they buy.

Wall-clock numbers vary with the host, so every result also carries the
step counts, which are deterministic given the program and query order.
"""

from dataclasses import dataclass, field

from repro.analysis.base import AnalysisConfig
from repro.bench.batching import split_batches
from repro.clients.base import SAFE, UNKNOWN, VIOLATION
from repro.engine import CachePolicy, EnginePolicy, PointsToEngine

#: Field-stack k-limit used by the experiment harness.
#:
#: The paper bounds queries only by the 75,000-step budget; on the
#: synthetic suite a small number of queries instead pump the field stack
#: through store/load webs and would burn the whole budget without
#: producing an answer.  Practical demand-driven tools k-limit the field
#: abstraction for exactly this reason, so the harness does too: queries
#: that exceed the depth abort early and are answered conservatively
#: ("unknown"), identically for every analysis.  Library users get the
#: unbounded default unless they opt in.
BENCH_FIELD_DEPTH_LIMIT = 16


def bench_analysis_config(budget=None):
    """The :class:`AnalysisConfig` used by all shipped experiments."""
    if budget is None:
        return AnalysisConfig(max_field_depth=BENCH_FIELD_DEPTH_LIMIT)
    return AnalysisConfig(budget=budget, max_field_depth=BENCH_FIELD_DEPTH_LIMIT)


def bench_engine_policy(analysis="DYNSUM", cache=None, parallelism=1):
    """The :class:`~repro.engine.policy.EnginePolicy` counterpart of
    :func:`bench_analysis_config`: same k-limit, any analysis/cache.

    ``parallelism`` is pinned to 1 by default — the paper's protocols
    are sequential and their step counts must stay deterministic even
    under a ``REPRO_PARALLELISM`` environment override; parallel
    measurements (``benchmarks/bench_parallel_batch.py``) opt in
    explicitly.
    """
    return EnginePolicy(
        analysis=analysis,
        max_field_depth=BENCH_FIELD_DEPTH_LIMIT,
        cache=cache or CachePolicy(),
        parallelism=parallelism,
    )


@dataclass
class BenchmarkInstance:
    """A generated benchmark ready for measurement."""

    name: str
    config: object
    program: object
    pag: object
    stats: object

    def client_queries(self, client_cls):
        client = client_cls(self.pag)
        return client, client.queries()

    def engine(self, policy=None):
        """A fresh :class:`~repro.engine.core.PointsToEngine` over this
        benchmark's PAG.  The default policy is
        :func:`bench_engine_policy` — the synthetic suite needs the
        harness's field-depth k-limit, like every other bench path."""
        return PointsToEngine(self.pag, policy or bench_engine_policy())


@dataclass
class ClientRun:
    """One Table 4 cell."""

    benchmark: str
    client: str
    analysis: str
    n_queries: int
    time_sec: float
    steps: int
    safe: int
    violations: int
    unknown: int

    @property
    def verdict_counts(self):
        return {SAFE: self.safe, VIOLATION: self.violations, UNKNOWN: self.unknown}


@dataclass
class BatchSeries:
    """Per-batch timings/steps for one (benchmark, client, analysis)."""

    benchmark: str
    client: str
    analysis: str
    batch_times: list = field(default_factory=list)
    batch_steps: list = field(default_factory=list)
    #: For DYNSUM: cumulative summary count after each batch.
    summary_counts: list = field(default_factory=list)
    #: Summary-cache hit rate per batch (empty for cache-less analyses).
    hit_rates: list = field(default_factory=list)


def _as_engine(analysis_or_engine):
    """Accept an analysis instance or an engine; always return an engine."""
    if isinstance(analysis_or_engine, PointsToEngine):
        return analysis_or_engine
    return PointsToEngine.wrap(analysis_or_engine)


def run_client(instance, client_cls, analysis, queries=None):
    """Run every query of ``client_cls`` through ``analysis`` (an
    analysis instance or a :class:`~repro.engine.core.PointsToEngine`)."""
    engine = _as_engine(analysis)
    client = client_cls(instance.pag)
    if queries is None:
        queries = client.queries()
    # Paper protocol: the published query stream, verbatim.
    verdicts, batch = engine.run_client(
        client, queries, dedupe=False, reorder=False
    )
    counts = {SAFE: 0, VIOLATION: 0, UNKNOWN: 0}
    for verdict in verdicts:
        counts[verdict.status] += 1
    return ClientRun(
        benchmark=instance.name,
        client=client.name,
        analysis=engine.analysis.name,
        n_queries=len(queries),
        time_sec=batch.stats.time_sec,
        steps=batch.stats.steps,
        safe=counts[SAFE],
        violations=counts[VIOLATION],
        unknown=counts[UNKNOWN],
    )


def run_batches(instance, client_cls, analysis, n_batches=10):
    """Figure 4 protocol for one analysis: time each batch in sequence.

    The engine (and thus the analysis and its summary cache) persists
    across batches, so DYNSUM's cache warms up while NOREFINE/REFINEPTS
    pay full price every batch.
    """
    engine = _as_engine(analysis)
    client = client_cls(instance.pag)
    queries = client.queries()
    series = BatchSeries(
        benchmark=instance.name, client=client.name, analysis=engine.analysis.name
    )
    for batch_queries in split_batches(queries, n_batches):
        _verdicts, batch = engine.run_client(
            client, batch_queries, dedupe=False, reorder=False
        )
        series.batch_times.append(batch.stats.time_sec)
        series.batch_steps.append(batch.stats.steps)
        if hasattr(engine.analysis, "summary_count"):
            series.summary_counts.append(engine.analysis.summary_count)
        if engine.cache is not None:
            series.hit_rates.append(batch.stats.hit_rate)
    return series


def run_summary_series(instance, client_cls, dynsum, stasum, n_batches=10):
    """Figure 5 protocol: cumulative |Cache| after each batch, plus the
    STASUM denominator.

    Returns ``(series, stasum_total)`` where ``series.summary_counts[i]``
    is DYNSUM's cache size after batch ``i`` and ``stasum_total`` is the
    number of summaries STASUM computed offline.
    """
    series = run_batches(instance, client_cls, dynsum, n_batches)
    return series, stasum.summary_count


def speedup(baseline_run, other_run, use_steps=False):
    """``baseline / other`` — how much faster ``other`` is.

    ``use_steps=True`` compares deterministic step counts instead of wall
    time (recommended for CI assertions)."""
    if use_steps:
        numerator, denominator = baseline_run.steps, other_run.steps
    else:
        numerator, denominator = baseline_run.time_sec, other_run.time_sec
    if denominator == 0:
        return float("inf")
    return numerator / denominator
