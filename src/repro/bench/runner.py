"""Experiment runner: executes the paper's measurement protocols.

Three entry points mirror the evaluation section:

* :func:`run_client` — one (benchmark, client, analysis) cell of Table 4:
  issue every query, record wall time, deterministic traversal steps and
  verdict counts;
* :func:`run_batches` — Figure 4: split the queries into 10 batches and
  time each batch per analysis (fresh analysis per *protocol*, shared
  DYNSUM cache across batches — that persistence is the whole point);
* :func:`run_summary_series` — Figure 5: cumulative DYNSUM summary count
  after each batch, normalised by STASUM's offline summary count.

Wall-clock numbers vary with the host, so every result also carries the
step counts, which are deterministic given the program and query order.
"""

from dataclasses import dataclass, field

from repro.analysis.base import AnalysisConfig
from repro.bench.batching import split_batches
from repro.clients.base import SAFE, UNKNOWN, VIOLATION
from repro.util.timer import Timer

#: Field-stack k-limit used by the experiment harness.
#:
#: The paper bounds queries only by the 75,000-step budget; on the
#: synthetic suite a small number of queries instead pump the field stack
#: through store/load webs and would burn the whole budget without
#: producing an answer.  Practical demand-driven tools k-limit the field
#: abstraction for exactly this reason, so the harness does too: queries
#: that exceed the depth abort early and are answered conservatively
#: ("unknown"), identically for every analysis.  Library users get the
#: unbounded default unless they opt in.
BENCH_FIELD_DEPTH_LIMIT = 16


def bench_analysis_config(budget=None):
    """The :class:`AnalysisConfig` used by all shipped experiments."""
    if budget is None:
        return AnalysisConfig(max_field_depth=BENCH_FIELD_DEPTH_LIMIT)
    return AnalysisConfig(budget=budget, max_field_depth=BENCH_FIELD_DEPTH_LIMIT)


@dataclass
class BenchmarkInstance:
    """A generated benchmark ready for measurement."""

    name: str
    config: object
    program: object
    pag: object
    stats: object

    def client_queries(self, client_cls):
        client = client_cls(self.pag)
        return client, client.queries()


@dataclass
class ClientRun:
    """One Table 4 cell."""

    benchmark: str
    client: str
    analysis: str
    n_queries: int
    time_sec: float
    steps: int
    safe: int
    violations: int
    unknown: int

    @property
    def verdict_counts(self):
        return {SAFE: self.safe, VIOLATION: self.violations, UNKNOWN: self.unknown}


@dataclass
class BatchSeries:
    """Per-batch timings/steps for one (benchmark, client, analysis)."""

    benchmark: str
    client: str
    analysis: str
    batch_times: list = field(default_factory=list)
    batch_steps: list = field(default_factory=list)
    #: For DYNSUM: cumulative summary count after each batch.
    summary_counts: list = field(default_factory=list)


def run_client(instance, client_cls, analysis, queries=None):
    """Run every query of ``client_cls`` through ``analysis``."""
    client = client_cls(instance.pag)
    if queries is None:
        queries = client.queries()
    counts = {SAFE: 0, VIOLATION: 0, UNKNOWN: 0}
    steps_before = analysis.total_steps
    timer = Timer()
    with timer:
        for query in queries:
            node = query.node(instance.pag)
            result = analysis.points_to(node, client=client.predicate(query))
            verdict = client.verdict(query, result)
            counts[verdict.status] += 1
    return ClientRun(
        benchmark=instance.name,
        client=client.name,
        analysis=analysis.name,
        n_queries=len(queries),
        time_sec=timer.elapsed,
        steps=analysis.total_steps - steps_before,
        safe=counts[SAFE],
        violations=counts[VIOLATION],
        unknown=counts[UNKNOWN],
    )


def run_batches(instance, client_cls, analysis, n_batches=10):
    """Figure 4 protocol for one analysis: time each batch in sequence.

    The analysis instance persists across batches, so DYNSUM's summary
    cache warms up while NOREFINE/REFINEPTS pay full price every batch.
    """
    client = client_cls(instance.pag)
    queries = client.queries()
    series = BatchSeries(
        benchmark=instance.name, client=client.name, analysis=analysis.name
    )
    for batch in split_batches(queries, n_batches):
        steps_before = analysis.total_steps
        timer = Timer()
        with timer:
            for query in batch:
                node = query.node(instance.pag)
                result = analysis.points_to(node, client=client.predicate(query))
                client.verdict(query, result)
        series.batch_times.append(timer.elapsed)
        series.batch_steps.append(analysis.total_steps - steps_before)
        if hasattr(analysis, "summary_count"):
            series.summary_counts.append(analysis.summary_count)
    return series


def run_summary_series(instance, client_cls, dynsum, stasum, n_batches=10):
    """Figure 5 protocol: cumulative |Cache| after each batch, plus the
    STASUM denominator.

    Returns ``(series, stasum_total)`` where ``series.summary_counts[i]``
    is DYNSUM's cache size after batch ``i`` and ``stasum_total`` is the
    number of summaries STASUM computed offline.
    """
    series = run_batches(instance, client_cls, dynsum, n_batches)
    return series, stasum.summary_count


def speedup(baseline_run, other_run, use_steps=False):
    """``baseline / other`` — how much faster ``other`` is.

    ``use_steps=True`` compares deterministic step counts instead of wall
    time (recommended for CI assertions)."""
    if use_steps:
        numerator, denominator = baseline_run.steps, other_run.steps
    else:
        numerator, denominator = baseline_run.time_sec, other_run.time_sec
    if denominator == 0:
        return float("inf")
    return numerator / denominator
