"""Query batching — the paper's Figure 4/5 protocol.

Section 5.3: "we divide the sequence of queries issued by a client into
10 batches.  If a client has nq queries, then each of the first nine
batches contains floor(nq/10) queries and the last one gets the rest."
"""


def split_batches(queries, n_batches=10):
    """Split ``queries`` exactly as the paper does.

    The first ``n_batches - 1`` batches hold ``len(queries) // n_batches``
    queries each; the final batch holds the remainder.  With fewer
    queries than batches, leading batches are empty and everything lands
    in the last — degenerate but well-defined.
    """
    if n_batches <= 0:
        raise ValueError(f"n_batches must be positive, got {n_batches}")
    queries = list(queries)
    per_batch = len(queries) // n_batches
    batches = []
    cursor = 0
    for _ in range(n_batches - 1):
        batches.append(queries[cursor : cursor + per_batch])
        cursor += per_batch
    batches.append(queries[cursor:])
    return batches
