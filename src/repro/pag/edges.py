"""PAG edge kinds and their local/global classification (Section 2).

Local edges stay within one method and never affect the calling context;
global edges cross method boundaries (or touch statics) and never affect
field-sensitivity.  DYNSUM's partial points-to analysis summarises exactly
the local kinds.
"""

NEW = "new"
ASSIGN = "assign"
LOAD = "load"
STORE = "store"
ASSIGN_GLOBAL = "assignglobal"
ENTRY = "entry"
EXIT = "exit"

#: Edge kinds confined to a single method.
LOCAL_EDGE_KINDS = frozenset([NEW, ASSIGN, LOAD, STORE])

#: Edge kinds crossing method boundaries (context-relevant).
GLOBAL_EDGE_KINDS = frozenset([ASSIGN_GLOBAL, ENTRY, EXIT])

#: Every kind, in the order Table 3 reports them.
ALL_EDGE_KINDS = (NEW, ASSIGN, LOAD, STORE, ENTRY, EXIT, ASSIGN_GLOBAL)
