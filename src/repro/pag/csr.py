"""The CSR traversal image: the PAG lowered to dense int arrays.

:class:`~repro.pag.graph.NodeAdjacency` records (PR 5) collapsed the
accessor surface into one dict probe per visited state, but the inner
loops still chase per-node record objects and per-edge tuples.  This
module compiles the whole PAG into a handful of contiguous buffers — a
**CSR image** — so the ``traversal_impl("array")`` loops in
:mod:`repro.analysis.ppta` / :mod:`repro.analysis.dynsum` index plain
``array('i')`` rows with int-keyed visited sets and touch no per-node
Python object at all:

* a **node table** (``nodes``/``node_index``) assigning every edge
  endpoint a dense index, in the same first-touch order the adjacency
  compiler uses;
* one **CSR group** (offsets + parallel value arrays) per local edge
  family, in exactly the per-node order of the accessor lists — the
  bit-equality of answers *and* step counts against
  :func:`~repro.analysis.ppta.run_ppta_reference` depends on matching
  that order;
* push-token and field ids drawn from the **process-global intern pool**
  (:func:`repro.cfl.stacks.token_id` / ``field_id``), so a PAG rebuild
  (an edit) or a CSR recompile never renumbers tokens;
* per-node **boundary flags** packed into one byte, with a trailing
  sentinel byte so an unindexed start node (mapped to the sentinel
  index ``n_nodes``) reads empty rows and a zero flag without a branch;
* flattened **cross-edge op lists** per direction, with the
  recursive-site bit folded into the op code at compile time
  (:data:`OP_PUSH_REC` / :data:`OP_POP_REC`), so the worklist never
  probes ``recursive_sites`` per crossing.

The image serializes into a versioned binary section
(:func:`serialize_csr` / :class:`CsrSection`) that
:mod:`repro.api.snapshot` embeds in its binary container; loading maps
the file with ``mmap`` and casts zero-copy ``memoryview`` rows over it,
so a warm-started engine installs the image without recompiling —
:attr:`PAG.csr_compiles <repro.pag.graph.PAG>` stays at zero on the warm
path.  A fingerprint over the edge stream (plus the recursive-site set)
guards installs: an image of a different program version is rejected
with a typed :class:`~repro.api.protocol.SnapshotError`, never silently
consumed.
"""

import json
import struct
from array import array
from zlib import crc32

from repro.api.protocol import SnapshotError
from repro.cfl.rsm import FAM_LOAD, FAM_STORE, S1, S2
from repro.cfl.stacks import field_id, field_table, intern_token, token_id, token_table

#: Cross-op codes of the flattened crossing lists.  PUSH/POP come in a
#: recursive flavour — the compile-time folding of
#: ``site in pag.recursive_sites()`` — so the hot loop branches on the
#: op code alone.  CLEAR is the context-erasing ``assignglobal`` hop.
OP_PUSH = 0
OP_PUSH_REC = 1
OP_POP = 2
OP_POP_REC = 3
OP_CLEAR = 4

#: Bits of the per-node flags byte.
FLAG_GLOBAL_IN = 1
FLAG_GLOBAL_OUT = 2
FLAG_LOCAL = 4

#: Binary section format: magic, native-endian tag, semver pair.  The
#: endian tag is written in the producer's byte order — a consumer on a
#: foreign-endian host reads it byte-swapped and rejects the image (the
#: int arrays are raw native ints; transcoding them is not worth a code
#: path nobody ships across).
_MAGIC = b"RCSR"
_ENDIAN_TAG = 0x01020304
CSR_FORMAT_VERSION = (1, 1)

#: The native kernel's view of this layout (see ``repro/native``).
#: Snapshots are stamped with it (the ``kernel_abi`` meta key, new in
#: format 1.1); the native binding refuses an image whose stamp — or
#: lack of one, for pre-1.1 snapshots — disagrees with its own
#: ``RK_ABI_VERSION`` and the engine falls back to the pure-Python
#: ``array`` impl.  Bump together with ``RK_ABI_VERSION`` in
#: ``kernel.c`` / ``binding.py`` whenever the kernel's reading of the
#: arrays changes.
KERNEL_ABI_VERSION = 1

#: Header layout (native order, standard sizes would break the tag
#: check's purpose): magic, endian tag, major, minor, meta length,
#: reserved, payload length, payload crc32.
_HEADER = struct.Struct("=4sIHHIIQI")

_ITEMSIZE = array("i").itemsize

#: The local-edge CSR groups, in (offsets, *values) layout.  Each entry
#: names the image attributes holding the group's arrays.
_GROUPS = (
    ("new_off", "new_val"),
    ("as_off", "as_val"),
    ("li_off", "li_tok", "li_val"),
    ("at_off", "at_val"),
    ("lf_off", "lf_fid", "lf_val"),
    ("si_off", "si_fid", "si_val"),
    ("sf_off", "sf_tok", "sf_val"),
    ("cb_off", "cb_op", "cb_site", "cb_tgt"),
    ("cf_off", "cf_op", "cf_site", "cf_tgt"),
)

_ARRAY_NAMES = tuple(name for group in _GROUPS for name in group)


#: The derived per-node row views (see :meth:`CsrImage._finalize`).
_ROW_NAMES = (
    "new_rows",
    "as_rows",
    "li_rows",
    "at_rows",
    "lf_rows",
    "si_rows",
    "sf_rows",
    "cb_rows",
    "cf_rows",
)


class CsrImage:
    """One compiled (or mmap-loaded) CSR image of a PAG.

    All ``*_off`` arrays have ``n_nodes + 1`` entries (the last is the
    group's total) and ``flags`` has ``n_nodes + 1`` bytes: the index
    ``n_nodes`` is the **sentinel row** an unindexed start node maps to
    (``node_index.get(node, n_nodes)``) — empty everywhere, flag zero —
    so the traversal loops never branch on "node not in the image".

    The ``array('i')``/``bytes`` attributes (``_ARRAY_NAMES`` +
    ``flags``) are the canonical dense form: what serializes, and what
    the mmap loader hands back as zero-copy ``memoryview`` casts.  The
    ``*_rows`` attributes are *derived* per-node tuples built by
    :meth:`_finalize` in one C-speed ``tolist`` pass — CPython boxes a
    fresh int on every ``array('i')`` index, so the hot loops iterate
    prebuilt tuples whose elements (pre-packed visited-key addends,
    interned token objects, node references) are shared, making each
    traversal step allocation-free.
    """

    __slots__ = (
        "n_nodes",
        "nodes",
        "node_index",
        "tokens",
        "tok_fid",
        "flags",
        "edge_counts",
        "node_counts",
        "fingerprint",
        "source",
        "kernel_abi",
        "_buffer",
        "_native",
    ) + _ARRAY_NAMES + _ROW_NAMES

    def _finalize(self):
        """Derive the row tuples the ``array`` traversal loops iterate.

        Every packed element is ``index * 4 + state`` — the visited-key
        addend of :func:`repro.analysis.ppta._run_ppta_array`'s packing
        — so the loops turn one row element into a visited key with a
        single int add.  Runs once per image (compile or mmap load);
        unlike ``PAG._compile_adjacency`` it touches no PAG dicts and
        builds no per-node objects, so a warm start stays free of graph
        recompilation.
        """
        #: Lazy slot for the native kernel's twin of this image
        #: (``repro.native.session``): ``None`` until first use, then a
        #: ``_NativeGraph`` or a reason string when the kernel refused
        #: it.
        self._native = None
        n = self.n_nodes
        nodes = self.nodes
        tokens = self.tokens

        def rows(offs, flat):
            out = [tuple(flat[offs[i] : offs[i + 1]]) for i in range(n)]
            out.append(())  # the sentinel row (index n)
            return out

        def packed(values, state):
            return [x * 4 + state for x in values.tolist()]

        # ``new`` rows hold the object *nodes* themselves — they are
        # only ever emitted into answers, never re-indexed.
        self.new_rows = rows(
            self.new_off.tolist(), [nodes[x] for x in self.new_val.tolist()]
        )
        self.as_rows = rows(self.as_off.tolist(), packed(self.as_val, S1))
        self.li_rows = rows(
            self.li_off.tolist(),
            list(zip(
                [tokens[t] for t in self.li_tok.tolist()],
                packed(self.li_val, S1),
            )),
        )
        self.at_rows = rows(self.at_off.tolist(), packed(self.at_val, S2))
        self.lf_rows = rows(
            self.lf_off.tolist(),
            list(zip(self.lf_fid.tolist(), packed(self.lf_val, S2))),
        )
        self.si_rows = rows(
            self.si_off.tolist(),
            list(zip(self.si_fid.tolist(), packed(self.si_val, S1))),
        )
        self.sf_rows = rows(
            self.sf_off.tolist(),
            list(zip(
                [tokens[t] for t in self.sf_tok.tolist()],
                packed(self.sf_val, S1),
            )),
        )
        # Crossing rows carry the op, the call site, the pre-packed
        # target addend for the direction's state, and the target node
        # itself (the worklist needs it for summary-cache keys).
        cb_tgt = self.cb_tgt.tolist()
        self.cb_rows = rows(
            self.cb_off.tolist(),
            list(zip(
                self.cb_op.tolist(),
                self.cb_site.tolist(),
                [x * 4 + S1 for x in cb_tgt],
                [nodes[x] for x in cb_tgt],
            )),
        )
        cf_tgt = self.cf_tgt.tolist()
        self.cf_rows = rows(
            self.cf_off.tolist(),
            list(zip(
                self.cf_op.tolist(),
                self.cf_site.tolist(),
                [x * 4 + S2 for x in cf_tgt],
                [nodes[x] for x in cf_tgt],
            )),
        )

    def matches(self, pag):
        """Whether this image describes exactly ``pag``'s graph."""
        return (
            self.edge_counts == pag.edge_counts()
            and self.node_counts == pag.node_counts()
            and self.fingerprint == pag_fingerprint(pag)
        )

    def __repr__(self):
        return (
            f"CsrImage({self.n_nodes} nodes, "
            f"{sum(self.edge_counts.values())} edges, {self.source})"
        )


def pag_fingerprint(pag):
    """A crc32 over the PAG's edge stream and recursive-site set.

    Deterministic for a given program version (edge dicts are built in
    program order), and any wiring difference — same counts, same node
    names, different edges — changes it, so a stale image can never be
    installed over a drifted graph.
    """
    h = crc32(repr(sorted(pag.recursive_sites())).encode())
    for kind, src, label, tgt in pag.iter_edges():
        h = crc32(f"{kind}|{src.sort_key}|{label}|{tgt.sort_key}\n".encode(), h)
    return h


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def compile_csr(pag):
    """Lower ``pag`` into a fresh :class:`CsrImage`.

    Node indices are assigned on first touch in the same dict-iteration
    order as ``PAG._compile_adjacency``; per-node edge rows preserve the
    accessor lists' order exactly.
    """
    node_index = {}
    nodes = []

    def idx(node):
        i = node_index.get(node)
        if i is None:
            i = len(nodes)
            node_index[node] = i
            nodes.append(node)
        return i

    # First touch pass, mirroring the adjacency compiler's sequence so
    # both lowered forms agree on which nodes exist (every edge
    # endpoint) without consulting each other.
    for target, sources in pag._new_in.items():
        idx(target)
        for obj in sources:
            idx(obj)
    for target, sources in pag._assign_in.items():
        idx(target)
        for source in sources:
            idx(source)
    for source, targets in pag._assign_out.items():
        idx(source)
        for target in targets:
            idx(target)
    for target, pairs in pag._load_in.items():
        idx(target)
        for base, _field in pairs:
            idx(base)
    for base, pairs in pag._load_out.items():
        idx(base)
        for _field, target in pairs:
            idx(target)
    for base, pairs in pag._store_in.items():
        idx(base)
        for value, _field in pairs:
            idx(value)
    for value, pairs in pag._store_out.items():
        idx(value)
        for _field, base in pairs:
            idx(base)
    for target, pairs in pag._exit_in.items():
        idx(target)
        for retvar, _site in pairs:
            idx(retvar)
    for formal, pairs in pag._entry_in.items():
        idx(formal)
        for actual, _site in pairs:
            idx(actual)
    for target, sources in pag._global_in.items():
        idx(target)
        for source in sources:
            idx(source)
    for actual, pairs in pag._entry_out.items():
        idx(actual)
        for _site, formal in pairs:
            idx(formal)
    for retvar, pairs in pag._exit_out.items():
        idx(retvar)
        for _site, target in pairs:
            idx(target)
    for source, targets in pag._global_out.items():
        idx(source)
        for target in targets:
            idx(target)

    n = len(nodes)
    image = CsrImage()
    image.n_nodes = n
    image.nodes = nodes
    image.node_index = node_index

    new_in = pag._new_in
    assign_in = pag._assign_in
    assign_out = pag._assign_out
    load_in = pag._load_in
    load_out = pag._load_out
    store_in = pag._store_in
    store_out = pag._store_out
    recursive = pag._recursive_sites
    empty = ()

    new_off, new_val = [0], []
    as_off, as_val = [0], []
    li_off, li_tok, li_val = [0], [], []
    at_off, at_val = [0], []
    lf_off, lf_fid, lf_val = [0], [], []
    si_off, si_fid, si_val = [0], [], []
    sf_off, sf_tok, sf_val = [0], [], []
    cb_off, cb_op, cb_site, cb_tgt = [0], [], [], []
    cf_off, cf_op, cf_site, cf_tgt = [0], [], [], []
    flags = bytearray(n + 1)  # trailing zero sentinel for index -1

    for i, node in enumerate(nodes):
        for obj in new_in.get(node, empty):
            new_val.append(node_index[obj])
        new_off.append(len(new_val))
        for source in assign_in.get(node, empty):
            as_val.append(node_index[source])
        as_off.append(len(as_val))
        for base, fld in load_in.get(node, empty):
            li_tok.append(token_id(fld, FAM_LOAD))
            li_val.append(node_index[base])
        li_off.append(len(li_val))
        for target in assign_out.get(node, empty):
            at_val.append(node_index[target])
        at_off.append(len(at_val))
        for fld, target in load_out.get(node, empty):
            lf_fid.append(field_id(fld))
            lf_val.append(node_index[target])
        lf_off.append(len(lf_val))
        for value, fld in store_in.get(node, empty):
            si_fid.append(field_id(fld))
            si_val.append(node_index[value])
        si_off.append(len(si_val))
        for fld, base in store_out.get(node, empty):
            sf_tok.append(token_id(fld, FAM_STORE))
            sf_val.append(node_index[base])
        sf_off.append(len(sf_val))

        # Crossing lists in the worklist's order: exits/entries first,
        # then the context-clearing assignglobal hops.
        for retvar, site in pag._exit_in.get(node, empty):
            cb_op.append(OP_PUSH_REC if site in recursive else OP_PUSH)
            cb_site.append(site)
            cb_tgt.append(node_index[retvar])
        for actual, site in pag._entry_in.get(node, empty):
            cb_op.append(OP_POP_REC if site in recursive else OP_POP)
            cb_site.append(site)
            cb_tgt.append(node_index[actual])
        for source in pag._global_in.get(node, empty):
            cb_op.append(OP_CLEAR)
            cb_site.append(0)
            cb_tgt.append(node_index[source])
        cb_off.append(len(cb_op))
        for site, formal in pag._entry_out.get(node, empty):
            cf_op.append(OP_PUSH_REC if site in recursive else OP_PUSH)
            cf_site.append(site)
            cf_tgt.append(node_index[formal])
        for site, target in pag._exit_out.get(node, empty):
            cf_op.append(OP_POP_REC if site in recursive else OP_POP)
            cf_site.append(site)
            cf_tgt.append(node_index[target])
        for target in pag._global_out.get(node, empty):
            cf_op.append(OP_CLEAR)
            cf_site.append(0)
            cf_tgt.append(node_index[target])
        cf_off.append(len(cf_op))

        flag = 0
        if pag.has_global_in(node):
            flag |= FLAG_GLOBAL_IN
        if pag.has_global_out(node):
            flag |= FLAG_GLOBAL_OUT
        if pag.has_local_edges(node):
            flag |= FLAG_LOCAL
        flags[i] = flag

    local = locals()
    for name in _ARRAY_NAMES:
        setattr(image, name, array("i", local[name]))
    image.flags = bytes(flags)
    image.tokens = token_table()
    image.tok_fid = {token: field_id(token[0]) for token in image.tokens}
    image.edge_counts = pag.edge_counts()
    image.node_counts = pag.node_counts()
    image.fingerprint = pag_fingerprint(pag)
    image.source = "compiled"
    image.kernel_abi = KERNEL_ABI_VERSION
    image._buffer = None
    image._finalize()
    return image


# ----------------------------------------------------------------------
# binary serialization
# ----------------------------------------------------------------------
def _node_to_compact(node):
    if node.is_local_var:
        return [0, node.method, node.name]
    if node.is_global_var:
        return [1, node.class_name, node.field]
    return [2, node.object_id, node.class_name, node.method]


def serialize_csr(image):
    """The binary section bytes for one compiled image."""
    payload_parts = []
    arrays_meta = {}
    offset = 0
    for name in _ARRAY_NAMES:
        data = getattr(image, name)
        raw = data.tobytes() if isinstance(data, array) else bytes(data)
        arrays_meta[name] = [offset, len(raw) // _ITEMSIZE]
        payload_parts.append(raw)
        offset += len(raw)
        if offset % 16:
            pad = 16 - offset % 16
            payload_parts.append(b"\x00" * pad)
            offset += pad
    flags_raw = bytes(image.flags)
    arrays_meta["flags"] = [offset, len(flags_raw)]
    payload_parts.append(flags_raw)
    payload = b"".join(payload_parts)

    meta = {
        "n_nodes": image.n_nodes,
        "nodes": [_node_to_compact(node) for node in image.nodes],
        "tokens": [list(token) for token in image.tokens],
        "fields": field_table(),
        "edge_counts": image.edge_counts,
        "node_counts": image.node_counts,
        "fingerprint": image.fingerprint,
        "itemsize": _ITEMSIZE,
        "kernel_abi": image.kernel_abi,
        "arrays": arrays_meta,
    }
    meta_raw = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode("utf-8")
    header = _HEADER.pack(
        _MAGIC,
        _ENDIAN_TAG,
        CSR_FORMAT_VERSION[0],
        CSR_FORMAT_VERSION[1],
        len(meta_raw),
        0,
        len(payload),
        crc32(payload),
    )
    # Pad the meta so the payload starts 16-byte aligned relative to the
    # section start — mmap'd casts then stay aligned for any file offset
    # that is itself 16-byte aligned.
    body = header + meta_raw
    if len(body) % 16:
        body += b"\x00" * (16 - len(body) % 16)
    return body + payload


class CsrSection:
    """A parsed (but not yet node-resolved) binary CSR section.

    Construction validates everything program-independent: magic, byte
    order, version, bounds, payload checksum, meta structure.
    :meth:`image_for` resolves the node table against a live PAG and
    verifies the fingerprint, yielding a :class:`CsrImage` whose arrays
    are zero-copy views over the underlying buffer (typically an
    ``mmap``); keep the buffer alive for the image's lifetime — the
    section holds a reference for exactly that reason.
    """

    def __init__(self, buffer, offset=0, length=None):
        self._buffer = buffer
        view = memoryview(buffer)
        if length is None:
            length = len(view) - offset
        if length < _HEADER.size or offset + length > len(view):
            raise SnapshotError("CSR section truncated: incomplete header")
        view = view[offset : offset + length]
        (
            magic,
            endian,
            major,
            minor,
            meta_len,
            _reserved,
            payload_len,
            payload_crc,
        ) = _HEADER.unpack_from(view, 0)
        if magic != _MAGIC:
            raise SnapshotError("not a CSR section (bad magic)")
        if endian != _ENDIAN_TAG:
            raise SnapshotError(
                "CSR section written on a foreign-endian host; "
                "recompile the image on this machine"
            )
        if major != CSR_FORMAT_VERSION[0]:
            raise SnapshotError(
                f"unsupported CSR format version {major}.{minor} "
                f"(this build reads {CSR_FORMAT_VERSION[0]}.x)"
            )
        meta_end = _HEADER.size + meta_len
        payload_start = meta_end + (16 - meta_end % 16 if meta_end % 16 else 0)
        if payload_start + payload_len > length:
            raise SnapshotError("CSR section truncated: payload out of bounds")
        payload = view[payload_start : payload_start + payload_len]
        if crc32(payload) != payload_crc:
            raise SnapshotError("CSR payload checksum mismatch (corrupt image)")
        try:
            meta = json.loads(bytes(view[_HEADER.size : meta_end]).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SnapshotError(f"CSR meta is not valid JSON: {exc}") from None
        self._meta = _check_meta(meta, payload_len)
        self._payload = payload
        # Value-range validation (new with the native kernel): the C
        # loops index these arrays without Python's bounds checks, so a
        # CRC-passing but value-corrupt image must be rejected here with
        # the typed error — never handed to the kernel to segfault on.
        _check_payload_ranges(self._meta, payload)

    @property
    def fingerprint(self):
        return self._meta["fingerprint"]

    def image_for(self, pag):
        """Resolve this section against ``pag`` into a :class:`CsrImage`.

        Raises :class:`SnapshotError` when any node no longer exists or
        the fingerprint disagrees — the image describes a different
        program version and must not be installed.
        """
        meta = self._meta
        if meta["edge_counts"] != pag.edge_counts():
            raise SnapshotError("CSR image edge counts do not match this PAG")
        if meta["node_counts"] != pag.node_counts():
            raise SnapshotError("CSR image node counts do not match this PAG")
        if meta["fingerprint"] != pag_fingerprint(pag):
            raise SnapshotError("CSR image fingerprint does not match this PAG")
        nodes = [_resolve_compact(pag, wire) for wire in meta["nodes"]]
        image = CsrImage()
        image.n_nodes = meta["n_nodes"]
        image.nodes = nodes
        image.node_index = {node: i for i, node in enumerate(nodes)}
        payload = self._payload
        for name in _ARRAY_NAMES:
            off, count = meta["arrays"][name]
            image_view = payload[off : off + count * _ITEMSIZE].cast("i")
            setattr(image, name, image_view)
        off, count = meta["arrays"]["flags"]
        image.flags = payload[off : off + count]
        tokens = [intern_token(fld, fam) for fld, fam in meta["tokens"]]
        image.tokens = tokens
        saved_fid = {fld: i for i, fld in enumerate(meta["fields"])}
        image.tok_fid = {
            token: saved_fid.get(token[0], -1) for token in tokens
        }
        image.edge_counts = meta["edge_counts"]
        image.node_counts = meta["node_counts"]
        image.fingerprint = meta["fingerprint"]
        image.source = "mmap"
        # Pre-1.1 sections carry no kernel ABI stamp: the native
        # binding sees ``None``, refuses the image, and the engine
        # falls back to the pure-Python loops (answers unchanged).
        image.kernel_abi = meta.get("kernel_abi")
        image._buffer = self._buffer
        image._finalize()
        return image


def _resolve_compact(pag, wire):
    from repro.util.errors import IRError

    try:
        kind = wire[0]
        if kind == 0:
            return pag.find_local(wire[1], wire[2])
        if kind == 1:
            return pag.find_global(wire[1], wire[2])
        node = pag.object_node(wire[1])
    except IRError as exc:
        raise SnapshotError(f"CSR node does not resolve: {exc}") from None
    if node.class_name != wire[2]:
        raise SnapshotError(
            f"CSR object node {wire[1]!r} resolves to a different class"
        )
    return node


def _check_meta(meta, payload_len):
    if not isinstance(meta, dict):
        raise SnapshotError("CSR meta must be an object")
    for key in (
        "n_nodes",
        "nodes",
        "tokens",
        "fields",
        "edge_counts",
        "node_counts",
        "fingerprint",
        "itemsize",
        "arrays",
    ):
        if key not in meta:
            raise SnapshotError(f"CSR meta missing {key!r}")
    if meta["itemsize"] != _ITEMSIZE:
        raise SnapshotError(
            f"CSR image int width {meta['itemsize']} does not match this "
            f"host's {_ITEMSIZE}"
        )
    n = meta["n_nodes"]
    if not isinstance(n, int) or isinstance(n, bool) or n < 0:
        raise SnapshotError("CSR n_nodes must be a non-negative integer")
    for key in ("nodes", "tokens", "fields"):
        if not isinstance(meta[key], list):
            raise SnapshotError(f"CSR meta {key!r} must be an array")
    if len(meta["nodes"]) != n:
        raise SnapshotError("CSR node table length disagrees with n_nodes")
    if not all(isinstance(fld, str) for fld in meta["fields"]):
        raise SnapshotError("CSR field table entries must be strings")
    if not isinstance(meta["edge_counts"], dict) or not isinstance(
        meta["node_counts"], dict
    ):
        raise SnapshotError("CSR edge/node counts must be objects")
    if not isinstance(meta["fingerprint"], int):
        raise SnapshotError("CSR fingerprint must be an integer")
    abi = meta.get("kernel_abi")
    if abi is not None and (not isinstance(abi, int) or isinstance(abi, bool)):
        raise SnapshotError("CSR kernel_abi must be an integer when present")
    arrays = meta["arrays"]
    if not isinstance(arrays, dict):
        raise SnapshotError("CSR arrays meta must be an object")
    for name in _ARRAY_NAMES + ("flags",):
        entry = arrays.get(name)
        if (
            not isinstance(entry, list)
            or len(entry) != 2
            or not all(isinstance(v, int) and v >= 0 for v in entry)
        ):
            raise SnapshotError(f"CSR array {name!r} meta malformed")
        off, count = entry
        width = 1 if name == "flags" else _ITEMSIZE
        if off + count * width > payload_len:
            raise SnapshotError(f"CSR array {name!r} exceeds the payload")
        if name.endswith("_off") and count != n + 1:
            raise SnapshotError(f"CSR offsets {name!r} must have n_nodes+1 rows")
    if arrays["flags"][1] != n + 1:
        raise SnapshotError("CSR flags must have n_nodes+1 bytes")
    for i, wire in enumerate(meta["nodes"]):
        if not isinstance(wire, list) or len(wire) < 3 or wire[0] not in (0, 1, 2):
            raise SnapshotError(f"CSR node table entry {i} malformed")
    for i, token in enumerate(meta["tokens"]):
        if (
            not isinstance(token, list)
            or len(token) != 2
            or not isinstance(token[0], str)
            or token[1] not in (FAM_LOAD, FAM_STORE)
        ):
            raise SnapshotError(f"CSR token table entry {i} malformed")
    return meta


#: Which range every CSR value array's elements must lie in: node
#: indices, token-table indices, field-table indices, crossing op
#: codes.  ``*_site`` arrays are unconstrained (opaque call-site ids).
_NODE_VALUED = (
    "new_val", "as_val", "li_val", "at_val", "lf_val", "si_val", "sf_val",
    "cb_tgt", "cf_tgt",
)
_TOKEN_VALUED = ("li_tok", "sf_tok")
_FIELD_VALUED = ("lf_fid", "si_fid")
_OP_VALUED = ("cb_op", "cf_op")


def _check_payload_ranges(meta, payload):
    """Reject CRC-valid but value-corrupt images with a typed error.

    The pure-Python loops would raise ``IndexError`` (or silently
    misbehave) on an out-of-range index; the native kernel would read
    foreign memory.  Both are unacceptable failure modes for a snapshot
    load, so every offset array is checked for monotonicity and every
    value array for its domain before an image is ever built.  The
    kernel re-validates on its side (defense in depth), but this check
    is what turns corruption into :class:`SnapshotError` for pure-Python
    consumers too.
    """
    n = meta["n_nodes"]
    arrays = meta["arrays"]

    def values(name):
        off, count = arrays[name]
        return payload[off : off + count * _ITEMSIZE].cast("i").tolist()

    for group in _GROUPS:
        offs = values(group[0])
        if offs[0] != 0:
            raise SnapshotError(f"CSR offsets {group[0]!r} must start at 0")
        prev = 0
        for value in offs:
            if value < prev:
                raise SnapshotError(f"CSR offsets {group[0]!r} are not monotone")
            prev = value
        for name in group[1:]:
            if arrays[name][1] != prev:
                raise SnapshotError(
                    f"CSR array {name!r} length disagrees with its offsets"
                )

    def domain(names, upper, what):
        for name in names:
            data = values(name)
            if data and (min(data) < 0 or max(data) >= upper):
                raise SnapshotError(
                    f"CSR array {name!r} holds an out-of-range {what}"
                )

    domain(_NODE_VALUED, n, "node index")
    domain(_TOKEN_VALUED, len(meta["tokens"]), "token id")
    domain(_FIELD_VALUED, max(len(meta["fields"]), 1), "field id")
    domain(_OP_VALUED, OP_CLEAR + 1, "crossing op code")
