"""Translate a PIR program (plus a call graph) into a PAG.

Only methods reachable in the call graph contribute nodes and edges,
matching Table 3's "reachable parts" accounting.  The call graph may come
from the Andersen substrate (default, most precise) or from RTA.

Call sites whose caller and callee share a call-graph SCC are marked
recursive on the PAG; demand analyses cross their ``entry``/``exit`` edges
without pushing or popping context ("recursion cycles collapsed",
Section 5.1).
"""

from repro.callgraph.andersen import AndersenAnalysis
from repro.ir.types import ClassHierarchy
from repro.util.errors import IRError


def build_pag(program, call_graph=None, hierarchy=None):
    """Build the :class:`~repro.pag.graph.PAG` of ``program``.

    When ``call_graph`` is omitted the Andersen analysis is run first and
    its on-the-fly call graph is used (the Spark-style default).
    """
    from repro.pag.graph import PAG

    if not program.is_finalized:
        raise IRError("program must be finalized before building a PAG")
    if call_graph is None:
        call_graph = AndersenAnalysis(program).solve().call_graph
    if hierarchy is None:
        hierarchy = ClassHierarchy(program)

    pag = PAG(program, call_graph, hierarchy)
    reachable = call_graph.reachable_methods

    for method, stmt in program.statements():
        if method.qualified_name not in reachable:
            continue
        _add_statement_edges(pag, call_graph, program, method, stmt)

    for site_id in call_graph.recursive_sites:
        pag.mark_recursive_site(site_id)
    return pag


def _add_statement_edges(pag, call_graph, program, method, stmt):
    qname = method.qualified_name
    kind = stmt.kind
    if kind in ("alloc", "null"):
        obj = pag.object_node(stmt.object_id, stmt.class_name, qname)
        pag.add_new(obj, pag.local_var(qname, stmt.target))
    elif kind in ("copy", "cast"):
        pag.add_assign(pag.local_var(qname, stmt.source), pag.local_var(qname, stmt.target))
    elif kind == "load":
        pag.add_load(
            pag.local_var(qname, stmt.base), stmt.field, pag.local_var(qname, stmt.target)
        )
    elif kind == "store":
        pag.add_store(
            pag.local_var(qname, stmt.source), stmt.field, pag.local_var(qname, stmt.base)
        )
    elif kind == "staticget":
        pag.add_global_assign(
            pag.global_var(stmt.class_name, stmt.field), pag.local_var(qname, stmt.target)
        )
    elif kind == "staticput":
        pag.add_global_assign(
            pag.local_var(qname, stmt.source), pag.global_var(stmt.class_name, stmt.field)
        )
    elif kind == "call":
        _add_call_edges(pag, call_graph, program, method, stmt)
    elif kind == "return":
        pass  # exit edges are added per call site in _add_call_edges
    else:
        raise IRError(f"unknown statement kind {kind!r}")


def _add_call_edges(pag, call_graph, program, method, call):
    from repro.ir.ast import THIS

    caller = method.qualified_name
    for callee_qname in sorted(call_graph.targets(call.site_id)):
        callee = program.lookup_method(callee_qname)
        if call.is_virtual and not callee.is_static:
            pag.add_entry(
                pag.local_var(caller, call.receiver),
                call.site_id,
                pag.local_var(callee_qname, THIS),
            )
        for actual, formal in zip(call.args, callee.params):
            pag.add_entry(
                pag.local_var(caller, actual),
                call.site_id,
                pag.local_var(callee_qname, formal),
            )
        if call.target is not None:
            for ret in callee.return_statements():
                pag.add_exit(
                    pag.local_var(callee_qname, ret.source),
                    call.site_id,
                    pag.local_var(caller, call.target),
                )
