"""The Pointer Assignment Graph data structure.

All adjacency is stored in **value-flow direction** and exposed in both
directions, because demand traversals walk backward (state S1, computing
``pointsTo``) and forward (state S2, tracking an object):

====================  =======================================  =============
accessor              edges returned                           direction
====================  =======================================  =============
``new_sources(v)``    ``o --new--> v``                          into ``v``
``new_target(o)``     the unique ``o --new--> v``               out of ``o``
``assign_sources``    ``x --assign--> v``                       into ``v``
``assign_targets``    ``v --assign--> x``                       out of ``v``
``load_into(v)``      ``b --load(f)--> v`` as ``(b, f)``        into ``v``
``load_from(b)``      ``b --load(f)--> t`` as ``(f, t)``        out of ``b``
``store_into(b)``     ``x --store(f)--> b`` as ``(x, f)``       into ``b``
``store_from(x)``     ``x --store(f)--> b`` as ``(f, b)``       out of ``x``
``entry_into(p)``     ``a --entry_i--> p`` as ``(a, i)``        into ``p``
``entry_from(a)``     ``a --entry_i--> p`` as ``(i, p)``        out of ``a``
``exit_into(t)``      ``r --exit_i--> t`` as ``(r, i)``         into ``t``
``exit_from(r)``      ``r --exit_i--> t`` as ``(i, t)``         out of ``r``
``global_sources``    ``x --assignglobal--> v``                 into ``v``
``global_targets``    ``v --assignglobal--> x``                 out of ``v``
====================  =======================================  =============

Plus field-indexed views ``loads_of_field(f)`` / ``stores_of_field(f)``
used by REFINEPTS's field-based match edges, and the boundary predicates
``has_global_in`` / ``has_global_out`` / ``has_local_edges`` used by the
PPTA of DYNSUM.
"""

from repro.pag.edges import (
    ALL_EDGE_KINDS,
    ASSIGN,
    ASSIGN_GLOBAL,
    ENTRY,
    EXIT,
    LOAD,
    NEW,
    STORE,
)
from repro.cfl.rsm import FAM_LOAD, FAM_STORE
from repro.cfl.stacks import intern_token
from repro.pag.nodes import GlobalNode, LocalNode, ObjectNode
from repro.util.errors import IRError

_EMPTY = ()


class NodeAdjacency:
    """Precompiled adjacency record for one PAG node.

    The demand traversals are the repo's hot path, and the accessor-based
    PAG surface costs them 8+ method calls (each a dict probe) per
    visited state.  A record folds everything one state expansion needs
    into a single dict lookup plus attribute reads:

    * local edges, in the accessors' orientation and order, each item
      ending in the *target's record index* (for int-keyed visited
      sets) — ``assign_sources``/``assign_targets`` items are
      ``(x, xindex)``, ``load_from`` items ``(field, x, xindex)``,
      ``store_into`` items ``(x, field, xindex)``, and
      ``load_into``/``store_from`` items ``(base|field, …, token,
      index)`` where ``token`` is the interned ``(field, family)`` push
      entry, so the inner loops never build stack-entry tuples;
    * the boundary predicates (``has_global_in`` / ``has_global_out`` /
      ``has_local_edges``) as plain booleans;
    * the global edges the worklists cross (entry/exit/assignglobal,
      both directions), raw and as combined ``cross_*`` op lists.

    Records are immutable snapshots: :meth:`PAG.adjacency` compiles the
    map lazily and every edge insertion invalidates it.
    """

    __slots__ = (
        "new_sources",
        "assign_sources",
        "assign_targets",
        "load_into",
        "load_from",
        "store_into",
        "store_from",
        "has_global_in",
        "has_global_out",
        "has_local_edges",
        "exit_into",
        "entry_into",
        "global_sources",
        "entry_from",
        "exit_from",
        "global_targets",
        "cross_backward",
        "cross_forward",
        "index",
    )

    def __init__(self):
        #: Dense per-compile node index (-1 on the shared empty record);
        #: the worklists combine it with stack uids into all-int visited
        #: keys that hash without a Python-level __hash__ call.
        self.index = -1
        self.new_sources = _EMPTY
        self.assign_sources = _EMPTY
        self.assign_targets = _EMPTY
        self.load_into = _EMPTY
        self.load_from = _EMPTY
        self.store_into = _EMPTY
        self.store_from = _EMPTY
        self.has_global_in = False
        self.has_global_out = False
        self.has_local_edges = False
        self.exit_into = _EMPTY
        self.entry_into = _EMPTY
        self.global_sources = _EMPTY
        self.entry_from = _EMPTY
        self.exit_from = _EMPTY
        self.global_targets = _EMPTY
        self.cross_backward = _EMPTY
        self.cross_forward = _EMPTY


#: Ops of the combined crossing lists (``cross_backward`` /
#: ``cross_forward``): each item is ``(op, node, site, node_index)`` —
#: push the site, pop-or-empty against it, or clear the context
#: (``site`` is ``None``).  One tuple per direction, so the worklist
#: pays a single loop per boundary instead of three; ``node_index`` is
#: the target's :attr:`NodeAdjacency.index` for int-keyed visited sets.
CROSS_PUSH = 0
CROSS_POP = 1
CROSS_CLEAR = 2


#: Shared record for nodes with no edges at all (e.g. a freshly interned
#: variable): every field empty, every predicate False.
EMPTY_ADJACENCY = NodeAdjacency()


class PAG:
    """A finished pointer assignment graph.

    Build one with :func:`repro.pag.builder.build_pag`; direct use of the
    mutating ``add_*`` methods is for tests and synthetic graphs.
    """

    def __init__(self, program=None, call_graph=None, hierarchy=None):
        self.program = program
        self.call_graph = call_graph
        self.hierarchy = hierarchy

        self._locals = {}
        self._globals = {}
        self._objects = {}
        self._method_nodes = {}

        self._new_in = {}
        self._new_out = {}
        self._assign_in = {}
        self._assign_out = {}
        self._load_in = {}
        self._load_out = {}
        self._store_in = {}
        self._store_out = {}
        self._entry_in = {}
        self._entry_out = {}
        self._exit_in = {}
        self._exit_out = {}
        self._global_in = {}
        self._global_out = {}

        self._loads_by_field = {}
        self._stores_by_field = {}

        self._edge_counts = {kind: 0 for kind in ALL_EDGE_KINDS}
        self._edge_seen = set()
        self._recursive_sites = set()
        #: Lazily compiled node -> NodeAdjacency map (see
        #: :meth:`adjacency`); any edge insertion resets it.
        self._adjacency = None
        #: Lazily compiled CSR image (see :meth:`csr`); reset by edge
        #: insertion and by :meth:`mark_recursive_site` (the image folds
        #: the recursive bit into its cross-op codes).
        self._csr = None
        #: Compile counters, exposed so the warm-start path can assert
        #: it never recompiled (``csr_compiles == 0`` after an mmap
        #: install is the acceptance gate of the zero-copy path).
        self.adjacency_compiles = 0
        self.csr_compiles = 0

    # ------------------------------------------------------------------
    # node interning
    # ------------------------------------------------------------------
    def local_var(self, method_qname, name):
        """The unique :class:`LocalNode` for ``name`` in ``method_qname``."""
        key = (method_qname, name)
        node = self._locals.get(key)
        if node is None:
            node = LocalNode(method_qname, name)
            self._locals[key] = node
            self._method_nodes.setdefault(method_qname, []).append(node)
        return node

    def global_var(self, class_name, field):
        """The unique :class:`GlobalNode` for static ``class_name::field``."""
        key = (class_name, field)
        node = self._globals.get(key)
        if node is None:
            node = GlobalNode(class_name, field)
            self._globals[key] = node
        return node

    def object_node(self, object_id, class_name=None, method_qname=None):
        """The unique :class:`ObjectNode` for an allocation.

        Lookup-only when ``class_name`` is omitted.
        """
        node = self._objects.get(object_id)
        if node is None:
            if class_name is None:
                raise IRError(f"unknown object {object_id!r}")
            node = ObjectNode(object_id, class_name, method_qname)
            self._objects[object_id] = node
            if method_qname is not None:
                self._method_nodes.setdefault(method_qname, []).append(node)
        return node

    def find_local(self, method_qname, name):
        """Lookup-only variant of :meth:`local_var`; raises if absent."""
        try:
            return self._locals[(method_qname, name)]
        except KeyError:
            raise IRError(f"no PAG node for local {name!r} in {method_qname}") from None

    def find_global(self, class_name, field):
        """Lookup-only variant of :meth:`global_var`; raises if absent."""
        try:
            return self._globals[(class_name, field)]
        except KeyError:
            raise IRError(
                f"no PAG node for static field {class_name}::{field}"
            ) from None

    # ------------------------------------------------------------------
    # edge insertion (deduplicating)
    # ------------------------------------------------------------------
    def _note_edge(self, kind, signature):
        if signature in self._edge_seen:
            return False
        self._edge_seen.add(signature)
        self._edge_counts[kind] += 1
        self._adjacency = None
        self._csr = None
        return True

    def add_new(self, obj, target):
        """``obj --new--> target``; each object has exactly one such edge."""
        if not self._note_edge(NEW, (NEW, obj, target)):
            return
        existing = self._new_out.get(obj)
        if existing is not None and existing is not target:
            raise IRError(f"object {obj!r} already flows to {existing!r}")
        self._new_out[obj] = target
        self._new_in.setdefault(target, []).append(obj)

    def add_assign(self, source, target):
        """``source --assign--> target`` (local copy)."""
        if not self._note_edge(ASSIGN, (ASSIGN, source, target)):
            return
        self._assign_out.setdefault(source, []).append(target)
        self._assign_in.setdefault(target, []).append(source)

    def add_load(self, base, field, target):
        """``base --load(field)--> target`` for ``target = base.field``."""
        if not self._note_edge(LOAD, (LOAD, base, field, target)):
            return
        self._load_out.setdefault(base, []).append((field, target))
        self._load_in.setdefault(target, []).append((base, field))
        self._loads_by_field.setdefault(field, []).append((base, target))

    def add_store(self, value, field, base):
        """``value --store(field)--> base`` for ``base.field = value``."""
        if not self._note_edge(STORE, (STORE, value, field, base)):
            return
        self._store_out.setdefault(value, []).append((field, base))
        self._store_in.setdefault(base, []).append((value, field))
        self._stores_by_field.setdefault(field, []).append((value, base))

    def add_global_assign(self, source, target):
        """``source --assignglobal--> target`` (static read/write)."""
        if not self._note_edge(ASSIGN_GLOBAL, (ASSIGN_GLOBAL, source, target)):
            return
        self._global_out.setdefault(source, []).append(target)
        self._global_in.setdefault(target, []).append(source)

    def add_entry(self, actual, site_id, formal):
        """``actual --entry_i--> formal`` (parameter passing at site i)."""
        if not self._note_edge(ENTRY, (ENTRY, actual, site_id, formal)):
            return
        self._entry_out.setdefault(actual, []).append((site_id, formal))
        self._entry_in.setdefault(formal, []).append((actual, site_id))

    def add_exit(self, retvar, site_id, target):
        """``retvar --exit_i--> target`` (method return at site i)."""
        if not self._note_edge(EXIT, (EXIT, retvar, site_id, target)):
            return
        self._exit_out.setdefault(retvar, []).append((site_id, target))
        self._exit_in.setdefault(target, []).append((retvar, site_id))

    def mark_recursive_site(self, site_id):
        """Record that ``site_id`` participates in recursion; its
        entry/exit edges are crossed context-insensitively."""
        if site_id not in self._recursive_sites:
            self._recursive_sites.add(site_id)
            # Adjacency records test recursiveness live, but the CSR
            # image bakes it into its cross-op codes.
            self._csr = None

    # ------------------------------------------------------------------
    # adjacency accessors (value-flow direction documented per method)
    # ------------------------------------------------------------------
    def new_sources(self, var):
        return self._new_in.get(var, _EMPTY)

    def new_target(self, obj):
        return self._new_out.get(obj)

    def assign_sources(self, var):
        return self._assign_in.get(var, _EMPTY)

    def assign_targets(self, var):
        return self._assign_out.get(var, _EMPTY)

    def load_into(self, var):
        return self._load_in.get(var, _EMPTY)

    def load_from(self, base):
        return self._load_out.get(base, _EMPTY)

    def store_into(self, base):
        return self._store_in.get(base, _EMPTY)

    def store_from(self, value):
        return self._store_out.get(value, _EMPTY)

    def entry_into(self, formal):
        return self._entry_in.get(formal, _EMPTY)

    def entry_from(self, actual):
        return self._entry_out.get(actual, _EMPTY)

    def exit_into(self, target):
        return self._exit_in.get(target, _EMPTY)

    def exit_from(self, retvar):
        return self._exit_out.get(retvar, _EMPTY)

    def global_sources(self, var):
        return self._global_in.get(var, _EMPTY)

    def global_targets(self, var):
        return self._global_out.get(var, _EMPTY)

    def loads_of_field(self, field):
        """All ``(base, target)`` load edges labelled ``field``."""
        return self._loads_by_field.get(field, _EMPTY)

    def stores_of_field(self, field):
        """All ``(value, base)`` store edges labelled ``field``."""
        return self._stores_by_field.get(field, _EMPTY)

    # ------------------------------------------------------------------
    # boundary predicates used by the PPTA
    # ------------------------------------------------------------------
    def has_global_in(self, var):
        """True when a global edge flows *into* ``var`` (S1 boundary)."""
        return (
            var in self._global_in or var in self._entry_in or var in self._exit_in
        )

    def has_global_out(self, var):
        """True when a global edge flows *out of* ``var`` (S2 boundary)."""
        return (
            var in self._global_out or var in self._entry_out or var in self._exit_out
        )

    def has_local_edges(self, var):
        """True when ``var`` touches any local edge — the guard for
        skipping the PPTA entirely (Section 4.3)."""
        return (
            var in self._new_in
            or var in self._assign_in
            or var in self._assign_out
            or var in self._load_in
            or var in self._load_out
            or var in self._store_in
            or var in self._store_out
        )

    def is_recursive_site(self, site_id):
        return site_id in self._recursive_sites

    def recursive_sites(self):
        """The live set of recursive call-site ids — exposed so the hot
        worklists can test membership without a method call per edge."""
        return self._recursive_sites

    # ------------------------------------------------------------------
    # compiled adjacency (the traversal fast path)
    # ------------------------------------------------------------------
    def adjacency(self):
        """The node -> :class:`NodeAdjacency` map, compiled on demand.

        Nodes without any edge are deliberately absent — callers use
        ``adjacency().get(node)`` with :data:`EMPTY_ADJACENCY` as the
        fallback, so interning a new variable after compilation needs no
        invalidation.  Any ``add_*`` edge insertion resets the map.
        """
        compiled = self._adjacency
        if compiled is None:
            compiled = self._compile_adjacency()
            self._adjacency = compiled
            self.adjacency_compiles += 1
        return compiled

    def csr(self):
        """The CSR traversal image (:class:`~repro.pag.csr.CsrImage`),
        compiled on demand.

        Like :meth:`adjacency`, any ``add_*`` edge insertion resets it
        (and :meth:`mark_recursive_site` does too — the image folds the
        recursive bit into its cross-op codes).  Token and field ids
        come from the process-global intern pool, so recompiles and PAG
        rebuilds never renumber them.
        """
        image = self._csr
        if image is None:
            from repro.pag.csr import compile_csr

            image = compile_csr(self)
            self._csr = image
            self.csr_compiles += 1
        return image

    def install_csr(self, image):
        """Adopt a pre-built (typically mmap-loaded) CSR image.

        The image must describe exactly this graph — counts and edge
        fingerprint are verified, and a mismatch raises the typed
        :class:`~repro.api.protocol.SnapshotError` rather than ever
        letting a stale image answer queries.  Installation does not
        count as a compile (``csr_compiles`` is untouched): that counter
        is how the warm-start path proves it skipped recompilation.
        """
        from repro.api.protocol import SnapshotError

        if not image.matches(self):
            raise SnapshotError(
                "CSR image does not match this PAG (different program "
                "version); recompile instead of installing"
            )
        self._csr = image
        return image

    def _compile_adjacency(self):
        records = {}

        def record(node):
            rec = records.get(node)
            if rec is None:
                rec = NodeAdjacency()
                records[node] = rec
            return rec

        for target, sources in self._new_in.items():
            record(target).new_sources = tuple(sources)
        for target, sources in self._assign_in.items():
            record(target).assign_sources = tuple(sources)
            for source in sources:
                record(source)
        for source, targets in self._assign_out.items():
            record(source).assign_targets = tuple(targets)
            for target in targets:
                record(target)
        for target, pairs in self._load_in.items():
            record(target).load_into = tuple(
                (base, field, intern_token(field, FAM_LOAD))
                for base, field in pairs
            )
            for base, _field in pairs:
                record(base)
        for base, pairs in self._load_out.items():
            record(base).load_from = tuple(pairs)
            for _field, target in pairs:
                record(target)
        for base, pairs in self._store_in.items():
            record(base).store_into = tuple(pairs)
            for value, _field in pairs:
                record(value)
        for value, pairs in self._store_out.items():
            record(value).store_from = tuple(
                (field, base, intern_token(field, FAM_STORE))
                for field, base in pairs
            )
            for _field, base in pairs:
                record(base)
        for target, pairs in self._exit_in.items():
            record(target).exit_into = tuple(pairs)
        for formal, pairs in self._entry_in.items():
            record(formal).entry_into = tuple(pairs)
        for target, sources in self._global_in.items():
            record(target).global_sources = tuple(sources)
        for actual, pairs in self._entry_out.items():
            record(actual).entry_from = tuple(pairs)
        for retvar, pairs in self._exit_out.items():
            record(retvar).exit_from = tuple(pairs)
        for source, targets in self._global_out.items():
            record(source).global_targets = tuple(targets)

        for index, (node, rec) in enumerate(records.items()):
            rec.index = index
            rec.has_global_in = self.has_global_in(node)
            rec.has_global_out = self.has_global_out(node)
            rec.has_local_edges = self.has_local_edges(node)

        def target_index(node):
            # Every traversal target is an edge endpoint, so it always
            # has a record of its own (ensured above).
            return records[node].index

        # Second pass: append each local-edge target's index, so the
        # PPTA can key its visited set on ints.
        for rec in records.values():
            rec.assign_sources = tuple(
                (x, target_index(x)) for x in rec.assign_sources
            )
            rec.assign_targets = tuple(
                (x, target_index(x)) for x in rec.assign_targets
            )
            rec.load_into = tuple(
                (base, field, token, target_index(base))
                for base, field, token in rec.load_into
            )
            rec.load_from = tuple(
                (field, x, target_index(x)) for field, x in rec.load_from
            )
            rec.store_into = tuple(
                (x, field, target_index(x)) for x, field in rec.store_into
            )
            rec.store_from = tuple(
                (field, base, token, target_index(base))
                for field, base, token in rec.store_from
            )

        for rec in records.values():
            # Combined crossing lists, in the order the worklists cross
            # edges: exits/entries first, then the context-clearing
            # assignglobal hops.
            rec.cross_backward = tuple(
                [
                    (CROSS_PUSH, retvar, site, target_index(retvar))
                    for retvar, site in rec.exit_into
                ]
                + [
                    (CROSS_POP, actual, site, target_index(actual))
                    for actual, site in rec.entry_into
                ]
                + [
                    (CROSS_CLEAR, y, None, target_index(y))
                    for y in rec.global_sources
                ]
            )
            rec.cross_forward = tuple(
                [
                    (CROSS_PUSH, formal, site, target_index(formal))
                    for site, formal in rec.entry_from
                ]
                + [
                    (CROSS_POP, target, site, target_index(target))
                    for site, target in rec.exit_from
                ]
                + [
                    (CROSS_CLEAR, y, None, target_index(y))
                    for y in rec.global_targets
                ]
            )
        return records

    # ------------------------------------------------------------------
    # whole-graph views
    # ------------------------------------------------------------------
    def local_var_nodes(self):
        return list(self._locals.values())

    def global_var_nodes(self):
        return list(self._globals.values())

    def object_nodes(self):
        return list(self._objects.values())

    def nodes_of_method(self, method_qname):
        """All V and O nodes owned by ``method_qname``."""
        return list(self._method_nodes.get(method_qname, _EMPTY))

    def methods(self):
        return list(self._method_nodes)

    def edge_counts(self):
        """Edge counts by kind (deduplicated edges)."""
        return dict(self._edge_counts)

    def node_counts(self):
        return {
            "O": len(self._objects),
            "V": len(self._locals),
            "G": len(self._globals),
        }

    def locality(self):
        """Fraction of local edges among all edges — Table 3's metric."""
        counts = self._edge_counts
        local = counts[NEW] + counts[ASSIGN] + counts[LOAD] + counts[STORE]
        total = sum(counts.values())
        return local / total if total else 0.0

    def iter_edges(self):
        """Yield ``(kind, source, label, target)`` for every edge; the
        label is a field name, a call-site id, or ``None``."""
        for obj, target in self._new_out.items():
            yield NEW, obj, None, target
        for source, targets in self._assign_out.items():
            for target in targets:
                yield ASSIGN, source, None, target
        for base, pairs in self._load_out.items():
            for field, target in pairs:
                yield LOAD, base, field, target
        for value, pairs in self._store_out.items():
            for field, base in pairs:
                yield STORE, value, field, base
        for source, targets in self._global_out.items():
            for target in targets:
                yield ASSIGN_GLOBAL, source, None, target
        for actual, pairs in self._entry_out.items():
            for site_id, formal in pairs:
                yield ENTRY, actual, site_id, formal
        for retvar, pairs in self._exit_out.items():
            for site_id, target in pairs:
                yield EXIT, retvar, site_id, target

    def __repr__(self):
        nodes = self.node_counts()
        return (
            f"PAG(V={nodes['V']}, G={nodes['G']}, O={nodes['O']}, "
            f"edges={sum(self._edge_counts.values())}, "
            f"locality={self.locality():.1%})"
        )
