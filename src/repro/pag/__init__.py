"""Pointer Assignment Graph (PAG) — the program representation of Section 2.

Nodes are local variables (V), global/static variables (G) and abstract
objects (O); edges are the seven kinds of Figure 1, all stored in
**value-flow direction**.  Edges split into *local* kinds
(``new``/``assign``/``load``/``store`` — confined to one method, no effect
on calling context) and *global* kinds
(``assignglobal``/``entry_i``/``exit_i`` — cross method boundaries, no
effect on field-sensitivity).  That split is the foundation of DYNSUM's
partial points-to analysis.
"""

from repro.pag.builder import build_pag
from repro.pag.dot import to_dot
from repro.pag.edges import (
    ASSIGN,
    ASSIGN_GLOBAL,
    ENTRY,
    EXIT,
    GLOBAL_EDGE_KINDS,
    LOAD,
    LOCAL_EDGE_KINDS,
    NEW,
    STORE,
)
from repro.pag.graph import PAG
from repro.pag.nodes import GlobalNode, LocalNode, Node, ObjectNode
from repro.pag.stats import PagStatistics, compute_statistics

__all__ = [
    "ASSIGN",
    "ASSIGN_GLOBAL",
    "ENTRY",
    "EXIT",
    "GLOBAL_EDGE_KINDS",
    "GlobalNode",
    "LOAD",
    "LOCAL_EDGE_KINDS",
    "LocalNode",
    "NEW",
    "Node",
    "ObjectNode",
    "PAG",
    "PagStatistics",
    "STORE",
    "build_pag",
    "compute_statistics",
    "to_dot",
]
