"""PAG node types: local variables (V), globals (G) and objects (O).

Nodes are interned by the :class:`~repro.pag.graph.PAG` — exactly one
instance exists per program entity — so equality and hashing use object
identity, which keeps the hot traversal loops cheap.

Every node carries a precomputed ``sort_key``: a structural
``(kind, owner, name)`` tuple that orders nodes deterministically across
processes and ``PYTHONHASHSEED`` values without paying a ``repr()`` per
comparison.  Summary canonicalization (boundary ordering in
:mod:`repro.analysis.ppta`, the STASUM tables) sorts on it.
"""

#: ``sort_key`` kind discriminants — sorted order is G < O < V.
_KIND_GLOBAL = 0
_KIND_OBJECT = 1
_KIND_LOCAL = 2


class Node:
    """Base class for PAG nodes.

    ``method`` is the qualified name of the owning method for local
    variables and objects (objects belong to their allocating method),
    and ``None`` for globals, which are context-insensitive.
    """

    __slots__ = ("method", "sort_key")

    is_local_var = False
    is_global_var = False
    is_object = False

    def __init__(self, method):
        self.method = method


class LocalNode(Node):
    """A local variable of one method (a V node)."""

    __slots__ = ("name",)

    is_local_var = True

    def __init__(self, method, name):
        super().__init__(method)
        self.name = name
        self.sort_key = (_KIND_LOCAL, method, name)

    def __repr__(self):
        return f"{self.name}@{self.method}"


class GlobalNode(Node):
    """A static field (a G node); context-insensitive by definition."""

    __slots__ = ("class_name", "field")

    is_global_var = True

    def __init__(self, class_name, field):
        super().__init__(None)
        self.class_name = class_name
        self.field = field
        self.sort_key = (_KIND_GLOBAL, class_name, field)

    def __repr__(self):
        return f"{self.class_name}::{self.field}"


class ObjectNode(Node):
    """An abstract object (an O node) — one per allocation statement."""

    __slots__ = ("object_id", "class_name")

    is_object = True

    def __init__(self, object_id, class_name, method):
        super().__init__(method)
        self.object_id = object_id
        self.class_name = class_name
        self.sort_key = (_KIND_OBJECT, object_id, class_name)

    def __repr__(self):
        return f"{self.object_id}:{self.class_name}"
