"""Graphviz export of a PAG, in the style of the paper's Figure 2.

Local edges are drawn solid, global edges dashed; objects are boxes,
globals are diamonds, locals are plain ellipses.  Useful for debugging
small programs — the motivating-example test renders Figure 2 this way.
"""

from repro.pag.edges import ASSIGN_GLOBAL, ENTRY, EXIT, LOAD, NEW, STORE


def _node_id(node, ids):
    if node not in ids:
        ids[node] = f"n{len(ids)}"
    return ids[node]


def _node_decl(node, node_id):
    label = repr(node).replace('"', "'")
    if node.is_object:
        shape = "box"
    elif node.is_global_var:
        shape = "diamond"
    else:
        shape = "ellipse"
    return f'  {node_id} [label="{label}", shape={shape}];'


def to_dot(pag, graph_name="pag"):
    """Render ``pag`` as Graphviz DOT text."""
    ids = {}
    decls = []
    edges = []
    for kind, source, label, target in pag.iter_edges():
        src_id = _node_id(source, ids)
        dst_id = _node_id(target, ids)
        attrs = _edge_attrs(kind, label)
        edges.append(f"  {src_id} -> {dst_id} [{attrs}];")
    for node, node_id in ids.items():
        decls.append(_node_decl(node, node_id))
    body = "\n".join(decls + edges)
    return f"digraph {graph_name} {{\n  rankdir=BT;\n{body}\n}}\n"


def _edge_attrs(kind, label):
    if kind == NEW:
        return 'label="new", style=solid'
    if kind == LOAD:
        return f'label="ld({label})", style=solid'
    if kind == STORE:
        return f'label="st({label})", style=solid'
    if kind == ENTRY:
        return f'label="entry{label}", style=dashed'
    if kind == EXIT:
        return f'label="exit{label}", style=dashed'
    if kind == ASSIGN_GLOBAL:
        return 'label="assignglobal", style=dashed'
    return 'label="assign", style=solid'
