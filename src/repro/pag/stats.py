"""PAG statistics — the per-benchmark rows of the paper's Table 3.

For each program we report the number of reachable methods, node counts by
kind (O/V/G), edge counts by kind, and the *locality* metric: the fraction
of local (``new``/``assign``/``load``/``store``) edges among all edges.
The paper measures 80–90% locality on real Java programs, which is what
makes local-reachability reuse profitable; the synthetic suite reproduces
that range.
"""

from dataclasses import dataclass

from repro.pag.edges import (
    ASSIGN,
    ASSIGN_GLOBAL,
    ENTRY,
    EXIT,
    LOAD,
    NEW,
    STORE,
)


@dataclass(frozen=True)
class PagStatistics:
    """One Table 3 row (query counts are appended by the harness)."""

    name: str
    methods: int
    objects: int
    local_vars: int
    global_vars: int
    new_edges: int
    assign_edges: int
    load_edges: int
    store_edges: int
    entry_edges: int
    exit_edges: int
    assignglobal_edges: int
    locality: float

    @property
    def total_edges(self):
        return (
            self.new_edges
            + self.assign_edges
            + self.load_edges
            + self.store_edges
            + self.entry_edges
            + self.exit_edges
            + self.assignglobal_edges
        )

    @property
    def total_nodes(self):
        return self.objects + self.local_vars + self.global_vars

    def as_row(self):
        """Values in Table 3 column order."""
        return (
            self.name,
            self.methods,
            self.objects,
            self.local_vars,
            self.global_vars,
            self.new_edges,
            self.assign_edges,
            self.load_edges,
            self.store_edges,
            self.entry_edges,
            self.exit_edges,
            self.assignglobal_edges,
            f"{self.locality:.1%}",
        )


def compute_statistics(pag, name="program"):
    """Compute the :class:`PagStatistics` of a built PAG."""
    nodes = pag.node_counts()
    edges = pag.edge_counts()
    n_methods = (
        len(pag.call_graph.reachable_methods)
        if pag.call_graph is not None
        else len(pag.methods())
    )
    return PagStatistics(
        name=name,
        methods=n_methods,
        objects=nodes["O"],
        local_vars=nodes["V"],
        global_vars=nodes["G"],
        new_edges=edges[NEW],
        assign_edges=edges[ASSIGN],
        load_edges=edges[LOAD],
        store_edges=edges[STORE],
        entry_edges=edges[ENTRY],
        exit_edges=edges[EXIT],
        assignglobal_edges=edges[ASSIGN_GLOBAL],
        locality=pag.locality(),
    )
