"""SafeCast — downcast safety checking (Section 5.2, as in [15]).

For every cast statement ``x = (T) y`` the client queries ``pointsTo(y)``
and declares the cast safe when every object that may flow into ``y`` has
a class that is a subtype of ``T`` (the null pseudo-class passes: casting
null never throws).  Offending objects are reported in the verdict.

The target class rides in the query payload, so under the engine's batch
path two casts of the same variable to *different* classes share one
traversal for predicate-blind analyses (the points-to set is the same;
only the verdict differs) but are kept apart under REFINEPTS, whose
early-exit answer depends on the predicate.
"""

from repro.clients.base import Client, Query


class SafeCastClient(Client):
    name = "SafeCast"

    def queries(self):
        """One query per cast statement in a reachable method."""
        pag = self.pag
        reachable = pag.call_graph.reachable_methods
        result = []
        for method, stmt in pag.program.statements():
            if stmt.kind != "cast" or method.qualified_name not in reachable:
                continue
            result.append(
                Query(
                    client=self.name,
                    method=method.qualified_name,
                    var=stmt.source,
                    description=f"cast to {stmt.class_name} at {method.qualified_name}",
                    payload=(stmt.class_name,),
                )
            )
        return result

    def predicate(self, query):
        (target_class,) = query.payload
        hierarchy = self.pag.hierarchy

        def satisfied(objects):
            return all(
                hierarchy.is_subtype(obj.class_name, target_class) for obj in objects
            )

        return satisfied

    def offenders(self, query, objects):
        (target_class,) = query.payload
        hierarchy = self.pag.hierarchy
        return [
            obj
            for obj in objects
            if not hierarchy.is_subtype(obj.class_name, target_class)
        ]
