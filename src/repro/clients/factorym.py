"""FactoryM — factory-method freshness checking (Section 5.2, as in [15]).

Following Sridharan & Bodík, a factory method is well-behaved when every
object its return value may point to is allocated *inside* the method or
one of its transitive callees — i.e. the factory hands out fresh objects
rather than leaking shared state.

Factory candidates are recognised by name prefix (``create``/``make``/
``new``/``build``/``get_instance`` by default, configurable) among
reachable methods with at least one ``return``; each return statement
contributes one query on the returned variable.  The factory's name
rides in the payload (it determines the allowed-allocation set), so the
engine's batch scheduler merges only returns of the same variable from
the same factory — exactly the queries whose answers and verdicts
coincide.
"""

from collections import deque

from repro.clients.base import Client, Query

DEFAULT_PREFIXES = ("create", "make", "new", "build", "spawn")


class FactoryMethodClient(Client):
    name = "FactoryM"

    def __init__(self, pag, prefixes=DEFAULT_PREFIXES):
        super().__init__(pag)
        self.prefixes = tuple(prefixes)
        self._allowed_cache = {}

    def _is_factory(self, method):
        return method.name.startswith(self.prefixes) and method.return_statements()

    def queries(self):
        """One query per return statement of each factory candidate."""
        pag = self.pag
        reachable = pag.call_graph.reachable_methods
        result = []
        for method in pag.program.methods():
            qname = method.qualified_name
            if qname not in reachable or not self._is_factory(method):
                continue
            for index, ret in enumerate(method.return_statements()):
                result.append(
                    Query(
                        client=self.name,
                        method=qname,
                        var=ret.source,
                        description=f"return #{index} of factory {qname}",
                        payload=(qname,),
                    )
                )
        return result

    def _allowed_methods(self, factory_qname):
        """The factory and its transitive callees — the methods whose
        allocations count as "fresh" for this factory."""
        cached = self._allowed_cache.get(factory_qname)
        if cached is not None:
            return cached
        call_graph = self.pag.call_graph
        allowed = {factory_qname}
        queue = deque([factory_qname])
        while queue:
            current = queue.popleft()
            for callee in call_graph.method_successors(current):
                if callee not in allowed:
                    allowed.add(callee)
                    queue.append(callee)
        self._allowed_cache[factory_qname] = allowed
        return allowed

    def predicate(self, query):
        (factory_qname,) = query.payload
        allowed = self._allowed_methods(factory_qname)

        def satisfied(objects):
            return all(obj.method in allowed for obj in objects)

        return satisfied

    def offenders(self, query, objects):
        (factory_qname,) = query.payload
        allowed = self._allowed_methods(factory_qname)
        return [obj for obj in objects if obj.method not in allowed]
