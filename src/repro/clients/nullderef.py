"""NullDeref — null-dereference detection (Section 5.2).

Every dereference site — the base of a field load, the base of a field
store, and the receiver of a virtual call — is queried; the dereference
is proven safe when no null object can flow into the base.  PIR models
each ``x = null`` as an allocation of a distinct :data:`NULL_CLASS`
object, so "can be null" is simply "points to a null-class object", and
the verdict can name the offending null assignment.

This is the paper's precision-hungry client: proving non-nullness usually
needs the fully field-sensitive answer, so REFINEPTS's field-based
iterations are pure overhead here, which is why the paper's largest
DYNSUM speedups (2.28x average, 4.19x on soot-c) are on NullDeref.

It is also the client that profits most from the engine's batch
scheduler: a method typically dereferences the same base variable many
times (``x.f``, ``x.g``, ``x.m()``), the queries carry no payload, and
so whole runs of sites collapse onto one traversal under
``engine.query_batch``.
"""

from repro.clients.base import Client, Query
from repro.ir.ast import NULL_CLASS


class NullDerefClient(Client):
    name = "NullDeref"

    def queries(self):
        """One query per dereference site in a reachable method.

        Dereferences of ``this`` are skipped: the receiver of an
        executing method can never be null in Java, so a real client
        would not spend analysis budget proving it.
        """
        from repro.ir.ast import THIS

        pag = self.pag
        reachable = pag.call_graph.reachable_methods
        result = []
        for method, stmt in pag.program.statements():
            qname = method.qualified_name
            if qname not in reachable:
                continue
            base = None
            what = None
            if stmt.kind == "load":
                base, what = stmt.base, f"load .{stmt.field}"
            elif stmt.kind == "store":
                base, what = stmt.base, f"store .{stmt.field}"
            elif stmt.kind == "call" and stmt.is_virtual:
                base, what = stmt.receiver, f"call .{stmt.method_name}()"
            if base is None or base == THIS:
                continue
            result.append(
                Query(
                    client=self.name,
                    method=qname,
                    var=base,
                    description=f"{what} on {base!r} in {qname}",
                )
            )
        return result

    def predicate(self, query):
        def satisfied(objects):
            return all(obj.class_name != NULL_CLASS for obj in objects)

        return satisfied

    def offenders(self, query, objects):
        return [obj for obj in objects if obj.class_name == NULL_CLASS]
