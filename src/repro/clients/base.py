"""Client framework: queries, predicates and verdicts.

A *client* turns a program analysis question ("is this cast safe?") into
points-to queries plus a decision procedure.  The contract has three
parts:

``queries(pag)``
    Enumerate the :class:`Query` sites of the client in the reachable
    program, deterministically ordered (the harness batches them in this
    order, like the paper's 10-batch protocol).

``predicate(query)``
    Return a satisfaction predicate ``objects -> bool`` used by
    REFINEPTS's refinement loop.  Predicates must be **monotone
    downward**: if a set of objects satisfies the predicate, every subset
    must too.  All three paper clients are universally quantified
    ("every object that may flow here is benign"), which has this
    property.

``verdict(query, result)``
    Interpret a finished :class:`~repro.analysis.base.QueryResult` as a
    :class:`Verdict` — ``safe``, ``violation`` or ``unknown`` (the
    conservative answer when the query ran out of budget).

Clients plug into the engine layer through :meth:`Client.specs`, which
bundles each query's node and predicate into an engine
:class:`~repro.engine.scheduler.QuerySpec` (the dedup token is
``(client_name, payload)``, so the scheduler may merge queries exactly
when their predicates are semantically identical), and
:meth:`Client.run_engine`, which issues a whole workload as one batch.
"""

from dataclasses import dataclass, field

SAFE = "safe"
VIOLATION = "violation"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Query:
    """One client query site.

    ``method`` and ``var`` name the queried PAG variable;
    ``description`` is a human-readable site label; ``payload`` carries
    client-specific data (e.g. the cast's target class).
    """

    client: str
    method: str
    var: str
    description: str = ""
    payload: tuple = ()

    def node(self, pag):
        """Resolve the queried PAG node."""
        return pag.find_local(self.method, self.var)


@dataclass(frozen=True)
class Verdict:
    """The client's conclusion for one query."""

    query: Query
    status: str  # SAFE | VIOLATION | UNKNOWN
    details: tuple = field(default_factory=tuple)

    @property
    def is_safe(self):
        return self.status == SAFE

    def to_wire(self):
        """The verdict as a :class:`~repro.api.protocol.WireVerdict`:
        offending objects reduce to their stable allocation labels, so
        the verdict survives serialization and process restarts."""
        from repro.api.protocol import WireVerdict

        return WireVerdict(
            client=self.query.client,
            status=self.status,
            offenders=tuple(
                sorted(str(getattr(obj, "object_id", obj)) for obj in self.details)
            ),
        )


class Client:
    """Base class; subclasses implement the three-method contract."""

    name = "client"

    def __init__(self, pag):
        self.pag = pag

    def queries(self):
        raise NotImplementedError

    def predicate(self, query):
        raise NotImplementedError

    def verdict(self, query, result):
        """Default verdict logic shared by all universally quantified
        clients: a complete result that satisfies the predicate is safe;
        a complete result that fails it is a violation; an incomplete
        result is unknown unless it already fails (a sound partial
        result can only *add* objects, so failures are definitive)."""
        predicate = self.predicate(query)
        offenders = self.offenders(query, result.objects)
        if offenders:
            return Verdict(query, VIOLATION, tuple(sorted(offenders, key=repr)))
        if not result.complete:
            return Verdict(query, UNKNOWN)
        assert predicate(result.objects)
        return Verdict(query, SAFE)

    def offenders(self, query, objects):
        """Objects violating the property (empty iff predicate holds)."""
        raise NotImplementedError

    def run(self, analysis, queries=None):
        """Issue all (or the given) queries against ``analysis`` and
        return the verdict list — the harness's inner loop."""
        verdicts = []
        for query in queries if queries is not None else self.queries():
            node = query.node(self.pag)
            result = analysis.points_to(node, client=self.predicate(query))
            verdicts.append(self.verdict(query, result))
        return verdicts

    def specs(self, queries=None):
        """Engine :class:`~repro.engine.scheduler.QuerySpec`\\ s for (all)
        queries, with predicates and dedup tokens bundled."""
        from repro.engine.scheduler import QuerySpec

        return [
            QuerySpec(
                query.node(self.pag),
                client=self.predicate(query),
                token=(query.client, query.payload),
                origin=query,
            )
            for query in (queries if queries is not None else self.queries())
        ]

    def run_engine(self, engine, queries=None, **batch_kwargs):
        """Issue all (or the given) queries as one engine batch.

        Returns ``(verdicts, batch_result)`` — verdicts in query order
        (batch scheduling is invisible to the caller), plus the batch's
        :class:`~repro.engine.scheduler.BatchStats` accounting.
        """
        queries = list(queries if queries is not None else self.queries())
        batch = engine.query_batch(self.specs(queries), **batch_kwargs)
        verdicts = [
            self.verdict(query, result)
            for query, result in zip(queries, batch.results)
        ]
        return verdicts, batch
