"""The paper's three demand clients (Section 5.2).

* :class:`~repro.clients.safecast.SafeCastClient` — proves downcasts safe;
* :class:`~repro.clients.nullderef.NullDerefClient` — proves dereferences
  non-null (the precision-hungry client that benefits most from DYNSUM);
* :class:`~repro.clients.factorym.FactoryMethodClient` — proves factory
  methods return freshly allocated objects (as in Sridharan & Bodík).

Each client enumerates its query sites from the reachable program, builds
a *monotone* satisfaction predicate per query (so REFINEPTS may stop
refining early: if an over-approximate points-to set satisfies the
predicate, every subset does too), and renders a final verdict from the
analysis result.
"""

from repro.clients.base import Client, Query, Verdict
from repro.clients.factorym import FactoryMethodClient
from repro.clients.nullderef import NullDerefClient
from repro.clients.safecast import SafeCastClient

ALL_CLIENTS = (SafeCastClient, NullDerefClient, FactoryMethodClient)

__all__ = [
    "ALL_CLIENTS",
    "Client",
    "FactoryMethodClient",
    "NullDerefClient",
    "Query",
    "SafeCastClient",
    "Verdict",
]
