"""Demand-driven points-to analyses.

Four analyses share the PAG and the CFL machinery (Table 2 of the paper):

* :class:`~repro.analysis.norefine.NoRefine` — fully field-sensitive,
  context-sensitive CFL-reachability, no memoization (the paper's
  NOREFINE);
* :class:`~repro.analysis.refinepts.RefinePts` — Sridharan & Bodík's
  refinement-based analysis (Algorithms 1–2): starts field-based with
  *match edges*, refines on demand, caches only within a query;
* :class:`~repro.analysis.dynsum.DynSum` — the paper's contribution
  (Algorithms 3–4): PPTA summaries of local edges, cached
  context-independently across queries;
* :class:`~repro.analysis.stasum.StaSum` — static whole-program summaries
  computed offline (Yan et al.), bounded by a user threshold.

Plus :class:`~repro.analysis.cipta.ContextInsensitivePta`, the
context-insensitive formulation of Sridharan et al. (OOPSLA'05), used as a
baseline and in soundness tests.
"""

from repro.analysis.base import (
    AliasResult,
    AnalysisConfig,
    DemandPointsToAnalysis,
    QueryResult,
)
from repro.analysis.cipta import ContextInsensitivePta
from repro.analysis.incremental import EditReport, IncrementalAnalysisSession
from repro.analysis.dynsum import DynSum
from repro.analysis.norefine import NoRefine
from repro.analysis.ppta import PptaResult, run_ppta
from repro.analysis.refinepts import RefinePts
from repro.analysis.stasum import StaSum
from repro.analysis.summaries import (
    BoundedSummaryCache,
    CacheStats,
    CostAwareSummaryCache,
    ShardedSummaryCache,
    SummaryBackend,
    SummaryCache,
    SummaryStore,
)
from repro.analysis.trace import QueryTracer, TraceStep, format_trace

__all__ = [
    "AliasResult",
    "AnalysisConfig",
    "BoundedSummaryCache",
    "CacheStats",
    "CostAwareSummaryCache",
    "EditReport",
    "IncrementalAnalysisSession",
    "ContextInsensitivePta",
    "DemandPointsToAnalysis",
    "DynSum",
    "NoRefine",
    "PptaResult",
    "QueryResult",
    "RefinePts",
    "QueryTracer",
    "StaSum",
    "TraceStep",
    "format_trace",
    "ShardedSummaryCache",
    "SummaryBackend",
    "SummaryCache",
    "SummaryStore",
    "run_ppta",
]
