"""Context-insensitive demand-driven points-to analysis (OOPSLA'05 style).

The precursor to REFINEPTS (Sridharan et al., "Demand-Driven Points-to
Analysis for Java"): field-sensitive via the balanced-parentheses LFT
language, but **context-insensitive** — global assignment, call entry and
call exit edges are all treated as plain ``assign`` edges (Section 3.2 of
the paper).

It serves three purposes here:

* a baseline documenting what context-sensitivity buys;
* a soundness envelope in tests — for every completed query,
  context-sensitive answers must be a subset of this analysis's answers,
  which in turn must be a subset of Andersen's;
* the local building block the reader can compare against the PPTA (this
  is the same RSM, applied to *all* edges instead of local ones).
"""

from collections import deque

from repro.analysis.base import (
    DemandPointsToAnalysis,
    QueryResult,
    check_query_node,
)
from repro.cfl.rsm import FAM_LOAD, FAM_STORE, S1, S2
from repro.cfl.stacks import EMPTY_STACK
from repro.util.errors import BudgetExceededError


class ContextInsensitivePta(DemandPointsToAnalysis):
    """Field-sensitive, context-insensitive demand analysis."""

    name = "CIPTA"
    full_precision = False  # context-insensitive
    memoization = "none"
    reuse = "none"
    on_demand = "yes"

    def _run_query(self, var, context, client):
        check_query_node(self.pag, var)
        budget = self.config.new_budget()
        pairs = set()
        complete = True
        try:
            self._explore(var, pairs, budget)
        except BudgetExceededError:
            complete = False
        return QueryResult(var, pairs, complete, budget.steps)

    def _explore(self, var, pairs, budget):
        pag = self.pag
        depth_limit = self.config.max_field_depth
        start = (var, EMPTY_STACK, S1)
        seen = {start}
        worklist = deque([start])

        def propagate(node, fstack, state):
            item = (node, fstack, state)
            if item not in seen:
                seen.add(item)
                worklist.append(item)

        def check_depth(fstack):
            if depth_limit is not None and len(fstack) >= depth_limit:
                raise BudgetExceededError(budget.limit)

        while worklist:
            v, f, s = worklist.popleft()
            budget.charge()
            if s == S1:
                new_sources = pag.new_sources(v)
                if new_sources:
                    if f.is_empty:
                        pairs.update((obj, EMPTY_STACK) for obj in new_sources)
                    else:
                        propagate(v, f, S2)
                for x in self._backward_assign_like(v):
                    propagate(x, f, S1)
                for base, g in pag.load_into(v):
                    check_depth(f)
                    propagate(base, f.push((g, FAM_LOAD)), S1)
            else:
                for x in self._forward_assign_like(v):
                    propagate(x, f, S2)
                top = f.peek()
                if top is not None:
                    top_field = top[0]
                    for g, x in pag.load_from(v):
                        if g == top_field:
                            propagate(x, f.pop(), S2)
                    if top[1] == FAM_LOAD:
                        for x, g in pag.store_into(v):
                            if g == top_field:
                                propagate(x, f.pop(), S1)
                for g, b in pag.store_from(v):
                    check_depth(f)
                    propagate(b, f.push((g, FAM_STORE)), S1)

    def _backward_assign_like(self, v):
        """All edges into ``v`` that act as assignments here: local
        assigns, global assigns, entries and exits."""
        pag = self.pag
        for x in pag.assign_sources(v):
            yield x
        for x in pag.global_sources(v):
            yield x
        for actual, _site in pag.entry_into(v):
            yield actual
        for retvar, _site in pag.exit_into(v):
            yield retvar

    def _forward_assign_like(self, v):
        pag = self.pag
        for x in pag.assign_targets(v):
            yield x
        for x in pag.global_targets(v):
            yield x
        for _site, formal in pag.entry_from(v):
            yield formal
        for _site, target in pag.exit_from(v):
            yield target
