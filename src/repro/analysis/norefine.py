"""NOREFINE — field-sensitive, context-sensitive demand analysis, no reuse.

This is the paper's NOREFINE configuration (Table 2): the
Sridharan-Bodík analysis with *neither* refinement *nor* ad-hoc caching.
Every heap access is treated field-sensitively from the start, call
entries/exits are matched context-sensitively, and nothing is remembered
across queries.

The implementation is a worklist over exploded states
``(node, field-stack, S1|S2, context)`` applying the transition table of
DESIGN.md §2 one PAG edge at a time.  A per-query ``seen`` set over full
states guarantees each state is expanded at most once (termination
machinery, not memoization — it holds no results and dies with the
query).
"""

from collections import deque

from repro.analysis.base import (
    DemandPointsToAnalysis,
    QueryResult,
    UNREALIZABLE,
    check_query_node,
    cross_entry_backward,
    cross_entry_forward,
    cross_exit_backward,
    cross_exit_forward,
)
from repro.cfl.rsm import FAM_LOAD, S1, S2
from repro.cfl.stacks import EMPTY_STACK
from repro.pag.graph import EMPTY_ADJACENCY
from repro.util.errors import BudgetExceededError


class NoRefine(DemandPointsToAnalysis):
    """Fully precise, fully on-demand, zero-reuse baseline."""

    name = "NOREFINE"
    full_precision = True
    memoization = "none"
    reuse = "none"
    on_demand = "yes"

    def _run_query(self, var, context, client):
        check_query_node(self.pag, var)
        budget = self.config.new_budget()
        pairs = set()
        complete = True
        try:
            self._explore(var, context, pairs, budget)
        except BudgetExceededError:
            complete = False
        return QueryResult(var, pairs, complete, budget.steps)

    # ------------------------------------------------------------------
    # the exploded-state worklist
    # ------------------------------------------------------------------
    def _explore(self, var, context, pairs, budget):
        # One precompiled adjacency record per popped state (the same
        # map the PPTA fast path runs over) instead of accessor calls.
        get_record = self.pag.adjacency().get
        empty_record = EMPTY_ADJACENCY
        depth_limit = self.config.max_field_depth
        start = (var, EMPTY_STACK, S1, context)
        seen = {start}
        worklist = deque([start])

        def propagate(node, fstack, state, ctx):
            item = (node, fstack, state, ctx)
            if item not in seen:
                seen.add(item)
                worklist.append(item)

        while worklist:
            v, f, s, c = worklist.popleft()
            budget.charge()
            rec = get_record(v)
            if rec is None:
                rec = empty_record
            if s == S1:
                self._expand_s1(rec, v, f, c, pairs, propagate, depth_limit, budget)
            else:
                self._expand_s2(rec, v, f, c, propagate, depth_limit, budget)

    def _check_depth(self, fstack, limit, budget):
        if limit is not None and len(fstack) >= limit:
            raise BudgetExceededError(budget.limit)

    def _expand_s1(self, rec, v, f, c, pairs, propagate, depth_limit, budget):
        pag = self.pag
        new_sources = rec.new_sources
        if new_sources:
            if f.is_empty:
                ctx = self._finish_context(c)
                pairs.update((obj, ctx) for obj in new_sources)
            else:
                propagate(v, f, S2, c)
        for x, _xi in rec.assign_sources:
            propagate(x, f, S1, c)
        for base, _g, token, _bi in rec.load_into:
            self._check_depth(f, depth_limit, budget)
            propagate(base, f.push(token), S1, c)
        for retvar, site in rec.exit_into:
            propagate(retvar, f, S1, cross_exit_backward(pag, c, site))
        for actual, site in rec.entry_into:
            ctx = cross_entry_backward(pag, c, site)
            if ctx is not UNREALIZABLE:
                propagate(actual, f, S1, ctx)
        for x in rec.global_sources:
            propagate(x, f, S1, EMPTY_STACK)

    def _expand_s2(self, rec, v, f, c, propagate, depth_limit, budget):
        pag = self.pag
        for x, _xi in rec.assign_targets:
            propagate(x, f, S2, c)
        top = f.peek()
        if top is not None:
            top_field = top[0]
            for g, x, _xi in rec.load_from:
                if g == top_field:  # forward load closes either family
                    propagate(x, f.pop(), S2, c)
            if top[1] == FAM_LOAD:
                for x, g, _xi in rec.store_into:
                    if g == top_field:  # store-bar closes family A only
                        propagate(x, f.pop(), S1, c)
        for _g, b, token, _bi in rec.store_from:
            self._check_depth(f, depth_limit, budget)
            propagate(b, f.push(token), S1, c)
        for site, formal in rec.entry_from:
            propagate(formal, f, S2, cross_entry_forward(pag, c, site))
        for site, target in rec.exit_from:
            ctx = cross_exit_forward(pag, c, site)
            if ctx is not UNREALIZABLE:
                propagate(target, f, S2, ctx)
        for x in rec.global_targets:
            propagate(x, f, S2, EMPTY_STACK)
