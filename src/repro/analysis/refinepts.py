"""REFINEPTS — Sridharan & Bodík's refinement-based analysis (Algorithms 1–2).

The analysis begins **field-based**: every load edge is assumed to match
every store edge of the same field, via an artificial *match edge* from
the load's target straight to each stored value, skipping the whole alias
computation (and clearing the RRP context, Algorithm 1 line 17).  Each
match edge consumed is recorded in ``fldsSeen``.

If the client is not satisfied by the resulting (over-approximate)
points-to set, every load edge seen field-based is promoted into
``fldsToRefine`` and the query re-runs, now treating those loads
field-sensitively — pushing the field and performing the full
``pointsTo``/``alias``-RSM search.  The loop ends when the client is
satisfied, no unrefined edge was encountered (the answer is now exact),
or the shared query budget runs out.

Iterations share one budget (Section 5.2's 75,000-step cap is per
*query*), which is what makes precision-hungry clients expensive: every
field-based iteration that fails to satisfy the client is pure overhead —
the paper's explanation for NullDeref's large DYNSUM speedups.

State is kept only within a query (Table 2: "Dynamic (within queries)",
context-dependent): the per-iteration ``seen`` set dedupes traversal
states, and nothing survives the query.
"""

from collections import deque

from repro.analysis.base import (
    DemandPointsToAnalysis,
    QueryResult,
    UNREALIZABLE,
    check_query_node,
    cross_entry_backward,
    cross_entry_forward,
    cross_exit_backward,
    cross_exit_forward,
)
from repro.cfl.rsm import FAM_LOAD, S1, S2
from repro.cfl.stacks import EMPTY_STACK
from repro.pag.graph import EMPTY_ADJACENCY
from repro.util.errors import BudgetExceededError


class RefinePts(DemandPointsToAnalysis):
    """Refinement-based demand analysis with match edges."""

    name = "REFINEPTS"
    full_precision = True
    memoization = "dynamic-within"
    reuse = "context-dependent"
    on_demand = "yes"
    #: The client predicate ends the refinement loop early, so the result
    #: genuinely depends on it (satisfied queries return the coarser,
    #: still-sufficient set) — batch dedup must key on the predicate.
    uses_client_predicate = True

    def _run_query(self, var, context, client):
        check_query_node(self.pag, var)
        budget = self.config.new_budget()
        refined = set()
        iterations = 0
        pairs = set()
        complete = True
        satisfied = False

        while True:
            iterations += 1
            pairs = set()
            flds_seen = set()
            try:
                self._explore(var, context, pairs, budget, refined, flds_seen)
            except BudgetExceededError:
                complete = False
                break
            if client is not None and client(frozenset(obj for obj, _ in pairs)):
                satisfied = True
                break
            if not flds_seen:
                break  # fully refined along every encountered path
            refined |= flds_seen

        stats = {
            "iterations": iterations,
            "refined_edges": len(refined),
            "satisfied_early": satisfied,
        }
        return QueryResult(var, pairs, complete, budget.steps, stats)

    # ------------------------------------------------------------------
    # one refinement iteration (Algorithm 1, flattened)
    # ------------------------------------------------------------------
    def _explore(self, var, context, pairs, budget, refined, flds_seen):
        # Per-node adjacency records, one dict lookup per popped state —
        # the field-indexed match-edge views stay on the PAG (they are
        # keyed by field, not by node).
        get_record = self.pag.adjacency().get
        empty_record = EMPTY_ADJACENCY
        depth_limit = self.config.max_field_depth
        # Fields with at least one refined load: stores of these fields
        # take part in the full alias search.
        refined_fields = {edge[1] for edge in refined}
        start = (var, EMPTY_STACK, S1, context)
        seen = {start}
        worklist = deque([start])

        def propagate(node, fstack, state, ctx):
            item = (node, fstack, state, ctx)
            if item not in seen:
                seen.add(item)
                worklist.append(item)

        while worklist:
            v, f, s, c = worklist.popleft()
            budget.charge()
            rec = get_record(v)
            if rec is None:
                rec = empty_record
            if s == S1:
                self._expand_s1(
                    rec, v, f, c, pairs, propagate, refined, flds_seen,
                    depth_limit, budget
                )
            else:
                self._expand_s2(
                    rec,
                    v,
                    f,
                    c,
                    propagate,
                    refined,
                    refined_fields,
                    flds_seen,
                    depth_limit,
                    budget,
                )

    def _check_depth(self, fstack, limit, budget):
        if limit is not None and len(fstack) >= limit:
            raise BudgetExceededError(budget.limit)

    def _expand_s1(
        self, rec, v, f, c, pairs, propagate, refined, flds_seen, depth_limit, budget
    ):
        pag = self.pag
        new_sources = rec.new_sources
        if new_sources:
            if f.is_empty:
                ctx = self._finish_context(c)
                pairs.update((obj, ctx) for obj in new_sources)
            else:
                propagate(v, f, S2, c)
        for x, _xi in rec.assign_sources:
            propagate(x, f, S1, c)
        for base, g, token, _bi in rec.load_into:
            edge = (base, g, v)
            if edge in refined:
                self._check_depth(f, depth_limit, budget)
                propagate(base, f.push(token), S1, c)
            else:
                # Field-based: jump across the match edge to every value
                # stored to g anywhere, clearing the context (Alg. 1 l.17).
                flds_seen.add(edge)
                for value, _store_base in pag.stores_of_field(g):
                    propagate(value, f, S1, EMPTY_STACK)
        for retvar, site in rec.exit_into:
            propagate(retvar, f, S1, cross_exit_backward(pag, c, site))
        for actual, site in rec.entry_into:
            ctx = cross_entry_backward(pag, c, site)
            if ctx is not UNREALIZABLE:
                propagate(actual, f, S1, ctx)
        for x in rec.global_sources:
            propagate(x, f, S1, EMPTY_STACK)

    def _expand_s2(
        self,
        rec,
        v,
        f,
        c,
        propagate,
        refined,
        refined_fields,
        flds_seen,
        depth_limit,
        budget,
    ):
        pag = self.pag
        for x, _xi in rec.assign_targets:
            propagate(x, f, S2, c)
        top = f.peek()
        if top is not None:
            top_field = top[0]
            for g, x, _xi in rec.load_from:
                # Only refined loads participate in the field-sensitive
                # forward match; unrefined ones are covered by match edges.
                if g == top_field and (v, g, x) in refined:
                    propagate(x, f.pop(), S2, c)
            if top[1] == FAM_LOAD:
                for x, g, _xi in rec.store_into:
                    if g == top_field:  # store-bar closes family A only
                        propagate(x, f.pop(), S1, c)
        for g, b, token, _bi in rec.store_from:
            if g in refined_fields:
                self._check_depth(f, depth_limit, budget)
                propagate(b, f.push(token), S1, c)
            for lbase, ltarget in pag.loads_of_field(g):
                edge = (lbase, g, ltarget)
                if edge not in refined:
                    # Forward across the match edge: the tracked object
                    # reaches every unrefined load of g, context cleared.
                    flds_seen.add(edge)
                    propagate(ltarget, f, S2, EMPTY_STACK)
        for site, formal in rec.entry_from:
            propagate(formal, f, S2, cross_entry_forward(pag, c, site))
        for site, target in rec.exit_from:
            ctx = cross_exit_forward(pag, c, site)
            if ctx is not UNREALIZABLE:
                propagate(target, f, S2, ctx)
        for x in rec.global_targets:
            propagate(x, f, S2, EMPTY_STACK)
