"""PPTA — the Partial Points-To Analysis of Algorithm 3 (``DSPOINTSTO``).

Given a start state ``(node, field-stack, S1|S2)``, the PPTA explores the
*local* edges (``new``/``assign``/``load``/``store``) of the node's method,
field-sensitively but context-independently, following the
``pointsTo``/``alias`` RSM of Figure 3(a):

* in S1 (backward) it collects objects reached through ``new`` edges with
  an empty field stack, turns around into S2 at allocation sites when
  fields are still pending, follows ``assign`` edges backward and pushes
  on ``load`` edges;
* in S2 (forward) it follows ``assign`` edges forward, pops on matching
  ``load``-from-base and ``store``-into-base edges, and pushes (switching
  to S1 at the store's base) on ``store``-from-value edges.

Whenever the traversal reaches a node with a *global* edge in the travel
direction, the current state is emitted as a **boundary tuple**; the
DYNSUM worklist (Algorithm 4) continues from those across global edges.

Because local edges never touch the calling context, the result — a
:class:`PptaResult` — is valid in *every* context, which is exactly what
makes it cacheable across queries (Section 4.1).

The recursion of Algorithm 3 is implemented iteratively (explicit stack)
so that long local assign chains cannot overflow Python's call stack; the
``visited`` set on ``(node, field-stack, state)`` triples plays the role
of Algorithm 3's ``visited`` parameter, preventing cyclic re-traversal.

Two implementations live here, answer-identical by construction and by
the differential battery in ``tests/test_ppta_fastpath.py``:

* :func:`_run_ppta_fast` — the production loop.  It runs over the PAG's
  precompiled :class:`~repro.pag.graph.NodeAdjacency` records (one dict
  lookup per popped state instead of 8+ accessor calls), pushes interned
  ``(field, family)`` tokens through hash-consed stacks, binds every hot
  name locally, and charges the budget with a local counter that is
  synced back on every exit path — so steps, abort behaviour and results
  are bit-identical to the reference.
* :func:`run_ppta_reference` — the straight-line accessor-based loop
  (the pre-optimization implementation), retained as the oracle for the
  differential tests and the ``repro-perf`` speedup measurement.

:func:`run_ppta` dispatches to the active implementation;
:func:`traversal_impl` switches it (the perf harness runs whole
workloads under either).
"""

import os
from contextlib import contextmanager

from repro.cfl.rsm import FAM_LOAD, FAM_STORE, S1, S2
from repro.pag.graph import EMPTY_ADJACENCY
from repro.util.errors import BudgetExceededError


class PptaResult:
    """Outcome of one PPTA: objects plus boundary tuples.

    ``objects`` — :class:`ObjectNode`s proven to flow to the start node
    through local edges alone (context-independent, so valid anywhere).
    ``boundaries`` — ``(node, field_stack, state)`` tuples at which the
    exploration hit the method boundary.
    ``steps`` — traversal steps the PPTA charged to build this summary:
    the recomputation cost a cache saves on a hit, which is what
    cost-aware eviction (:class:`~repro.analysis.summaries
    .CostAwareSummaryCache`) ranks victims by.  Zero for synthesized
    results (trivial boundaries, legacy snapshots) — unknown cost is
    assumed cheap.
    """

    __slots__ = ("objects", "boundaries", "steps", "size")

    def __init__(self, objects, boundaries, steps=0):
        self.objects = tuple(objects)
        self.boundaries = tuple(boundaries)
        self.steps = steps
        #: Number of facts in the summary (the Figure 5 metric) — a
        #: plain attribute because the store layer reads it per insert.
        self.size = len(self.objects) + len(self.boundaries)

    def __repr__(self):
        return f"PptaResult({len(self.objects)} object(s), {len(self.boundaries)} boundary tuple(s))"


def _object_order(obj):
    return obj.object_id


def _boundary_order(boundary):
    """Structural sort key for one boundary tuple.

    Uses the node's precomputed ``sort_key`` — a ``(kind, owner, name)``
    tuple — instead of ``repr(node)``: no string building per
    comparison, and the order is deterministic across processes and
    ``PYTHONHASHSEED`` values by construction.
    """
    node, field_stack, state = boundary
    return (node.sort_key, state, field_stack.to_tuple())


# ----------------------------------------------------------------------
# the production loop
# ----------------------------------------------------------------------
def _run_ppta_fast(pag, node, field_stack, state, budget, max_field_depth=None):
    """The optimized ``DSPOINTSTO`` loop (see module docstring).

    Private slots of :class:`~repro.cfl.stacks.Stack` are read directly
    (``_rest``/``_size``/``_top``) — the properties they back are
    function calls, and this loop runs ~75k times per budget-bound
    query.
    """
    adjacency = pag.adjacency()
    get_record = adjacency.get
    # Lists, not sets: a state is popped at most once (the visited set
    # guards every push), each boundary IS its popped state, and each
    # object belongs to exactly one ``new`` edge — so neither list can
    # ever see a duplicate.
    objects = []
    boundaries = []
    start_rec = get_record(node)
    start_index = start_rec.index if start_rec is not None else -1
    steps_before = budget.steps
    limit = budget.limit

    # ------------------------------------------------------------------
    # Single-expansion prologue.  Most summaries (~75% on the synthetic
    # suite) need only one or two states; expanding the start state into
    # a plain ``pending`` list first lets the single-state majority skip
    # the visited-set machinery entirely.  Within one expansion every
    # pushed item is distinct (disjoint edge groups, distinct
    # stacks/states), so the only duplicate possible is a self-loop back
    # to the start — guarded by identity (``x is node``) since stack and
    # state match the start's exactly there.
    # ------------------------------------------------------------------
    if limit is not None and steps_before >= limit:
        budget.steps = steps_before + 1
        raise BudgetExceededError(limit)
    rec0 = start_rec if start_rec is not None else EMPTY_ADJACENCY
    f0 = field_stack
    pending = []
    if state == S1:
        new_sources = rec0.new_sources
        if new_sources:
            if f0._rest is None:
                objects.extend(new_sources)
            else:
                pending.append((node, start_index, f0, S2))
        for x, xindex in rec0.assign_sources:
            if x is node:
                continue  # self-assign: equals the start state
            pending.append((x, xindex, f0, S1))
        loads = rec0.load_into
        if loads:
            if max_field_depth is not None and f0._size >= max_field_depth:
                budget.steps = steps_before + 1
                raise BudgetExceededError(limit)
            for base, _field, token, bindex in loads:
                pending.append((base, bindex, f0.push(token), S1))
        if rec0.has_global_in:
            boundaries.append((node, f0, S1))
    else:
        for x, xindex in rec0.assign_targets:
            if x is node:
                continue  # self-assign: equals the start state
            pending.append((x, xindex, f0, S2))
        rest = f0._rest
        if rest is not None:
            top = f0._top
            top_field = top[0]
            for g, x, xindex in rec0.load_from:
                if g == top_field:
                    pending.append((x, xindex, rest, S2))
            if top[1] == FAM_LOAD:
                for x, g, xindex in rec0.store_into:
                    if g == top_field:
                        pending.append((x, xindex, rest, S1))
        stores = rec0.store_from
        if stores:
            if max_field_depth is not None and f0._size >= max_field_depth:
                budget.steps = steps_before + 1
                raise BudgetExceededError(limit)
            for _field, b, token, bindex in stores:
                pending.append((b, bindex, f0.push(token), S1))
        if rec0.has_global_out:
            boundaries.append((node, f0, S2))
    if not pending:
        budget.steps = steps_before + 1
        return PptaResult(
            sorted(objects, key=_object_order) if len(objects) > 1 else objects,
            boundaries,  # at most one entry here — no sort needed
            steps=1,
        )

    # ------------------------------------------------------------------
    # General phase: the full worklist, seeded with the prologue's
    # pushes (LIFO order identical to an in-loop start expansion).
    # ------------------------------------------------------------------
    # Visited keys are all ints (record index, field-stack uid, state):
    # stacks are canonical (hash-consed pushes), so uid equality is
    # structural equality, and the int tuple hashes without a
    # Python-level Stack.__hash__ call.  Stack items carry the node's
    # index along for the turnaround push.
    visited = {(start_index, field_stack._uid, state)}
    stack = []
    for item in pending:
        visited.add((item[1], item[2]._uid, item[3]))
        stack.append(item)
    # Locals-bound hot names: every global/attribute read below this
    # line that the loop repeats is now a LOAD_FAST.
    visited_add = visited.add
    stack_pop = stack.pop
    stack_append = stack.append
    add_boundary = boundaries.append
    add_objects = objects.extend
    empty_record = EMPTY_ADJACENCY
    push_limit = max_field_depth
    size_of = len  # LOAD_FAST for the add-and-compare visited probes
    allowed = None if limit is None else limit - steps_before
    steps = 1  # the prologue's start expansion
    try:
        while stack:
            v, vindex, f, s = stack_pop()
            steps += 1
            if allowed is not None and steps > allowed:
                raise BudgetExceededError(limit)
            rec = get_record(v)
            if rec is None:
                rec = empty_record
            # Insertion pattern throughout: add + size check instead of
            # `in` + add — one hash per attempted push, not two.
            f_uid = f._uid
            if s == S1:
                new_sources = rec.new_sources
                if new_sources:
                    if f._rest is None:  # empty stack: emit the objects
                        add_objects(new_sources)
                    else:
                        # "new new-bar" turnaround (Algorithm 3 line 10).
                        key = (vindex, f_uid, S2)
                        size = size_of(visited)
                        visited_add(key)
                        if size_of(visited) != size:
                            stack_append((v, vindex, f, S2))
                for x, xindex in rec.assign_sources:
                    key = (xindex, f_uid, S1)
                    size = size_of(visited)
                    visited_add(key)
                    if size_of(visited) != size:
                        stack_append((x, xindex, f, S1))
                loads = rec.load_into
                if loads:
                    if push_limit is not None and f._size >= push_limit:
                        raise BudgetExceededError(limit)
                    for base, _field, token, bindex in loads:
                        pushed = f.push(token)
                        key = (bindex, pushed._uid, S1)
                        size = size_of(visited)
                        visited_add(key)
                        if size_of(visited) != size:
                            stack_append((base, bindex, pushed, S1))
                if rec.has_global_in:
                    add_boundary((v, f, S1))
            else:
                for x, xindex in rec.assign_targets:
                    key = (xindex, f_uid, S2)
                    size = size_of(visited)
                    visited_add(key)
                    if size_of(visited) != size:
                        stack_append((x, xindex, f, S2))
                rest = f._rest
                if rest is not None:
                    top = f._top
                    top_field = top[0]
                    rest_uid = rest._uid
                    for g, x, xindex in rec.load_from:
                        if g == top_field:  # forward load closes either family
                            key = (xindex, rest_uid, S2)
                            size = size_of(visited)
                            visited_add(key)
                            if size_of(visited) != size:
                                stack_append((x, xindex, rest, S2))
                    if top[1] == FAM_LOAD:
                        for x, g, xindex in rec.store_into:
                            if g == top_field:
                                # store-bar: only a pending backward load
                                # may be closed here; the matching store's
                                # value continues backward.
                                key = (xindex, rest_uid, S1)
                                size = size_of(visited)
                                visited_add(key)
                                if size_of(visited) != size:
                                    stack_append((x, xindex, rest, S1))
                stores = rec.store_from
                if stores:
                    # The tracked object is stored into b.g — look for
                    # aliases of the base backward, with g pending (B).
                    if push_limit is not None and f._size >= push_limit:
                        raise BudgetExceededError(limit)
                    for _field, b, token, bindex in stores:
                        pushed = f.push(token)
                        key = (bindex, pushed._uid, S1)
                        size = size_of(visited)
                        visited_add(key)
                        if size_of(visited) != size:
                            stack_append((b, bindex, pushed, S1))
                if rec.has_global_out:
                    add_boundary((v, f, S2))
    finally:
        # Sync the local step counter on every exit path (normal,
        # budget-abort, depth-abort) so the budget object reads exactly
        # as if charge() had been called once per pop.
        budget.steps = steps_before + steps
    # Singleton/empty fact sets need no sort — the common case for the
    # paper's small, local-heavy methods.
    return PptaResult(
        sorted(objects, key=_object_order) if len(objects) > 1 else objects,
        sorted(boundaries, key=_boundary_order) if len(boundaries) > 1 else boundaries,
        steps=steps,
    )


# ----------------------------------------------------------------------
# the CSR array loop
# ----------------------------------------------------------------------
def _run_ppta_array(pag, node, field_stack, state, budget, max_field_depth=None):
    """``DSPOINTSTO`` over the CSR image (:mod:`repro.pag.csr`).

    Structured statement-for-statement like :func:`_run_ppta_fast` — the
    same prologue, the same push order per expansion, the same LIFO
    discipline and depth-check placement — so steps, abort behaviour and
    results stay bit-identical; what changes is the representation.  A
    traversal state is one **packed int** ``t = index * 4 + state``
    (an unindexed start maps to the sentinel index ``n_nodes``, whose
    rows are empty), worklist items are ``(t, stack)`` pairs, and the
    visited key is ``stack._uid * stride + t`` with
    ``stride = 4 * (n_nodes + 1)`` — injective because ``t < stride``.
    The image rows carry targets *pre-packed*, so one attempted push
    costs an int add and an int hash where the fast loop builds and
    hashes a 3-tuple.  Like the fast loop, the general-phase locals are
    bound only after the prologue — the single-expansion majority never
    pays for them.
    """
    image = pag.csr()
    n = image.n_nodes
    si = image.node_index.get(node, n)
    steps_before = budget.steps
    limit = budget.limit
    objects = []
    boundaries = []

    if limit is not None and steps_before >= limit:
        budget.steps = steps_before + 1
        raise BudgetExceededError(limit)
    f0 = field_stack
    pending = []
    start = si * 4 + state
    if state == S1:
        row = image.new_rows[si]
        if row:
            if f0._rest is None:
                objects.extend(row)
            else:
                pending.append((start + 1, f0))  # "new new-bar" turnaround
        for t in image.as_rows[si]:
            if t == start:
                continue  # self-assign: equals the start state
            pending.append((t, f0))
        row = image.li_rows[si]
        if row:
            if max_field_depth is not None and f0._size >= max_field_depth:
                budget.steps = steps_before + 1
                raise BudgetExceededError(limit)
            for token, t in row:
                pending.append((t, f0.push(token)))
        if image.flags[si] & 1:  # FLAG_GLOBAL_IN
            boundaries.append((node, f0, S1))
    else:
        for t in image.at_rows[si]:
            if t == start:
                continue  # self-assign: equals the start state
            pending.append((t, f0))
        rest = f0._rest
        if rest is not None:
            top = f0._top
            top_fid = image.tok_fid.get(top, -1)
            for fid, t in image.lf_rows[si]:
                if fid == top_fid:
                    pending.append((t, rest))
            if top[1] == FAM_LOAD:
                for fid, t in image.si_rows[si]:
                    if fid == top_fid:
                        pending.append((t, rest))
        row = image.sf_rows[si]
        if row:
            if max_field_depth is not None and f0._size >= max_field_depth:
                budget.steps = steps_before + 1
                raise BudgetExceededError(limit)
            for token, t in row:
                pending.append((t, f0.push(token)))
        if image.flags[si] & 2:  # FLAG_GLOBAL_OUT
            boundaries.append((node, f0, S2))
    if not pending:
        budget.steps = steps_before + 1
        return PptaResult(
            sorted(objects, key=_object_order) if len(objects) > 1 else objects,
            boundaries,  # at most one entry here — no sort needed
            steps=1,
        )

    # General phase (see _run_ppta_fast): bind the loop locals now.
    stride = n * 4 + 4
    nodes = image.nodes
    new_rows = image.new_rows
    as_rows = image.as_rows
    li_rows = image.li_rows
    at_rows = image.at_rows
    lf_rows = image.lf_rows
    si_rows = image.si_rows
    sf_rows = image.sf_rows
    flags = image.flags
    tok_fid_get = image.tok_fid.get
    visited = {field_stack._uid * stride + start}
    stack = []
    for item in pending:
        visited.add(item[1]._uid * stride + item[0])
        stack.append(item)
    visited_add = visited.add
    stack_pop = stack.pop
    stack_append = stack.append
    add_boundary = boundaries.append
    extend_objects = objects.extend
    push_limit = max_field_depth
    size_of = len  # LOAD_FAST for the add-and-compare visited probes
    allowed = None if limit is None else limit - steps_before
    steps = 1  # the prologue's start expansion
    try:
        while stack:
            t, f = stack_pop()
            steps += 1
            if allowed is not None and steps > allowed:
                raise BudgetExceededError(limit)
            fkey = f._uid * stride
            vi = t >> 2
            if t & 1:  # S1 (states are 1 and 2 — bit 0 distinguishes)
                row = new_rows[vi]
                if row:
                    if f._rest is None:  # empty stack: emit the objects
                        extend_objects(row)
                    else:
                        # "new new-bar" turnaround (Algorithm 3 line 10).
                        key = fkey + t + 1
                        size = size_of(visited)
                        visited_add(key)
                        if size_of(visited) != size:
                            stack_append((t + 1, f))
                for t2 in as_rows[vi]:
                    key = fkey + t2
                    size = size_of(visited)
                    visited_add(key)
                    if size_of(visited) != size:
                        stack_append((t2, f))
                row = li_rows[vi]
                if row:
                    if push_limit is not None and f._size >= push_limit:
                        raise BudgetExceededError(limit)
                    for token, t2 in row:
                        pushed = f.push(token)
                        key = pushed._uid * stride + t2
                        size = size_of(visited)
                        visited_add(key)
                        if size_of(visited) != size:
                            stack_append((t2, pushed))
                if flags[vi] & 1:
                    add_boundary((nodes[vi], f, S1))
            else:
                for t2 in at_rows[vi]:
                    key = fkey + t2
                    size = size_of(visited)
                    visited_add(key)
                    if size_of(visited) != size:
                        stack_append((t2, f))
                rest = f._rest
                if rest is not None:
                    top = f._top
                    top_fid = tok_fid_get(top, -1)
                    rkey = rest._uid * stride
                    for fid, t2 in lf_rows[vi]:
                        if fid == top_fid:  # forward load closes either family
                            key = rkey + t2
                            size = size_of(visited)
                            visited_add(key)
                            if size_of(visited) != size:
                                stack_append((t2, rest))
                    if top[1] == FAM_LOAD:
                        for fid, t2 in si_rows[vi]:
                            if fid == top_fid:
                                # store-bar: only a pending backward load
                                # may be closed here; the matching store's
                                # value continues backward.
                                key = rkey + t2
                                size = size_of(visited)
                                visited_add(key)
                                if size_of(visited) != size:
                                    stack_append((t2, rest))
                row = sf_rows[vi]
                if row:
                    # The tracked object is stored into b.g — look for
                    # aliases of the base backward, with g pending (B).
                    if push_limit is not None and f._size >= push_limit:
                        raise BudgetExceededError(limit)
                    for token, t2 in row:
                        pushed = f.push(token)
                        key = pushed._uid * stride + t2
                        size = size_of(visited)
                        visited_add(key)
                        if size_of(visited) != size:
                            stack_append((t2, pushed))
                if flags[vi] & 2:
                    add_boundary((nodes[vi], f, S2))
    finally:
        budget.steps = steps_before + steps
    return PptaResult(
        sorted(objects, key=_object_order) if len(objects) > 1 else objects,
        sorted(boundaries, key=_boundary_order) if len(boundaries) > 1 else boundaries,
        steps=steps,
    )


# ----------------------------------------------------------------------
# the retained reference implementation (pre-optimization loop)
# ----------------------------------------------------------------------
def run_ppta_reference(pag, node, field_stack, state, budget, max_field_depth=None):
    """Accessor-based ``DSPOINTSTO`` — the differential oracle.

    Structured exactly as the pre-fast-path implementation: one helper
    call per state expansion, PAG accessor methods for every edge list,
    fresh stack-entry tuples and freshly allocated stack nodes
    (``push_uncached``) per push.  Kept so the optimized loop can always
    be checked (and benchmarked) against straight-line code.  Only the
    fact ordering is shared with the fast loop (structural sort keys),
    so the two return bit-identical results.
    """
    objects = set()
    boundaries = set()
    start = (node, field_stack, state)
    visited = {start}
    stack = [start]
    push_limit = max_field_depth
    steps_before = budget.steps

    while stack:
        v, f, s = stack.pop()
        budget.charge()
        if s == S1:
            _expand_s1(pag, v, f, objects, boundaries, visited, stack, push_limit, budget)
        else:
            _expand_s2(pag, v, f, boundaries, visited, stack, push_limit, budget)
    return PptaResult(
        sorted(objects, key=_object_order),
        sorted(boundaries, key=_boundary_order),
        steps=budget.steps - steps_before,
    )


def _push_state(visited, stack, state_tuple):
    if state_tuple not in visited:
        visited.add(state_tuple)
        stack.append(state_tuple)


def _check_depth(field_stack, limit, budget):
    if limit is not None and len(field_stack) >= limit:
        raise BudgetExceededError(budget.limit)


def _expand_s1(pag, v, f, objects, boundaries, visited, stack, push_limit, budget):
    """Transitions out of state S1 (backward / flowsTo-bar) at ``v``."""
    new_sources = pag.new_sources(v)
    if new_sources:
        if f.is_empty:
            objects.update(new_sources)
        else:
            # "new new-bar" turnaround (Algorithm 3 line 10): the object
            # allocated into v must now be tracked forward to find aliases.
            _push_state(visited, stack, (v, f, S2))
    for x in pag.assign_sources(v):
        _push_state(visited, stack, (x, f, S1))
    for base, g in pag.load_into(v):
        _check_depth(f, push_limit, budget)
        _push_state(visited, stack, (base, f.push_uncached((g, FAM_LOAD)), S1))
    if pag.has_global_in(v):
        boundaries.add((v, f, S1))


def _expand_s2(pag, v, f, boundaries, visited, stack, push_limit, budget):
    """Transitions out of state S2 (forward / flowsTo) at ``v``."""
    for x in pag.assign_targets(v):
        _push_state(visited, stack, (x, f, S2))
    top = f.peek()
    if top is not None:
        top_field = top[0]
        for g, x in pag.load_from(v):
            if g == top_field:  # forward load closes either family
                _push_state(visited, stack, (x, f.pop(), S2))
        if top[1] == FAM_LOAD:
            for x, g in pag.store_into(v):
                if g == top_field:
                    # store-bar: only a pending backward load may be
                    # closed here; the matching store's value continues
                    # backward.
                    _push_state(visited, stack, (x, f.pop(), S1))
    for g, b in pag.store_from(v):
        # The tracked object is stored into b.g — look for aliases of the
        # base b backward, with g pending (family B).
        _check_depth(f, push_limit, budget)
        _push_state(visited, stack, (b, f.push_uncached((g, FAM_STORE)), S1))
    if pag.has_global_out(v):
        boundaries.add((v, f, S2))


# ----------------------------------------------------------------------
# the native kernel driver
# ----------------------------------------------------------------------
#: Lazily bound ``repro.native.session.run_ppta_native`` — the import
#: is deferred to first use because the native package imports this
#: module at its own import time.
_NATIVE_DRIVER = []


def _run_ppta_native(pag, node, field_stack, state, budget, max_field_depth=None):
    """``DSPOINTSTO`` in the C kernel (``repro/native/kernel.c``).

    Bit-equal to :func:`_run_ppta_array` in answers, step counts and
    abort behaviour; when the kernel is unavailable (no compiler, ABI
    mismatch, ``REPRO_NATIVE=0``) or cannot represent the start state,
    the call silently reruns on the ``array`` loop — the budget is
    untouched by a refused native attempt, so the rerun charges exactly
    what a plain ``array`` call would have.
    """
    if not _NATIVE_DRIVER:
        from repro.native.session import run_ppta_native

        _NATIVE_DRIVER.append(run_ppta_native)
    result = _NATIVE_DRIVER[0](pag, node, field_stack, state, budget, max_field_depth)
    if result is None:
        return _run_ppta_array(pag, node, field_stack, state, budget, max_field_depth)
    return result


# ----------------------------------------------------------------------
# implementation dispatch
# ----------------------------------------------------------------------
TRAVERSAL_IMPLS = {
    "fast": _run_ppta_fast,
    "array": _run_ppta_array,
    "native": _run_ppta_native,
    "reference": run_ppta_reference,
}


def _default_impl():
    """The boot-time impl: ``$REPRO_TRAVERSAL`` when it names a known
    implementation, else ``fast`` (unknown values are ignored rather
    than fatal — a stale env var must not brick the process)."""
    env = os.environ.get("REPRO_TRAVERSAL", "").strip()
    return env if env in TRAVERSAL_IMPLS else "fast"


#: The active implementation, mutated only by :func:`traversal_impl` /
#: :func:`set_traversal_impl`.  A one-slot dict rather than a module
#: global so ``from ppta import run_ppta`` bindings stay valid.
_ACTIVE = {"impl": _default_impl()}


def active_traversal_impl():
    """The name of the implementation :func:`run_ppta` dispatches to."""
    return _ACTIVE["impl"]


def set_traversal_impl(name):
    """Select the PPTA implementation globally
    (``fast``/``array``/``native``/``reference``)."""
    if name not in TRAVERSAL_IMPLS:
        known = ", ".join(sorted(TRAVERSAL_IMPLS))
        raise ValueError(f"unknown traversal impl {name!r}; known: {known}")
    _ACTIVE["impl"] = name


@contextmanager
def traversal_impl(name):
    """Temporarily select a PPTA implementation.

    Used by the differential tests and the ``repro-perf`` harness to run
    whole workloads under the reference loop.  Process-global — callers
    must not fan traversals out on a thread pool while switched.
    """
    previous = _ACTIVE["impl"]
    set_traversal_impl(name)
    try:
        yield
    finally:
        _ACTIVE["impl"] = previous


def run_ppta(pag, node, field_stack, state, budget, max_field_depth=None):
    """Run ``DSPOINTSTO(node, field_stack, state)`` over ``pag``.

    ``budget`` is charged one step per visited state; exhaustion raises
    :class:`BudgetExceededError` out of this function (the caller marks
    the whole query incomplete and discards the partial summary).
    ``max_field_depth`` optionally bounds the field stack; crossing it is
    treated exactly like budget exhaustion.

    Dispatches to the active implementation (see :func:`traversal_impl`)
    — the fast record-based loop by default.
    """
    return TRAVERSAL_IMPLS[_ACTIVE["impl"]](
        pag, node, field_stack, state, budget, max_field_depth
    )
