"""PPTA — the Partial Points-To Analysis of Algorithm 3 (``DSPOINTSTO``).

Given a start state ``(node, field-stack, S1|S2)``, the PPTA explores the
*local* edges (``new``/``assign``/``load``/``store``) of the node's method,
field-sensitively but context-independently, following the
``pointsTo``/``alias`` RSM of Figure 3(a):

* in S1 (backward) it collects objects reached through ``new`` edges with
  an empty field stack, turns around into S2 at allocation sites when
  fields are still pending, follows ``assign`` edges backward and pushes
  on ``load`` edges;
* in S2 (forward) it follows ``assign`` edges forward, pops on matching
  ``load``-from-base and ``store``-into-base edges, and pushes (switching
  to S1 at the store's base) on ``store``-from-value edges.

Whenever the traversal reaches a node with a *global* edge in the travel
direction, the current state is emitted as a **boundary tuple**; the
DYNSUM worklist (Algorithm 4) continues from those across global edges.

Because local edges never touch the calling context, the result — a
:class:`PptaResult` — is valid in *every* context, which is exactly what
makes it cacheable across queries (Section 4.1).

The recursion of Algorithm 3 is implemented iteratively (explicit stack)
so that long local assign chains cannot overflow Python's call stack; the
``visited`` set on ``(node, field-stack, state)`` triples plays the role
of Algorithm 3's ``visited`` parameter, preventing cyclic re-traversal.
"""

from repro.cfl.rsm import FAM_LOAD, FAM_STORE, S1, S2
from repro.util.errors import BudgetExceededError


class PptaResult:
    """Outcome of one PPTA: objects plus boundary tuples.

    ``objects`` — :class:`ObjectNode`s proven to flow to the start node
    through local edges alone (context-independent, so valid anywhere).
    ``boundaries`` — ``(node, field_stack, state)`` tuples at which the
    exploration hit the method boundary.
    ``steps`` — traversal steps the PPTA charged to build this summary:
    the recomputation cost a cache saves on a hit, which is what
    cost-aware eviction (:class:`~repro.analysis.summaries
    .CostAwareSummaryCache`) ranks victims by.  Zero for synthesized
    results (trivial boundaries, legacy snapshots) — unknown cost is
    assumed cheap.
    """

    __slots__ = ("objects", "boundaries", "steps")

    def __init__(self, objects, boundaries, steps=0):
        self.objects = tuple(objects)
        self.boundaries = tuple(boundaries)
        self.steps = steps

    @property
    def size(self):
        """Number of facts in the summary (used by the Figure 5 metric)."""
        return len(self.objects) + len(self.boundaries)

    def __repr__(self):
        return f"PptaResult({len(self.objects)} object(s), {len(self.boundaries)} boundary tuple(s))"


def run_ppta(pag, node, field_stack, state, budget, max_field_depth=None):
    """Run ``DSPOINTSTO(node, field_stack, state)`` over ``pag``.

    ``budget`` is charged one step per visited state; exhaustion raises
    :class:`BudgetExceededError` out of this function (the caller marks
    the whole query incomplete and discards the partial summary).
    ``max_field_depth`` optionally bounds the field stack; crossing it is
    treated exactly like budget exhaustion.
    """
    objects = set()
    boundaries = set()
    start = (node, field_stack, state)
    visited = {start}
    stack = [start]
    push_limit = max_field_depth
    steps_before = budget.steps

    while stack:
        v, f, s = stack.pop()
        budget.charge()
        if s == S1:
            _expand_s1(pag, v, f, objects, boundaries, visited, stack, push_limit, budget)
        else:
            _expand_s2(pag, v, f, boundaries, visited, stack, push_limit, budget)
    return PptaResult(
        sorted(objects, key=_object_order),
        sorted(boundaries, key=_boundary_order),
        steps=budget.steps - steps_before,
    )


def _object_order(obj):
    return obj.object_id


def _boundary_order(boundary):
    node, field_stack, state = boundary
    return (repr(node), state, field_stack.to_tuple())


def _push_state(visited, stack, state_tuple):
    if state_tuple not in visited:
        visited.add(state_tuple)
        stack.append(state_tuple)


def _check_depth(field_stack, limit, budget):
    if limit is not None and len(field_stack) >= limit:
        raise BudgetExceededError(budget.limit)


def _expand_s1(pag, v, f, objects, boundaries, visited, stack, push_limit, budget):
    """Transitions out of state S1 (backward / flowsTo-bar) at ``v``."""
    new_sources = pag.new_sources(v)
    if new_sources:
        if f.is_empty:
            objects.update(new_sources)
        else:
            # "new new-bar" turnaround (Algorithm 3 line 10): the object
            # allocated into v must now be tracked forward to find aliases.
            _push_state(visited, stack, (v, f, S2))
    for x in pag.assign_sources(v):
        _push_state(visited, stack, (x, f, S1))
    for base, g in pag.load_into(v):
        _check_depth(f, push_limit, budget)
        _push_state(visited, stack, (base, f.push((g, FAM_LOAD)), S1))
    if pag.has_global_in(v):
        boundaries.add((v, f, S1))


def _expand_s2(pag, v, f, boundaries, visited, stack, push_limit, budget):
    """Transitions out of state S2 (forward / flowsTo) at ``v``."""
    for x in pag.assign_targets(v):
        _push_state(visited, stack, (x, f, S2))
    top = f.peek()
    if top is not None:
        top_field = top[0]
        for g, x in pag.load_from(v):
            if g == top_field:  # forward load closes either family
                _push_state(visited, stack, (x, f.pop(), S2))
        if top[1] == FAM_LOAD:
            for x, g in pag.store_into(v):
                if g == top_field:
                    # store-bar: only a pending backward load may be
                    # closed here; the matching store's value continues
                    # backward.
                    _push_state(visited, stack, (x, f.pop(), S1))
    for g, b in pag.store_from(v):
        # The tracked object is stored into b.g — look for aliases of the
        # base b backward, with g pending (family B).
        _check_depth(f, push_limit, budget)
        _push_state(visited, stack, (b, f.push((g, FAM_STORE)), S1))
    if pag.has_global_out(v):
        boundaries.add((v, f, S2))
