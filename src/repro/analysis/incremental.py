"""Incremental re-analysis under program edits — the IDE/JIT scenario.

The paper motivates DYNSUM for "environments such as JIT compilers and
IDEs ... especially when the program undergoes constantly a lot of
changes" (Sections 1, 5.3, 7).  This module supplies the host-side glue
that scenario needs: an :class:`IncrementalAnalysisSession` owns a
program, its PAG and a DYNSUM instance, accepts method-body edits, and
carries every still-valid summary across the rebuild.

Correctness rests on three observations:

1. PPTA summaries are *method-local*: every node and object a summary
   mentions belongs to the method of its key (a tested invariant), so a
   summary survives any edit that leaves its method's body unchanged —
   **provided** its facts can be re-anchored in the new PAG;
2. node identity is nominal (``(method, variable)`` for locals,
   per-method stable labels for objects — see ``Program.finalize``), so
   re-anchoring is a dictionary lookup;
3. a summary's *boundary surface* — which of its method's nodes carry
   global edges, and in which direction — depends on the rest of the
   program (an edit elsewhere can add the first call into a method).
   Summaries of methods whose surface changed are dropped too, since
   their recorded boundary tuples could otherwise miss new crossings.

Everything else is conservative bookkeeping; answers after an edit are
identical to a cold start (a property test), only cheaper.
"""

from repro.analysis.base import AnalysisConfig
from repro.analysis.dynsum import DynSum
from repro.analysis.ppta import PptaResult
from repro.ir.builder import MethodBuilder
from repro.pag.builder import build_pag
from repro.util.errors import IRError


class EditReport:
    """What one edit cost: which methods lost summaries and why.

    ``migrated`` is reconciled against the post-edit store — it counts
    summaries actually *resident* after the rebuild, so
    ``migrated == len(new cache)`` and ``migrated + dropped`` equals the
    old cache's entry count, even when a capacity-bounded spawn cannot
    admit everything.
    """

    __slots__ = ("edited", "surface_changed", "dropped", "migrated")

    def __init__(self, edited, surface_changed, dropped, migrated):
        self.edited = tuple(edited)
        self.surface_changed = tuple(surface_changed)
        self.dropped = dropped
        self.migrated = migrated

    def __repr__(self):
        return (
            f"EditReport(edited={list(self.edited)}, "
            f"surface_changed={list(self.surface_changed)}, "
            f"dropped={self.dropped}, migrated={self.migrated})"
        )


class IncrementalAnalysisSession:
    """A long-lived DYNSUM host that survives program edits.

    Usage::

        session = IncrementalAnalysisSession(program)
        session.points_to_name("Main.main", "x")

        def new_body(m):             # m is a MethodBuilder
            m.alloc("t", "Thing").ret("t")

        report = session.replace_body("Factory.create", new_body)
        session.points_to_name("Main.main", "x")   # summaries reused
    """

    def __init__(self, program, config=None, cache=None):
        if not program.is_finalized:
            raise IRError("program must be finalized")
        self.program = program
        self.config = config or AnalysisConfig()
        self.pag = build_pag(program)
        #: ``cache`` may be any :class:`~repro.analysis.summaries
        #: .SummaryStore` (e.g. a ``BoundedSummaryCache`` for memory-capped
        #: hosts); rebuilds migrate into a ``spawn()`` of the same policy.
        self.analysis = DynSum(self.pag, self.config, cache=cache)
        self._surface = self._boundary_surface(self.pag)
        self.edit_count = 0

    # ------------------------------------------------------------------
    # queries (delegation)
    # ------------------------------------------------------------------
    def points_to(self, var, **kwargs):
        return self.analysis.points_to(var, **kwargs)

    def points_to_name(self, method_qname, var_name, **kwargs):
        return self.analysis.points_to_name(method_qname, var_name, **kwargs)

    @property
    def summary_count(self):
        return self.analysis.summary_count

    # ------------------------------------------------------------------
    # edits
    # ------------------------------------------------------------------
    def replace_body(self, method_qname, build_fn):
        """Replace ``method_qname``'s statements and re-analyse.

        ``build_fn`` receives a fresh :class:`MethodBuilder` over the
        emptied method and appends the new body.  Returns an
        :class:`EditReport`.
        """
        method = self.program.lookup_method(method_qname)
        method.statements.clear()
        build_fn(MethodBuilder(method))
        return self._after_edit([method_qname])

    def edit(self, method_qname, mutate_fn):
        """Arbitrary in-place mutation of a method (``mutate_fn(method)``),
        followed by re-analysis."""
        method = self.program.lookup_method(method_qname)
        mutate_fn(method)
        return self._after_edit([method_qname])

    def _after_edit(self, edited_methods):
        self.edit_count += 1
        self.program.finalize()
        new_pag = build_pag(self.program)
        new_surface = self._boundary_surface(new_pag)

        surface_changed = {
            qname
            for qname in set(self._surface) | set(new_surface)
            if self._surface.get(qname) != new_surface.get(qname)
            and qname not in edited_methods
        }
        drop = set(edited_methods) | surface_changed

        old_cache = self.analysis.cache
        stored_keys = []
        dropped = 0
        # Invalidate the stale methods *through* the store, not just by
        # skipping them during migration: a backend shared beyond this
        # process (repro.cacheserver's remote store) must tell the owning
        # shard server, or other clients would keep fetching summaries of
        # the pre-edit body.  For local stores this is the same drop the
        # skip performed, with identical accounting.
        for qname in sorted(drop):
            dropped += old_cache.invalidate_method(qname)
        # Spawn *after* the invalidations: each invalidate bumps the
        # method's consistency epoch, and the spawn carries the epochs
        # forward — the post-edit cache must publish at the post-edit
        # epochs or a shared shard server would refuse its stores as
        # stale (protocol 1.4).
        new_cache = old_cache.spawn()
        # Migration writes land in the process-local store only: for a
        # remote-backed cache that is the read-through tier — every
        # surviving summary was already published when first computed,
        # so write-through here would pay one blocking round-trip per
        # entry to re-store what the shard servers already hold.
        migration_target = getattr(new_cache, "local_tier", new_cache)
        # Hottest-first: when the spawn is capacity-bounded, the most
        # recently useful summaries claim the room and the cold tail is
        # skipped outright (`has_room`) instead of being stored and then
        # churned back out by eviction.
        for (node, stack, state), summary in old_cache.entries_by_recency(
            hottest_first=True
        ):
            # Entries of dropped methods are already gone: the
            # invalidation loop above removed them from old_cache (and
            # counted them) before this iteration started.
            moved = self._migrate_entry(new_pag, node, stack, state, summary)
            if moved is None:
                dropped += 1
                continue
            new_node, new_summary = moved
            if not new_cache.has_room(new_node, new_summary.size):
                dropped += 1
                continue
            migration_target.store(new_node, stack, state, new_summary)
            stored_keys.append((new_node, stack, state))
        # Hottest-first insertion leaves recency inverted in the new
        # store; promote coldest-to-hottest so LRU order matches reality.
        for key in reversed(stored_keys):
            new_cache.promote(key)
        # Reconcile the report against the new store: only entries
        # actually resident after migration count as migrated.
        migrated = sum(1 for key in stored_keys if key in new_cache)
        dropped += len(stored_keys) - migrated

        self.pag = new_pag
        self.analysis = DynSum(new_pag, self.config, cache=new_cache)
        self._surface = new_surface
        return EditReport(edited_methods, sorted(surface_changed), dropped, migrated)

    # ------------------------------------------------------------------
    # migration machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _boundary_surface(pag):
        """Per-method fingerprint of which nodes touch global edges.

        Node *names* are used (identity is per-PAG); local edges of
        un-edited methods cannot change, so a stable fingerprint means
        stale summaries cannot miss a boundary crossing.
        """
        surface = {}
        for qname in pag.methods():
            entries = frozenset(
                (getattr(node, "name", node.method), pag.has_global_in(node), pag.has_global_out(node))
                for node in pag.nodes_of_method(qname)
                if node.is_local_var
            )
            surface[qname] = entries
        return surface

    def _migrate_entry(self, new_pag, node, stack, state, summary):
        """Re-anchor one cache entry in ``new_pag`` or return ``None``."""
        new_node = self._find_node(new_pag, node)
        if new_node is None:
            return None
        objects = []
        for obj in summary.objects:
            moved = self._find_object(new_pag, obj)
            if moved is None:
                return None
            objects.append(moved)
        boundaries = []
        for bnode, bstack, bstate in summary.boundaries:
            moved = self._find_node(new_pag, bnode)
            if moved is None:
                return None
            boundaries.append((moved, bstack, bstate))
        return new_node, PptaResult(objects, boundaries, steps=summary.steps)

    @staticmethod
    def _find_node(new_pag, node):
        if not node.is_local_var:
            return None
        try:
            return new_pag.find_local(node.method, node.name)
        except IRError:
            return None

    @staticmethod
    def _find_object(new_pag, obj):
        try:
            return new_pag.object_node(obj.object_id)
        except IRError:
            return None
