"""DYNSUM — the paper's contribution (Algorithms 3 and 4).

A query ``pointsTo(v, c)`` runs a worklist over tuples
``(node, field-stack, state, context)``, but — unlike NOREFINE — the
worklist only ever handles **global** edges.  All local reachability is
delegated to the PPTA (:mod:`repro.analysis.ppta`): for each worklist
item, the context-free part ``(node, field-stack, state)`` is looked up in
the cross-query :class:`~repro.analysis.summaries.SummaryCache`, computed
by ``DSPOINTSTO`` on a miss, and then

* every object in the summary is added to the answer under the item's
  context (local edges cannot change context — the key observation of
  Section 4), and
* every boundary tuple is advanced across the global edges adjacent to
  it, per the RRP machine (push on backward-``exit``/forward-``entry``,
  pop-or-empty on backward-``entry``/forward-``exit``, clear on
  ``assignglobal``).

Per Section 4.3, nodes without local edges skip the PPTA entirely and act
as their own (trivial) boundary.

Summaries survive across queries and calling contexts with no precision
loss; ``cache_hits``/``cache_misses`` in each result's ``stats`` expose
the reuse that Figures 4 and 5 measure.  :meth:`DynSum.invalidate_method`
implements the IDE/JIT edit scenario.
"""

from collections import deque

from repro.analysis.base import (
    DemandPointsToAnalysis,
    QueryResult,
    UNREALIZABLE,
    check_query_node,
    cross_entry_backward,
    cross_entry_forward,
    cross_exit_backward,
    cross_exit_forward,
)
from repro.analysis.ppta import PptaResult, run_ppta
from repro.analysis.summaries import SummaryCache
from repro.cfl.rsm import S1, S2
from repro.cfl.stacks import EMPTY_STACK
from repro.util.errors import BudgetExceededError


class DynSum(DemandPointsToAnalysis):
    """Demand analysis with dynamic, context-independent method summaries."""

    name = "DYNSUM"
    full_precision = True
    memoization = "dynamic-across"
    reuse = "context-independent"
    on_demand = "yes"

    def __init__(self, pag, config=None, cache=None):
        super().__init__(pag, config)
        #: The cross-query summary cache; share one instance between
        #: analyses to model a long-running host process.
        self.cache = cache if cache is not None else SummaryCache()
        # Backends that resolve wire-form entries (the remote store of
        # repro.cacheserver) need the PAG; local backends ignore this.
        bind = getattr(self.cache, "bind_pag", None)
        if bind is not None:
            bind(self.pag)
        #: Optional observer called with (event, **data) at worklist pops
        #: and summary hits/misses — the hook behind
        #: :mod:`repro.analysis.trace`'s Table 1-style traces.
        self.observer = None

    # ------------------------------------------------------------------
    # maintenance hooks for host environments (IDEs / JITs)
    # ------------------------------------------------------------------
    def invalidate_method(self, method_qname):
        """Drop cached summaries of one edited method; answers are
        unaffected, only later queries repay the summarisation cost."""
        return self.cache.invalidate_method(method_qname)

    @property
    def summary_count(self):
        """Distinct summarised boundary points — the Figure 5 numerator
        (see :meth:`SummaryCache.summary_point_count` for the unit)."""
        return self.cache.summary_point_count()

    @property
    def cache_entry_count(self):
        """Raw ``len(Cache)`` — one entry per (node, stack, direction)."""
        return len(self.cache)

    # ------------------------------------------------------------------
    # Algorithm 4
    # ------------------------------------------------------------------
    def _run_query(self, var, context, client):
        check_query_node(self.pag, var)
        budget = self.config.new_budget()
        pairs = set()
        hits_before = self.cache.hits
        misses_before = self.cache.misses
        complete = True
        try:
            self._explore(var, context, pairs, budget)
        except BudgetExceededError:
            complete = False
        # Window deltas over the shared cache's counters: exact when
        # queries run one at a time; under the engine's parallel executor
        # a result's own window may include probes of concurrently
        # running traversals (batch-level stats remain exact).
        stats = {
            "cache_hits": self.cache.hits - hits_before,
            "cache_misses": self.cache.misses - misses_before,
            "summaries": len(self.cache),
        }
        return QueryResult(var, pairs, complete, budget.steps, stats)

    def _explore(self, var, context, pairs, budget):
        pag = self.pag
        start = (var, EMPTY_STACK, S1, context)
        seen = {start}
        worklist = deque([start])

        def propagate(node, fstack, state, ctx):
            item = (node, fstack, state, ctx)
            if item not in seen:
                seen.add(item)
                worklist.append(item)

        while worklist:
            u, f, s, c = worklist.popleft()
            budget.charge()
            if self.observer is not None:
                self.observer("visit", node=u, stack=f, state=s, context=c)
            summary = self._summarize(u, f, s, budget)
            if summary.objects:
                ctx = self._finish_context(c)
                for obj in summary.objects:
                    pairs.add((obj, ctx))
            for x, f1, s1 in summary.boundaries:
                if s1 == S1:
                    self._cross_backward(x, f1, c, propagate)
                else:
                    self._cross_forward(x, f1, c, propagate)

    def _summarize(self, node, fstack, state, budget):
        """Algorithm 4 lines 5–9: consult the cache, else run the PPTA.

        Nodes without local edges skip the PPTA (Section 4.3) — they are
        their own boundary when a global edge continues in the travel
        direction.
        """
        pag = self.pag
        if not pag.has_local_edges(node):
            has_boundary = (
                pag.has_global_in(node) if state == S1 else pag.has_global_out(node)
            )
            boundaries = ((node, fstack, state),) if has_boundary else ()
            return PptaResult((), boundaries)
        cached = self.cache.lookup(node, fstack, state)
        if cached is not None:
            if self.observer is not None:
                self.observer("summary-hit", node=node, stack=fstack, state=state)
            return cached
        summary = run_ppta(
            pag, node, fstack, state, budget, self.config.max_field_depth
        )
        self.cache.store(node, fstack, state, summary)
        if self.observer is not None:
            self.observer(
                "summary-miss", node=node, stack=fstack, state=state, summary=summary
            )
        return summary

    # ------------------------------------------------------------------
    # global-edge crossings (Algorithm 4 lines 12–28)
    # ------------------------------------------------------------------
    def _cross_backward(self, x, f, c, propagate):
        pag = self.pag
        for retvar, site in pag.exit_into(x):
            propagate(retvar, f, S1, cross_exit_backward(pag, c, site))
        for actual, site in pag.entry_into(x):
            ctx = cross_entry_backward(pag, c, site)
            if ctx is not UNREALIZABLE:
                propagate(actual, f, S1, ctx)
        for y in pag.global_sources(x):
            propagate(y, f, S1, EMPTY_STACK)

    def _cross_forward(self, x, f, c, propagate):
        pag = self.pag
        for site, formal in pag.entry_from(x):
            propagate(formal, f, S2, cross_entry_forward(pag, c, site))
        for site, target in pag.exit_from(x):
            ctx = cross_exit_forward(pag, c, site)
            if ctx is not UNREALIZABLE:
                propagate(target, f, S2, ctx)
        for y in pag.global_targets(x):
            propagate(y, f, S2, EMPTY_STACK)
