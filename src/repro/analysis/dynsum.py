"""DYNSUM — the paper's contribution (Algorithms 3 and 4).

A query ``pointsTo(v, c)`` runs a worklist over tuples
``(node, field-stack, state, context)``, but — unlike NOREFINE — the
worklist only ever handles **global** edges.  All local reachability is
delegated to the PPTA (:mod:`repro.analysis.ppta`): for each worklist
item, the context-free part ``(node, field-stack, state)`` is looked up in
the cross-query :class:`~repro.analysis.summaries.SummaryCache`, computed
by ``DSPOINTSTO`` on a miss, and then

* every object in the summary is added to the answer under the item's
  context (local edges cannot change context — the key observation of
  Section 4), and
* every boundary tuple is advanced across the global edges adjacent to
  it, per the RRP machine (push on backward-``exit``/forward-``entry``,
  pop-or-empty on backward-``entry``/forward-``exit``, clear on
  ``assignglobal``).

Per Section 4.3, nodes without local edges skip the PPTA entirely and act
as their own (trivial) boundary.

Summaries survive across queries and calling contexts with no precision
loss; ``cache_hits``/``cache_misses`` in each result's ``stats`` expose
the reuse that Figures 4 and 5 measure.  :meth:`DynSum.invalidate_method`
implements the IDE/JIT edit scenario.
"""

from collections import deque

from repro.analysis.base import (
    DemandPointsToAnalysis,
    QueryResult,
    UNREALIZABLE,
    check_query_node,
    cross_entry_backward,
    cross_entry_forward,
    cross_exit_backward,
    cross_exit_forward,
)
from repro.analysis.ppta import (
    PptaResult,
    _run_ppta_array,
    _run_ppta_fast,
    active_traversal_impl,
    run_ppta,
)
from repro.analysis.summaries import SummaryCache, SummaryStore
from repro.cfl.rsm import S1, S2
from repro.cfl.stacks import EMPTY_STACK
from repro.pag.graph import EMPTY_ADJACENCY
from repro.util.errors import BudgetExceededError

#: Lazily bound ``repro.native.session.explore_native`` (the native
#: package imports this module at its own import time).
_NATIVE_EXPLORE = []


class DynSum(DemandPointsToAnalysis):
    """Demand analysis with dynamic, context-independent method summaries."""

    name = "DYNSUM"
    full_precision = True
    memoization = "dynamic-across"
    reuse = "context-independent"
    on_demand = "yes"

    def __init__(self, pag, config=None, cache=None):
        super().__init__(pag, config)
        #: The cross-query summary cache; share one instance between
        #: analyses to model a long-running host process.
        self.cache = cache if cache is not None else SummaryCache()
        # Backends that resolve wire-form entries (the remote store of
        # repro.cacheserver) need the PAG; local backends ignore this.
        bind = getattr(self.cache, "bind_pag", None)
        if bind is not None:
            bind(self.pag)
        #: Optional observer called with (event, **data) at worklist pops
        #: and summary hits/misses — the hook behind
        #: :mod:`repro.analysis.trace`'s Table 1-style traces.
        self.observer = None

    # ------------------------------------------------------------------
    # maintenance hooks for host environments (IDEs / JITs)
    # ------------------------------------------------------------------
    def invalidate_method(self, method_qname):
        """Drop cached summaries of one edited method; answers are
        unaffected, only later queries repay the summarisation cost."""
        return self.cache.invalidate_method(method_qname)

    @property
    def summary_count(self):
        """Distinct summarised boundary points — the Figure 5 numerator
        (see :meth:`SummaryCache.summary_point_count` for the unit)."""
        return self.cache.summary_point_count()

    @property
    def cache_entry_count(self):
        """Raw ``len(Cache)`` — one entry per (node, stack, direction)."""
        return len(self.cache)

    # ------------------------------------------------------------------
    # Algorithm 4
    # ------------------------------------------------------------------
    def _run_query(self, var, context, client):
        check_query_node(self.pag, var)
        budget = self.config.new_budget()
        pairs = set()
        hits_before = self.cache.hits
        misses_before = self.cache.misses
        complete = True
        try:
            self._explore(var, context, pairs, budget)
        except BudgetExceededError:
            complete = False
        # Window deltas over the shared cache's counters: exact when
        # queries run one at a time; under the engine's parallel executor
        # a result's own window may include probes of concurrently
        # running traversals (batch-level stats remain exact).
        stats = {
            "cache_hits": self.cache.hits - hits_before,
            "cache_misses": self.cache.misses - misses_before,
            "summaries": len(self.cache),
        }
        return QueryResult(var, pairs, complete, budget.steps, stats)

    def _explore(self, var, context, pairs, budget):
        """Algorithm 4's worklist.

        Three equivalent implementations: the inlined fast loop below
        (records, locals-bound names, context ops unrolled) is the
        default production path; ``"array"`` mode takes
        :meth:`_explore_array` — the same loop over the CSR image's
        dense int arrays; traced queries (an attached observer) and
        reference-mode runs (:func:`~repro.analysis.ppta.traversal_impl`
        ``"reference"``) take :meth:`_explore_reference` — the retained
        pre-optimization loop over the PAG accessor surface.  All three
        charge the budget once per pop and probe the cache identically.
        """
        impl = active_traversal_impl()
        if self.observer is not None or impl == "reference":
            return self._explore_reference(var, context, pairs, budget)
        if impl == "native":
            if self._explore_native(var, context, pairs, budget):
                return None
            # Kernel unavailable (or this cache/context is not
            # representable): rerun on the array loop.  A refused
            # native attempt touches no Python-side state — budget,
            # pairs and cache counters read as if it never happened.
            return self._explore_array(var, context, pairs, budget)
        if impl == "array":
            return self._explore_array(var, context, pairs, budget)
        pag = self.pag
        get_record = pag.adjacency().get
        empty_record = EMPTY_ADJACENCY
        cache = self.cache
        cache_lookup = cache.lookup
        cache_store = cache.store
        # The default unbounded cache needs no recency bookkeeping, so
        # its probe can be one inlined dict get; every other backend
        # (bounded, sharded, remote) goes through its lookup method.
        plain_entries_get = (
            cache._entries.get if type(cache) is SummaryCache else None
        )
        max_depth = self.config.max_field_depth
        track = self.config.track_heap_contexts
        recursive_sites = pag.recursive_sites()
        limit = budget.limit
        # Local mirror of budget.steps: synced to the budget object
        # around every PPTA call and on every exit, so the shared budget
        # reads exactly as if charge() ran once per pop.
        total = budget.steps
        ceiling = limit if limit is not None else float("inf")
        empty_stack = EMPTY_STACK
        ppta = _run_ppta_fast
        # The visited set holds all-int keys (record index, field-stack
        # uid, state, context uid): stacks are canonical (hash-consed),
        # so uid equality is structural equality, and an int tuple
        # hashes without a Python-level Stack.__hash__ call per probe.
        start_rec = get_record(var)
        start_index = start_rec.index if start_rec is not None else -1
        seen = {(start_index, EMPTY_STACK._uid, S1, context._uid)}
        seen_add = seen.add
        worklist = deque([(var, EMPTY_STACK, S1, context)])
        pop = worklist.popleft
        push = worklist.append
        pairs_add = pairs.add
        size_of = len  # LOAD_FAST for the add-and-compare seen probes
        new_set = set  # miss-path per-method index allocation

        # Int-keyed probe memo (record index, stack uid, state), carried
        # on the cache across queries: repeat probes of one summary —
        # DYNSUM's whole reuse pattern — skip the structural key build.
        # The memo mirrors a subset of the cache's entries for ONE
        # compiled adjacency; the cache resets it on every removal or
        # replacement, and a PAG recompile (different map object)
        # retires it here.  Memo answers still count as cache hits,
        # exactly as the repeated cache.lookup they replace would have;
        # hits accumulate locally and flush in the finally, so the
        # cache's counters read identically on every exit path.
        if plain_entries_get is not None:
            adjacency_map = pag.adjacency()
            memo_pair = cache._fast_memo
            if memo_pair is None or memo_pair[0] is not adjacency_map:
                memo_pair = (adjacency_map, {})
                cache._fast_memo = memo_pair
            qmemo = memo_pair[1]
        else:
            qmemo = {}
        qmemo_get = qmemo.get
        hits = 0

        try:
            while worklist:
                u, f, s, c = pop()
                total += 1
                if total > ceiling:
                    budget.steps = total
                    raise BudgetExceededError(limit)
                rec = get_record(u)
                if rec is None:
                    rec = empty_record
                if rec.has_local_edges:
                    if plain_entries_get is not None:
                        mkey = (rec.index, f._uid, s)
                        summary = qmemo_get(mkey)
                        if summary is None:
                            key = (u, f, s)
                            summary = plain_entries_get(key)
                            if summary is None:
                                cache.misses += 1
                                # run_ppta charges the shared budget
                                # itself — hand the mirror over and take
                                # it back after.
                                budget.steps = total
                                summary = ppta(pag, u, f, s, budget, max_depth)
                                total = budget.steps
                                # Inline plain-cache insert: the probe
                                # just missed and nothing ran in
                                # between, so the key is absent (plain
                                # caches never serve parallel batches).
                                cache._entries[key] = summary
                                cache._facts += summary.size
                                method = u.method
                                if method is not None:
                                    cache._by_method.setdefault(
                                        method, new_set()
                                    ).add(key)
                            else:
                                hits += 1
                            qmemo[mkey] = summary
                        else:
                            hits += 1
                    else:
                        summary = cache_lookup(u, f, s)
                        if summary is None:
                            budget.steps = total
                            summary = ppta(pag, u, f, s, budget, max_depth)
                            total = budget.steps
                            cache_store(u, f, s, summary)
                    objects = summary.objects
                    if objects:
                        ctx = c if track else empty_stack
                        for obj in objects:
                            pairs_add((obj, ctx))
                    boundaries = summary.boundaries
                    if not boundaries:
                        continue
                elif rec.has_global_in if s == S1 else rec.has_global_out:
                    # Section 4.3: no local edges — the node is its own
                    # (trivial) boundary; no cache probe, no PptaResult.
                    boundaries = ((u, f, s),)
                else:
                    continue
                for x, f1, s1 in boundaries:
                    # A node is frequently its own boundary (trivial
                    # nodes always, summarised nodes often) — reuse its
                    # record.
                    brec = rec if x is u else get_record(x)
                    if brec is None:
                        continue  # no global edges to cross
                    # RRP over the combined crossing list: backward
                    # crosses exit (push) / entry (pop-or-empty) /
                    # assignglobal (clear); forward mirrors with entry
                    # pushing (base.cross_* unrolled; op codes from
                    # pag.graph).
                    crossings = (
                        brec.cross_backward if s1 == S1 else brec.cross_forward
                    )
                    f1_uid = f1._uid
                    for op, target, site, tindex in crossings:
                        if op == 0:  # CROSS_PUSH
                            ctx = c if site in recursive_sites else c.push(site)
                        elif op == 1:  # CROSS_POP
                            if site in recursive_sites or c._rest is None:
                                ctx = c
                            elif c._top == site:
                                ctx = c._rest
                            else:
                                continue  # unrealizable
                        else:  # CROSS_CLEAR
                            ctx = empty_stack
                        key = (tindex, f1_uid, s1, ctx._uid)
                        size = size_of(seen)
                        seen_add(key)
                        if size_of(seen) != size:
                            push((target, f1, s1, ctx))
            budget.steps = total
        finally:
            if hits:
                cache.hits += hits

    def _explore_native(self, var, context, pairs, budget):
        """Algorithm 4's worklist in the C kernel — ``True`` when the
        query was handled there (see
        :func:`repro.native.session.explore_native` for the marshalling
        and the bit-parity contract with :meth:`_explore_array`)."""
        if not _NATIVE_EXPLORE:
            from repro.native.session import explore_native

            _NATIVE_EXPLORE.append(explore_native)
        return _NATIVE_EXPLORE[0](self, var, context, pairs, budget)

    def _explore_array(self, var, context, pairs, budget):
        """Algorithm 4's worklist over the CSR image.

        Mirrors the fast loop in :meth:`_explore` pop-for-pop — same
        budget charging, same cache probe discipline (structural
        ``(node, stack, state)`` keys on the shared cache, so summaries
        interoperate across impls), same boundary-crossing order — but
        over :class:`repro.pag.csr.CsrImage` rows: the boundary flags
        are one ``bytes`` index, the crossing rows carry pre-packed
        target addends plus the target node (recursive-site handling is
        folded into the op codes at compile time), and the visited set
        keys on ``(packed state int, context uid)`` pairs.
        """
        pag = self.pag
        image = pag.csr()
        node_index_get = image.node_index.get
        n = image.n_nodes
        stride = n * 4 + 4
        flags = image.flags
        cb_rows = image.cb_rows
        cf_rows = image.cf_rows
        cache = self.cache
        cache_lookup = cache.lookup
        cache_store = cache.store
        plain_entries_get = (
            cache._entries.get if type(cache) is SummaryCache else None
        )
        max_depth = self.config.max_field_depth
        track = self.config.track_heap_contexts
        limit = budget.limit
        total = budget.steps
        ceiling = limit if limit is not None else float("inf")
        empty_stack = EMPTY_STACK
        ppta = _run_ppta_array
        t0 = node_index_get(var, n) * 4 + S1
        # Visited keys are single ints: (field-stack uid * stride +
        # packed state) shifted past a 33-bit context-uid field.  Stack
        # uids are sequential interning counters, and 2**33 live stacks
        # would exhaust memory thousands of times over, so the packing
        # is exact (an encoding, not a hash) — and an int key skips the
        # tuple allocation and element-wise hash of the fast loop's
        # tuple keys on every crossing edge.
        seen = {(EMPTY_STACK._uid * stride + t0) << 33 | context._uid}
        seen_add = seen.add
        # Worklist items carry the packed state int ``t`` (index*4 +
        # state) straight off the crossing rows: the pop recovers
        # ``s = t & 3`` and ``ui = t >> 2`` with two int ops instead of
        # threading both through every tuple.
        worklist = deque([(var, t0, EMPTY_STACK, context)])
        pop = worklist.popleft
        push = worklist.append
        pairs_add = pairs.add
        size_of = len  # LOAD_FAST for the add-and-compare seen probes
        new_set = set  # miss-path per-method index allocation

        # The probe memo (packed int key) is retired whenever the CSR
        # image changes identity — a different numbering would alias
        # keys — mirroring how the fast loop retires it per adjacency
        # compile.  Shared-cache semantics are unchanged: memo answers
        # count as hits, flushed in the finally.
        if plain_entries_get is not None:
            memo_pair = cache._fast_memo
            if memo_pair is None or memo_pair[0] is not image:
                memo_pair = (image, {})
                cache._fast_memo = memo_pair
            qmemo = memo_pair[1]
        else:
            qmemo = {}
        qmemo_get = qmemo.get
        hits = 0

        try:
            while worklist:
                u, t, f, c = pop()
                total += 1
                if total > ceiling:
                    budget.steps = total
                    raise BudgetExceededError(limit)
                s = t & 3
                ui = t >> 2
                flag = flags[ui]  # sentinel index n reads the zero byte
                if flag & 4:  # FLAG_LOCAL
                    if plain_entries_get is not None:
                        mkey = f._uid * stride + t
                        summary = qmemo_get(mkey)
                        if summary is None:
                            key = (u, f, s)
                            summary = plain_entries_get(key)
                            if summary is None:
                                cache.misses += 1
                                budget.steps = total
                                summary = ppta(pag, u, f, s, budget, max_depth)
                                total = budget.steps
                                cache._entries[key] = summary
                                cache._facts += summary.size
                                method = u.method
                                if method is not None:
                                    cache._by_method.setdefault(
                                        method, new_set()
                                    ).add(key)
                            else:
                                hits += 1
                            qmemo[mkey] = summary
                        else:
                            hits += 1
                    else:
                        summary = cache_lookup(u, f, s)
                        if summary is None:
                            budget.steps = total
                            summary = ppta(pag, u, f, s, budget, max_depth)
                            total = budget.steps
                            cache_store(u, f, s, summary)
                    objects = summary.objects
                    if objects:
                        ctx = c if track else empty_stack
                        for obj in objects:
                            pairs_add((obj, ctx))
                    boundaries = summary.boundaries
                    if not boundaries:
                        continue
                elif flag & s:  # FLAG_GLOBAL_IN gates S1, _OUT gates S2
                    # Section 4.3: no local edges — the node is its own
                    # (trivial) boundary; no cache probe, no PptaResult.
                    boundaries = ((u, f, s),)
                else:
                    continue
                for x, f1, s1 in boundaries:
                    xi = ui if x is u else node_index_get(x, n)
                    row = cb_rows[xi] if s1 == S1 else cf_rows[xi]
                    if not row:
                        continue  # no global edges to cross
                    f1key = f1._uid * stride
                    for op, site, t1, xnode in row:
                        if op == 0:  # OP_PUSH
                            ctx = c.push(site)
                        elif op == 2:  # OP_POP
                            if c._rest is None:
                                ctx = c
                            elif c._top == site:
                                ctx = c._rest
                            else:
                                continue  # unrealizable
                        elif op == 4:  # OP_CLEAR
                            ctx = empty_stack
                        else:  # OP_PUSH_REC / OP_POP_REC: context unchanged
                            ctx = c
                        key = (f1key + t1) << 33 | ctx._uid
                        size = size_of(seen)
                        seen_add(key)
                        if size_of(seen) != size:
                            push((xnode, t1, f1, ctx))
            budget.steps = total
        finally:
            if hits:
                cache.hits += hits

    def _explore_reference(self, var, context, pairs, budget):
        """The retained pre-optimization worklist (PAG accessor surface).

        Verbatim the loop the fast path replaced: helper calls per pop,
        accessor methods per edge list.  Runs for traced queries (the
        observer hooks live here) and under
        ``traversal_impl("reference")`` — paired with
        :func:`~repro.analysis.ppta.run_ppta_reference` it *is* the
        pre-PR DYNSUM, the baseline ``repro-perf`` measures speedups
        against and the differential tests compare answers with.
        """
        start = (var, EMPTY_STACK, S1, context)
        seen = {start}
        worklist = deque([start])

        def propagate(node, fstack, state, ctx):
            item = (node, fstack, state, ctx)
            if item not in seen:
                seen.add(item)
                worklist.append(item)

        while worklist:
            u, f, s, c = worklist.popleft()
            budget.charge()
            if self.observer is not None:
                self.observer("visit", node=u, stack=f, state=s, context=c)
            summary = self._summarize(u, f, s, budget)
            if summary.objects:
                ctx = self._finish_context(c)
                for obj in summary.objects:
                    pairs.add((obj, ctx))
            for x, f1, s1 in summary.boundaries:
                if s1 == S1:
                    self._cross_backward(x, f1, c, propagate)
                else:
                    self._cross_forward(x, f1, c, propagate)

    def _summarize(self, node, fstack, state, budget):
        """Algorithm 4 lines 5–9: consult the cache, else run the PPTA.

        Nodes without local edges skip the PPTA (Section 4.3) — they are
        their own boundary when a global edge continues in the travel
        direction.
        """
        pag = self.pag
        if not pag.has_local_edges(node):
            has_boundary = (
                pag.has_global_in(node) if state == S1 else pag.has_global_out(node)
            )
            boundaries = ((node, fstack, state),) if has_boundary else ()
            return PptaResult((), boundaries)
        # Probe through the generic store surface (the pre-PR probe
        # path): the fast loop's specialised plain-cache probe is part
        # of what reference-mode measurements baseline against, so it
        # must not leak in here.  Counters and results are identical.
        cache = self.cache
        if type(cache) is SummaryCache:
            cached = SummaryStore.lookup(cache, node, fstack, state)
        else:
            cached = cache.lookup(node, fstack, state)
        if cached is not None:
            if self.observer is not None:
                self.observer("summary-hit", node=node, stack=fstack, state=state)
            return cached
        summary = run_ppta(
            pag, node, fstack, state, budget, self.config.max_field_depth
        )
        if type(cache) is SummaryCache:
            SummaryStore.store(cache, node, fstack, state, summary)
        else:
            cache.store(node, fstack, state, summary)
        if self.observer is not None:
            self.observer(
                "summary-miss", node=node, stack=fstack, state=state, summary=summary
            )
        return summary

    # ------------------------------------------------------------------
    # global-edge crossings (Algorithm 4 lines 12–28)
    # ------------------------------------------------------------------
    def _cross_backward(self, x, f, c, propagate):
        pag = self.pag
        for retvar, site in pag.exit_into(x):
            propagate(retvar, f, S1, cross_exit_backward(pag, c, site))
        for actual, site in pag.entry_into(x):
            ctx = cross_entry_backward(pag, c, site)
            if ctx is not UNREALIZABLE:
                propagate(actual, f, S1, ctx)
        for y in pag.global_sources(x):
            propagate(y, f, S1, EMPTY_STACK)

    def _cross_forward(self, x, f, c, propagate):
        pag = self.pag
        for site, formal in pag.entry_from(x):
            propagate(formal, f, S2, cross_entry_forward(pag, c, site))
        for site, target in pag.exit_from(x):
            ctx = cross_exit_forward(pag, c, site)
            if ctx is not UNREALIZABLE:
                propagate(target, f, S2, ctx)
        for y in pag.global_targets(x):
            propagate(y, f, S2, EMPTY_STACK)
