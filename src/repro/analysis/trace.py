"""Table 1-style query traces.

The paper's Table 1 walks through DYNSUM answering the two motivating
queries step by step, showing at each step the current node, field
stack, RSM state, context stack, and where summaries were *reused*.
:class:`QueryTracer` reproduces that view for any query: attach it to a
:class:`~repro.analysis.dynsum.DynSum` instance, run the query, and
render with :func:`format_trace`.

Example::

    dynsum = DynSum(pag)
    with QueryTracer(dynsum) as tracer:
        dynsum.points_to_name("Main.main", "s1")
    print(format_trace(tracer.steps))
"""

from repro.cfl.rsm import state_name


class TraceStep:
    """One recorded event of a traced query."""

    __slots__ = ("index", "event", "node", "stack", "state", "context", "detail")

    def __init__(self, index, event, node, stack, state, context=None, detail=""):
        self.index = index
        self.event = event  # visit | summary-hit | summary-miss
        self.node = node
        self.stack = stack
        self.state = state
        self.context = context
        self.detail = detail

    def fields(self):
        """The field stack as plain field names, bottom-to-top."""
        return tuple(entry[0] for entry in self.stack.to_tuple())

    def __repr__(self):
        ctx = f" c={self.context!r}" if self.context is not None else ""
        return (
            f"TraceStep({self.index}, {self.event}, {self.node!r}, "
            f"f={list(self.fields())}, {state_name(self.state)}{ctx})"
        )


class QueryTracer:
    """Context manager collecting a DYNSUM query's events.

    Attaching replaces the analysis's ``observer`` for the duration of
    the ``with`` block (nesting is rejected to keep traces unambiguous).
    """

    def __init__(self, analysis):
        self.analysis = analysis
        self.steps = []

    def __enter__(self):
        if self.analysis.observer is not None:
            raise RuntimeError("analysis already has an observer attached")
        self.analysis.observer = self._record
        return self

    def __exit__(self, exc_type, exc, tb):
        self.analysis.observer = None
        return False

    def _record(self, event, node, stack, state, context=None, summary=None):
        detail = ""
        if event == "summary-hit":
            detail = "reuse"
        elif event == "summary-miss" and summary is not None:
            detail = (
                f"ppta: {len(summary.objects)} obj, "
                f"{len(summary.boundaries)} boundary"
            )
        self.steps.append(
            TraceStep(len(self.steps), event, node, stack, state, context, detail)
        )

    @property
    def visits(self):
        return [s for s in self.steps if s.event == "visit"]

    @property
    def reuse_count(self):
        return sum(1 for s in self.steps if s.event == "summary-hit")


def format_trace(steps, max_rows=None):
    """Render steps in the layout of the paper's Table 1."""
    headers = ("step", "event", "v", "f", "s", "c", "")
    rows = []
    for step in steps if max_rows is None else steps[:max_rows]:
        fields = ",".join(step.fields())
        context = (
            ",".join(str(site) for site in reversed(list(step.context)))
            if step.context is not None
            else ""
        )
        rows.append(
            (
                str(step.index),
                step.event,
                repr(step.node),
                f"[{fields}]",
                state_name(step.state),
                f"[{context}]",
                step.detail,
            )
        )
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    if max_rows is not None and len(steps) > max_rows:
        lines.append(f"... ({len(steps) - max_rows} more steps)")
    return "\n".join(lines)
