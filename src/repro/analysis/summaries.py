"""The DYNSUM summary cache (Algorithm 4's ``Cache``).

Maps ``(node, field-stack, state)`` triples — deliberately **without** any
calling context — to completed :class:`~repro.analysis.ppta.PptaResult`
summaries.  Context-independence is the paper's key idea: the same local
summary serves every calling context of the method, and every later query.

The cache also supports method-granular invalidation, the operation an
IDE/JIT host would use when code is edited (the low-budget environments of
Sections 1 and 5.3): dropping a method's entries never changes any answer,
only the cost of recomputing them, a property the test suite checks.
"""


class SummaryCache:
    """Cross-query store of PPTA summaries with hit/miss accounting."""

    def __init__(self):
        self._entries = {}
        self._by_method = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, node, field_stack, state):
        """Return the cached summary or ``None`` (and count the probe)."""
        entry = self._entries.get((node, field_stack, state))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def store(self, node, field_stack, state, ppta_result):
        """Insert a completed summary.

        Only fully computed summaries may be stored — a PPTA aborted by
        budget exhaustion must be discarded by the caller, mirroring the
        paper's observation that ad-hoc caches cannot hold unresolved
        points-to sets.
        """
        key = (node, field_stack, state)
        if key not in self._entries:
            self._entries[key] = ppta_result
            if node.method is not None:
                self._by_method.setdefault(node.method, []).append(key)

    def invalidate_method(self, method_qname):
        """Drop every summary keyed in ``method_qname``.

        PPTA summaries only mention nodes of one method (local edges never
        leave it), so removing the keys of that method removes all facts
        that could be stale after the method's body changes.  Returns the
        number of entries dropped.
        """
        keys = self._by_method.pop(method_qname, [])
        for key in keys:
            self._entries.pop(key, None)
        return len(keys)

    def clear(self):
        self._entries.clear()
        self._by_method.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self):
        """Number of summaries — the paper's Figure 5 metric ("the number
        of summaries computed is available as the size of Cache")."""
        return len(self._entries)

    def summary_point_count(self):
        """Distinct ``(node, direction)`` pairs holding a summary.

        This is the unit comparable with STASUM's offline table: one
        STASUM summary per boundary point covers *all* field stacks in
        delta form, whereas the dynamic cache partitions the same point
        across the concrete stacks queries actually produced.  Figure 5
        therefore normalises summarised points, not raw cache keys.
        """
        return len({(node, state) for node, _stack, state in self._entries})

    def __contains__(self, key):
        return key in self._entries

    def total_facts(self):
        """Sum of summary sizes (objects + boundary tuples)."""
        return sum(entry.size for entry in self._entries.values())

    def __repr__(self):
        return (
            f"SummaryCache({len(self._entries)} summaries, "
            f"hits={self.hits}, misses={self.misses})"
        )
