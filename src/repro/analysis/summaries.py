"""The DYNSUM summary cache (Algorithm 4's ``Cache``) — a backend-pluggable store layer.

Maps ``(node, field-stack, state)`` triples — deliberately **without** any
calling context — to completed :class:`~repro.analysis.ppta.PptaResult`
summaries.  Context-independence is the paper's key idea: the same local
summary serves every calling context of the method, and every later query.

Every store is a **backend** behind one explicit contract,
:class:`SummaryBackend` — the seam the engine, the incremental session,
the snapshot layer and the process-level cache service all program
against.  Four local backends ship here:

* :class:`SummaryCache` — the unbounded store of the paper's experiments
  (queries stop at a few thousand, so the cache never needs a ceiling);
* :class:`BoundedSummaryCache` — an LRU, size-capped store for the
  long-running IDE/JIT hosts of Sections 1 and 5.3, where query traffic
  is open-ended and memory is not.  Capacity can be capped by entry count
  and/or by total summary facts (a proxy for bytes; see
  :meth:`SummaryStore.approx_bytes`);
* :class:`CostAwareSummaryCache` — the same ceilings, but the victim is
  chosen by **recomputation value**: the entry with the lowest
  steps-to-recompute per byte of memory freed goes first (summaries
  record the PPTA steps that built them), so one giant cheap summary can
  no longer push out many expensive small ones the way pure LRU lets it;
* :class:`ShardedSummaryCache` — N independent shards, partitioned by
  the key node's **method** (the invalidation granularity), each with
  its own lock, so parallel traversals, eviction and
  ``invalidate_method`` never contend on one global structure.  This is
  the store the engine's :class:`~repro.engine.executor.ParallelExecutor`
  requires, and the partition (:func:`shard_for_method`, CRC-32) that the
  multi-process cache service inherits unchanged.

A fifth backend lives out of tree:
:class:`repro.cacheserver.client.RemoteSummaryCache` speaks the same
contract but forwards traffic to shard-server *processes*, with a local
read-through tier — the engine cannot tell the difference, which is the
point of the seam.

Eviction is always *safe*: a summary is a pure memo of ``DSPOINTSTO``, so
dropping one never changes any answer — only the cost of recomputing it.
The same holds for :meth:`SummaryStore.invalidate_method`, the operation
an IDE/JIT host uses when code is edited: method-granular invalidation
and capacity eviction compose freely because both merely forget memos
(the test suite checks both properties).
"""

import heapq
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

#: Rough memory model for :meth:`SummaryStore.approx_bytes`: Python-object
#: overhead per cache entry (key tuple + dict slot + PptaResult shell) and
#: per summary fact (an object reference or a boundary triple).
ENTRY_OVERHEAD_BYTES = 240
FACT_BYTES = 96


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of a store's accounting.

    ``facts`` is the Figure-5 unit (objects + boundary tuples held);
    ``approx_bytes`` applies the module's crude memory model so hosts can
    budget in bytes without a real profiler.
    """

    entries: int
    facts: int
    hits: int
    misses: int
    evictions: int
    invalidated: int
    approx_bytes: int
    max_entries: Optional[int] = None
    max_facts: Optional[int] = None

    @property
    def probes(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        """Fraction of probes answered from the cache (0.0 when unprobed)."""
        probes = self.probes
        return self.hits / probes if probes else 0.0

    @property
    def bounded(self):
        return self.max_entries is not None or self.max_facts is not None


class SummaryBackend:
    """The explicit store contract — every summary backend implements this.

    The engine layer (:class:`~repro.engine.core.PointsToEngine`), the
    incremental session, the snapshot codec and the cache service client
    only ever call what is declared here, so a backend can be an
    in-process dict, a sharded locked store, or a stub forwarding to
    shard-server processes without any caller changing.

    The contract splits into:

    * **the cache protocol** — :meth:`lookup`, :meth:`store`,
      :meth:`invalidate_method`, :meth:`clear` (Algorithm 4's surface
      plus the IDE edit hook);
    * **capacity cooperation** — :meth:`has_room`, :meth:`promote`,
      :meth:`spawn` (what summary migration after an edit needs);
    * **introspection** — :meth:`entries`, :meth:`entries_by_recency`,
      ``len()``, ``in``, :meth:`summary_point_count`,
      :meth:`total_facts`, :meth:`approx_bytes`, :meth:`stats_snapshot`,
      :meth:`restore_counters`;
    * **environment hooks** — :meth:`bind_pag`, called when the backend
      is attached to an analysis.  Local backends ignore it; a remote
      backend needs the PAG to resolve wire entries back to nodes.

    ``concurrent_safe`` declares whether the backend tolerates concurrent
    ``lookup``/``store``/``invalidate_method`` calls from multiple
    threads; the engine's parallel executor refuses to fan out over one
    that does not.  ``eviction`` names the capacity policy (``"lru"`` or
    ``"cost"``) so snapshots can round-trip it.
    """

    #: Capacity limits (``None`` = unbounded).
    max_entries = None
    max_facts = None
    concurrent_safe = False
    eviction = "lru"

    # -- the cache protocol -------------------------------------------
    def lookup(self, node, field_stack, state):
        raise NotImplementedError

    def store(self, node, field_stack, state, ppta_result):
        raise NotImplementedError

    def invalidate_method(self, method_qname):
        raise NotImplementedError

    def clear(self):
        raise NotImplementedError

    # -- consistency epochs -------------------------------------------
    # Every backend carries a per-method **consistency epoch**: a
    # monotonic int, starting at 0, bumped by each invalidation of the
    # method (the IDE edit hook).  The epoch names the program version
    # a method's summaries were computed against, so a distributed tier
    # (the shard servers of :mod:`repro.cacheserver`) can refuse
    # write-throughs from clients that have not observed an edit yet —
    # stale summaries are rejected at the wire instead of silently
    # overwriting fresher ones.  Epochs are *version* state, not cache
    # content: ``clear()`` keeps them, ``spawn()`` carries them into
    # the fresh store, and invalidating an absent method still bumps.

    def method_epoch(self, method_qname):
        """The current consistency epoch of ``method_qname`` (0 if the
        method was never invalidated)."""
        epochs = getattr(self, "_method_epochs", None)
        return 0 if epochs is None else epochs.get(method_qname, 0)

    def bump_epoch(self, method_qname):
        """Advance ``method_qname``'s epoch by one; returns the new
        value.  Called by :meth:`invalidate_method` — an edit *is* an
        epoch bump."""
        epochs = getattr(self, "_method_epochs", None)
        if epochs is None:
            epochs = {}
            self._method_epochs = epochs
        epochs[method_qname] = new = epochs.get(method_qname, 0) + 1
        return new

    def method_epochs(self):
        """A snapshot of every non-zero method epoch (dict copy)."""
        return dict(getattr(self, "_method_epochs", None) or {})

    def adopt_epochs(self, epochs):
        """Merge ``epochs`` in, keeping the larger value per method —
        how :meth:`spawn` carries version state into a fresh store."""
        if not epochs:
            return
        mine = getattr(self, "_method_epochs", None)
        if mine is None:
            mine = {}
            self._method_epochs = mine
        for method, epoch in epochs.items():
            if epoch > mine.get(method, 0):
                mine[method] = epoch

    # -- capacity cooperation -----------------------------------------
    def has_room(self, node, facts=0):
        """Would storing a ``facts``-sized summary for ``node`` fit
        without evicting a resident entry?  Unbounded backends always
        say yes; capacity-aware callers (summary migration after an
        edit) use this to *skip* entries instead of churning the store."""
        return True

    def promote(self, key):
        """Mark ``key`` most-recently-used without recording a probe."""

    def spawn(self):
        """A fresh, empty backend with the same policy (capacity,
        sharding, remote topology)."""
        raise NotImplementedError

    # -- environment hooks --------------------------------------------
    def bind_pag(self, pag):
        """Attach the PAG the backend's summaries are anchored in.

        Called by :class:`~repro.analysis.dynsum.DynSum` on construction
        (and again after every incremental rebuild).  Local backends
        store plain node objects and need nothing; a remote backend uses
        the PAG to resolve wire-form entries it fetches from shard
        servers.
        """

    # -- introspection -------------------------------------------------
    def entries(self):
        raise NotImplementedError

    def entries_by_recency(self, hottest_first=True):
        raise NotImplementedError

    def __len__(self):
        raise NotImplementedError

    def summary_point_count(self):
        raise NotImplementedError

    def total_facts(self):
        raise NotImplementedError

    def approx_bytes(self):
        raise NotImplementedError

    def stats_snapshot(self):
        raise NotImplementedError

    def restore_counters(self, stats):
        raise NotImplementedError


class SummaryStore(SummaryBackend):
    """Shared container and bookkeeping of the in-process backends.

    Subclasses choose the container (:meth:`_make_container`) and the
    capacity policy (:meth:`_touch` / :meth:`_enforce_capacity` /
    :meth:`_pick_victim`); all the accounting — hit/miss counts,
    per-method index, fact totals, eviction and invalidation counters —
    lives here so stores stay interchangeable behind
    :class:`~repro.analysis.dynsum.DynSum` and the engine layer.
    """

    def __init__(self):
        self._entries = self._make_container()
        self._by_method = {}
        self._facts = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0
        #: Probe memo of the DYNSUM fast path: ``(adjacency_map,
        #: {(record index, stack uid, state): summary})`` — an int-keyed
        #: mirror of a *subset* of ``_entries``, valid only for one
        #: compiled PAG adjacency.  Any removal or replacement resets it
        #: (see ``_invalidate_fast_memo``); only the plain unbounded
        #: cache ever populates it.
        self._fast_memo = None
        #: The native kernel's mirror of this cache: ``(CsrImage,
        #: _NativeSession-or-None)`` (see ``repro.native.session``).
        #: The kernel's summary table can only append, so any removal
        #: or replacement here must retire the whole mirror — reset at
        #: exactly the sites that reset ``_fast_memo``.
        self._native_memo = None

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    def _make_container(self):
        return {}

    def _touch(self, key):
        """Record a hit on ``key`` (recency bookkeeping; no-op here)."""

    def _enforce_capacity(self):
        """Evict until within capacity (no-op for unbounded stores)."""

    def promote(self, key):
        """Mark ``key`` most-recently-used without recording a probe.

        Migration uses this to reconstruct recency order in a freshly
        spawned store; unlike :meth:`lookup` it never perturbs the
        hit/miss accounting.
        """
        if key in self._entries:
            self._touch(key)

    def spawn(self):
        """A fresh, empty store with the same capacity policy.

        Used when a host rebuilds its PAG (see
        :class:`~repro.analysis.incremental.IncrementalAnalysisSession`)
        and needs a like-configured cache to migrate summaries into.
        Consistency epochs ride along — they version the program, not
        the resident entries.
        """
        fresh = type(self)()
        fresh.adopt_epochs(self.method_epochs())
        return fresh

    # ------------------------------------------------------------------
    # the cache contract (Algorithm 4 lines 5-9 call these)
    # ------------------------------------------------------------------
    def lookup(self, node, field_stack, state):
        """Return the cached summary or ``None`` (and count the probe)."""
        key = (node, field_stack, state)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
            self._touch(key)
        return entry

    def store(self, node, field_stack, state, ppta_result):
        """Insert a completed summary; returns True when the store's
        contents changed (new key, or a differing summary replaced).

        Only fully computed summaries may be stored — a PPTA aborted by
        budget exhaustion must be discarded by the caller, mirroring the
        paper's observation that ad-hoc caches cannot hold unresolved
        points-to sets.

        Re-storing a resident key with an **equal** summary keeps the
        existing entry (within one process the two are always equal —
        summaries are pure memos of ``DSPOINTSTO``) but *refreshes its
        recency*: the caller just recomputed it, which is exactly the
        evidence an LRU policy keys eviction on.  A **differing**
        summary replaces the resident one: that can only happen when
        the store is fed across a program-version boundary (wire-level
        ``store`` ops, warm starts over an edited program), and there
        the incoming publish is the fresher truth — the same
        self-heal rule the shard servers apply.
        """
        key = (node, field_stack, state)
        resident = self._entries.get(key)
        if resident is not None:
            if (
                resident.objects == ppta_result.objects
                and resident.boundaries == ppta_result.boundaries
            ):
                self._touch(key)
                return False
            self._fast_memo = None  # the replaced summary may be memoed
            self._native_memo = None  # ... and mirrored in the kernel
            self._facts += ppta_result.size - resident.size
            self._entries[key] = ppta_result
            self._touch(key)
            self._enforce_capacity()
            return True
        self._entries[key] = ppta_result
        self._facts += ppta_result.size
        if node.method is not None:
            self._by_method.setdefault(node.method, set()).add(key)
        self._enforce_capacity()
        return True

    def _remove(self, key):
        """Drop one entry and unindex it; returns the removed summary."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return None
        self._fast_memo = None  # the dropped summary may be memoed
        self._native_memo = None  # ... and mirrored in the kernel
        self._facts -= entry.size
        method = key[0].method
        if method is not None:
            keys = self._by_method.get(method)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_method[method]
        return entry

    def invalidate_method(self, method_qname):
        """Drop every summary keyed in ``method_qname``.

        PPTA summaries only mention nodes of one method (local edges never
        leave it), so removing the keys of that method removes all facts
        that could be stale after the method's body changes.  Entries the
        capacity policy already evicted are gone from the index, so they
        are neither double-counted nor resurrected.  Returns the number
        of entries dropped.  The method's consistency epoch advances
        whether or not anything was resident — the edit happened either
        way.
        """
        self.bump_epoch(method_qname)
        keys = self._by_method.pop(method_qname, ())
        dropped = sum(1 for key in list(keys) if self._remove(key) is not None)
        self.invalidated += dropped
        return dropped

    def clear(self):
        self._entries.clear()
        self._by_method.clear()
        self._facts = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0
        self._fast_memo = None
        self._native_memo = None

    def restore_counters(self, stats):
        """Overwrite the probe/eviction/invalidation counters from a
        :class:`CacheStats` — the restore hook of
        :mod:`repro.api.snapshot`, so a deserialized store reports the
        same lifetime accounting it was saved with.  Entry/fact totals
        are never restored this way; they always derive from the
        resident entries."""
        self.hits = stats.hits
        self.misses = stats.misses
        self.evictions = stats.evictions
        self.invalidated = stats.invalidated

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def entries(self):
        """Iterate ``((node, field_stack, state), summary)`` pairs in
        storage order (least-recently-used first for LRU stores)."""
        return iter(self._entries.items())

    def entries_by_recency(self, hottest_first=True):
        """Entries ordered by recency — most-recently-used first when
        ``hottest_first``.  For LRU stores storage order *is* recency
        order; unbounded stores fall back to insertion order (newest
        entries stand in for hottest)."""
        items = list(self._entries.items())
        return reversed(items) if hottest_first else iter(items)

    def __len__(self):
        """Number of summaries — the paper's Figure 5 metric ("the number
        of summaries computed is available as the size of Cache")."""
        return len(self._entries)

    def summary_point_count(self):
        """Distinct ``(node, direction)`` pairs holding a summary.

        This is the unit comparable with STASUM's offline table: one
        STASUM summary per boundary point covers *all* field stacks in
        delta form, whereas the dynamic cache partitions the same point
        across the concrete stacks queries actually produced.  Figure 5
        therefore normalises summarised points, not raw cache keys.
        """
        return len({(node, state) for node, _stack, state in self._entries})

    def __contains__(self, key):
        return key in self._entries

    def total_facts(self):
        """Sum of summary sizes (objects + boundary tuples)."""
        return self._facts

    def approx_bytes(self):
        """Estimated resident size under the module's memory model."""
        return len(self._entries) * ENTRY_OVERHEAD_BYTES + self._facts * FACT_BYTES

    def stats_snapshot(self):
        """An immutable :class:`CacheStats` for dashboards and tests."""
        return CacheStats(
            entries=len(self._entries),
            facts=self._facts,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            invalidated=self.invalidated,
            approx_bytes=self.approx_bytes(),
            max_entries=self.max_entries,
            max_facts=self.max_facts,
        )

    def __repr__(self):
        return (
            f"{type(self).__name__}({len(self._entries)} summaries, "
            f"hits={self.hits}, misses={self.misses})"
        )


class SummaryCache(SummaryStore):
    """Unbounded cross-query store of PPTA summaries — the paper's
    ``Cache``, suitable for closed workloads like the shipped benchmark
    protocols."""

    def lookup(self, node, field_stack, state):
        """Unbounded-store specialisation: no recency to refresh, so the
        probe is one dict get plus a counter — this is the hottest store
        call on the DYNSUM fast path."""
        entry = self._entries.get((node, field_stack, state))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def store(self, node, field_stack, state, ppta_result):
        """Unbounded-store specialisation of :meth:`SummaryStore.store`:
        same contract and accounting, minus the recency/capacity hooks
        that are no-ops without a ceiling."""
        key = (node, field_stack, state)
        entries = self._entries
        resident = entries.get(key)
        if resident is not None:
            if (
                resident.objects == ppta_result.objects
                and resident.boundaries == ppta_result.boundaries
            ):
                return False
            self._fast_memo = None  # the replaced summary may be memoed
            self._native_memo = None  # ... and mirrored in the kernel
            self._facts += ppta_result.size - resident.size
            entries[key] = ppta_result
            return True
        entries[key] = ppta_result
        self._facts += ppta_result.size
        if node.method is not None:
            self._by_method.setdefault(node.method, set()).add(key)
        return True


class BoundedSummaryCache(SummaryStore):
    """LRU summary store with entry- and/or fact-count ceilings.

    ``max_entries`` caps the number of cached summaries; ``max_facts``
    caps the total number of facts they hold (the byte proxy).  On
    insertion the least-recently-used entries are evicted until both
    ceilings hold again; lookups refresh recency.  One pathological
    summary larger than ``max_facts`` on its own is kept (evicting it
    immediately would only thrash), so the fact ceiling is honoured up to
    a single resident entry — the entry ceiling is always exact.
    """

    def __init__(self, max_entries=None, max_facts=None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_facts is not None and max_facts < 1:
            raise ValueError(f"max_facts must be >= 1, got {max_facts}")
        self.max_entries = max_entries
        self.max_facts = max_facts
        super().__init__()

    def _make_container(self):
        return OrderedDict()

    def spawn(self):
        fresh = type(self)(max_entries=self.max_entries, max_facts=self.max_facts)
        fresh.adopt_epochs(self.method_epochs())
        return fresh

    def _touch(self, key):
        self._entries.move_to_end(key)

    def has_room(self, node, facts=0):
        if not self._entries:
            # Mirror `_enforce_capacity`'s single-resident-entry
            # allowance: one pathological summary is always admitted.
            return True
        if self.max_entries is not None and len(self._entries) >= self.max_entries:
            return False
        if self.max_facts is not None and self._facts + facts > self.max_facts:
            return False
        return True

    def _over_capacity(self):
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            return True
        if self.max_facts is not None and self._facts > self.max_facts:
            return True
        return False

    def _pick_victim(self):
        """The key to evict next — least-recently-used for this class."""
        return next(iter(self._entries))

    def _enforce_capacity(self):
        while self._over_capacity() and len(self._entries) > 1:
            self._remove(self._pick_victim())
            self.evictions += 1

    def __repr__(self):
        caps = []
        if self.max_entries is not None:
            caps.append(f"max_entries={self.max_entries}")
        if self.max_facts is not None:
            caps.append(f"max_facts={self.max_facts}")
        cap = ", ".join(caps) or "unbounded"
        return (
            f"{type(self).__name__}({len(self._entries)} summaries, {cap}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )


def entry_cost_score(summary):
    """Steps-to-recompute per byte freed — the cost-aware eviction rank.

    Summaries record the PPTA steps that built them
    (:attr:`~repro.analysis.ppta.PptaResult.steps`); dividing by the
    entry's share of the memory model gives "how much recomputation does
    one reclaimed byte cost".  The *lowest* score is the best victim.
    Entries with unknown cost (e.g. replayed from a pre-1.1 snapshot
    that did not record steps) score 0 and go first — unknown is assumed
    cheap.
    """
    entry_bytes = ENTRY_OVERHEAD_BYTES + summary.size * FACT_BYTES
    return getattr(summary, "steps", 0) / entry_bytes


class CostAwareSummaryCache(BoundedSummaryCache):
    """A bounded store that weighs recomputation cost into eviction.

    Same ceilings as :class:`BoundedSummaryCache`, but the victim is
    chosen by the Greedy-Dual rule rather than recency alone: every
    entry carries a priority ``H = L + score`` where ``score`` is its
    :func:`entry_cost_score` (PPTA steps to recompute per byte of
    memory freed) and ``L`` is an inflation clock; a hit refreshes the
    entry's ``H`` against the current clock, and evicting the
    minimum-``H`` entry advances the clock to that value.  The clock is
    what pure cost ranking lacks: an expensive summary that stops being
    used ages out instead of pinning the cache forever, while among
    equally recent entries the cheap-to-recompute ones still go first.
    With all scores equal the rule degenerates to exact LRU, so this is
    a strict generalisation.

    Victim selection runs on a **heap-backed victim index** with lazy
    invalidation: every priority refresh pushes a ``(priority, stamp,
    key)`` record, stale records (key gone, or re-stamped since) are
    discarded as they surface, and the heap is compacted when stale
    records outnumber live ones — so eviction is O(log n) instead of
    the O(n) scans the first cut paid, which is what keeps stores past
    ~10⁵ entries viable.  Ties on priority resolve by stamp, i.e. by
    recency — exactly the coldest-first order the scan implementation
    picked, so victim choice is unchanged.

    ``admit_facts`` adds size-based **admission control** (classic
    Greedy-Dual-Size practice): a summary holding more than that many
    facts is not cached at all (``store`` returns False and counts it
    in :attr:`rejected`) — one giant summary can otherwise flush an
    entire cache of small expensive ones on its way in.  ``None`` (the
    default) admits everything, preserving the baseline behaviour.
    """

    eviction = "cost"

    def __init__(self, max_entries=None, max_facts=None, admit_facts=None):
        if max_entries is None and max_facts is None:
            raise ValueError(
                "eviction='cost' needs a capacity ceiling (max_entries "
                "and/or max_facts); an unbounded store never evicts, so "
                "the policy would be silently inert"
            )
        if admit_facts is not None and admit_facts < 1:
            raise ValueError(f"admit_facts must be >= 1, got {admit_facts}")
        self.admit_facts = admit_facts
        #: Oversized summaries refused by admission control.
        self.rejected = 0
        super().__init__(max_entries=max_entries, max_facts=max_facts)
        self._clock = 0.0
        #: key -> (priority, stamp); the authoritative rank.  The heap
        #: holds (priority, stamp, key) records, possibly stale.
        self._rank = {}
        self._heap = []
        self._stamp = 0

    def spawn(self):
        fresh = type(self)(
            max_entries=self.max_entries,
            max_facts=self.max_facts,
            admit_facts=self.admit_facts,
        )
        fresh.adopt_epochs(self.method_epochs())
        return fresh

    def _touch(self, key):
        super()._touch(key)
        self._stamp += 1
        record = (
            self._clock + entry_cost_score(self._entries[key]),
            self._stamp,
            key,
        )
        self._rank[key] = record
        heapq.heappush(self._heap, record)
        # Compact here too, not only on eviction: a hit-dominated
        # workload (warm cache, no stores) pushes a record per touch
        # and would otherwise grow the heap without bound.
        if len(self._heap) > 2 * len(self._rank) + 64:
            self._heap = sorted(self._rank.values())

    def store(self, node, field_stack, state, ppta_result):
        key = (node, field_stack, state)
        if self.admit_facts is not None and ppta_result.size > self.admit_facts:
            resident = self._entries.get(key)
            if resident is None:
                self.rejected += 1
                return False
            if (
                resident.objects == ppta_result.objects
                and resident.boundaries == ppta_result.boundaries
            ):
                # Equal payload (hence equal size): recency only, as in
                # the base rule.
                self._touch(key)
                return False
            # A *differing* oversized replacement only happens across a
            # program-version boundary (the self-heal path): the
            # resident memo is stale, so drop it — but the oversized
            # replacement is still refused admission.
            self._remove(key)
            self.rejected += 1
            return True
        if key not in self._entries:
            # The rank must exist before _enforce_capacity can pop it.
            self._stamp += 1
            record = (
                self._clock + entry_cost_score(ppta_result),
                self._stamp,
                key,
            )
            self._rank[key] = record
            heapq.heappush(self._heap, record)
        return super().store(node, field_stack, state, ppta_result)

    def _remove(self, key):
        entry = super()._remove(key)
        if entry is not None:
            self._rank.pop(key, None)
        return entry

    def clear(self):
        super().clear()
        self._clock = 0.0
        self._rank.clear()
        self._heap = []
        self._stamp = 0
        self.rejected = 0

    def _pick_victim(self):
        heap = self._heap
        rank = self._rank
        while heap:
            record = heap[0]
            if rank.get(record[2]) is not record:
                heapq.heappop(heap)  # stale: evicted or re-stamped
                continue
            heapq.heappop(heap)
            self._clock = record[0]
            return record[2]
        # Unreachable while an entry is resident (every resident key
        # has a live heap record); guard for safety.
        return next(iter(self._entries))

    def _enforce_capacity(self):
        super()._enforce_capacity()
        # Compact once stale records dominate, so the heap stays O(live).
        if len(self._heap) > 2 * len(self._rank) + 64:
            self._heap = sorted(self._rank.values())


def _split_cap(total, shards):
    """Partition an integer capacity across ``shards`` (remainder spread
    over the first shards).  ``None`` stays unbounded everywhere."""
    if total is None:
        return [None] * shards
    base, extra = divmod(total, shards)
    return [base + (1 if i < extra else 0) for i in range(shards)]


#: Known capacity-eviction policies (see :class:`CostAwareSummaryCache`).
EVICTION_POLICIES = ("lru", "cost")


def check_eviction(eviction):
    """Validate an eviction-policy name, returning it."""
    if eviction not in EVICTION_POLICIES:
        known = ", ".join(EVICTION_POLICIES)
        raise ValueError(f"unknown eviction policy {eviction!r}; known: {known}")
    return eviction


def shard_for_method(method_qname, n_shards):
    """Stable shard index for a method name.

    Uses CRC-32 rather than :func:`hash` so the partition — and hence
    per-shard statistics — is identical across processes and
    ``PYTHONHASHSEED`` values.
    """
    return zlib.crc32(str(method_qname or "").encode("utf-8")) % n_shards


class ShardedSummaryCache(SummaryBackend):
    """N independent summary shards, partitioned by the key node's method.

    The method is the natural partition key because it is already the
    invalidation granularity: every key of one method lands in one
    shard, so ``invalidate_method`` — like ``lookup``/``store``/LRU
    eviction — takes exactly one shard lock and never contends with
    traffic on other methods.  This is the concurrency story the
    engine's :class:`~repro.engine.executor.ParallelExecutor` requires
    (``concurrent_safe`` is True) and the partition a later
    multi-process cache service can inherit unchanged.

    ``max_entries``/``max_facts`` are *global* ceilings split across the
    shards (remainder on the first shards), so each shard is an
    independent LRU within its slice of the budget; both caps must be at
    least ``shards`` so every shard can hold an entry.  With no caps the
    shards are unbounded.

    The class mirrors the whole :class:`SummaryStore` surface plus
    :meth:`shard_snapshots` for per-shard accounting.  Aggregate counter
    reads (``hits``, ``misses``, …) sum per-shard counters without
    taking every lock — each shard's counters only ever grow, so a
    concurrent reader sees a slightly stale but never-corrupt total;
    :meth:`stats_snapshot` reads each shard under its lock.
    """

    concurrent_safe = True

    def __init__(self, shards=4, max_entries=None, max_facts=None, eviction="lru",
                 admit_facts=None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_entries is not None and max_entries < shards:
            raise ValueError(
                f"max_entries={max_entries} cannot feed {shards} shards; "
                "need at least one entry per shard"
            )
        if max_facts is not None and max_facts < shards:
            raise ValueError(
                f"max_facts={max_facts} cannot feed {shards} shards; "
                "need at least one fact per shard"
            )
        check_eviction(eviction)
        bounded = max_entries is not None or max_facts is not None
        if eviction == "cost" and not bounded:
            raise ValueError(
                "eviction='cost' needs a capacity ceiling (max_entries "
                "and/or max_facts); unbounded shards never evict, so "
                "the policy would be silently inert"
            )
        self.n_shards = shards
        self.max_entries = max_entries
        self.max_facts = max_facts
        self.eviction = eviction
        #: Size-based admission bound (cost-aware shards only; see
        #: :class:`CostAwareSummaryCache`).  Per entry, so not split.
        self.admit_facts = admit_facts if eviction == "cost" else None
        entry_caps = _split_cap(max_entries, shards)
        fact_caps = _split_cap(max_facts, shards)
        if not bounded:
            self._shards = tuple(SummaryCache() for _ in range(shards))
        elif eviction == "cost":
            self._shards = tuple(
                CostAwareSummaryCache(
                    max_entries=entry_caps[i],
                    max_facts=fact_caps[i],
                    admit_facts=self.admit_facts,
                )
                for i in range(shards)
            )
        else:
            self._shards = tuple(
                BoundedSummaryCache(
                    max_entries=entry_caps[i], max_facts=fact_caps[i]
                )
                for i in range(shards)
            )
        self._locks = tuple(threading.RLock() for _ in range(shards))

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------
    def shard_index(self, method_qname):
        return shard_for_method(method_qname, self.n_shards)

    def _slot(self, node):
        index = self.shard_index(getattr(node, "method", None))
        return self._shards[index], self._locks[index]

    def spawn(self):
        """A fresh, empty store with the same shard/capacity policy
        (and the same per-method consistency epochs)."""
        fresh = type(self)(
            shards=self.n_shards,
            max_entries=self.max_entries,
            max_facts=self.max_facts,
            eviction=self.eviction,
            admit_facts=self.admit_facts,
        )
        fresh.adopt_epochs(self.method_epochs())
        return fresh

    # ------------------------------------------------------------------
    # the cache contract
    # ------------------------------------------------------------------
    def lookup(self, node, field_stack, state):
        shard, lock = self._slot(node)
        with lock:
            return shard.lookup(node, field_stack, state)

    def store(self, node, field_stack, state, ppta_result):
        shard, lock = self._slot(node)
        with lock:
            return shard.store(node, field_stack, state, ppta_result)

    def invalidate_method(self, method_qname):
        # The facade keeps its own epoch table (the sub-shard bumps its
        # copy too, but callers read epochs off the facade).
        self.bump_epoch(method_qname)
        index = self.shard_index(method_qname)
        with self._locks[index]:
            return self._shards[index].invalidate_method(method_qname)

    def has_room(self, node, facts=0):
        shard, lock = self._slot(node)
        with lock:
            return shard.has_room(node, facts)

    def promote(self, key):
        shard, lock = self._slot(key[0])
        with lock:
            shard.promote(key)

    def clear(self):
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                shard.clear()

    def restore_counters(self, shard_stats):
        """Per-shard counter restore: one :class:`CacheStats` per shard,
        in shard order (counters are per-shard state, so an aggregate
        alone could not be restored faithfully)."""
        if len(shard_stats) != self.n_shards:
            raise ValueError(
                f"expected {self.n_shards} shard stats, got {len(shard_stats)}"
            )
        for shard, lock, stats in zip(self._shards, self._locks, shard_stats):
            with lock:
                shard.restore_counters(stats)

    # ------------------------------------------------------------------
    # aggregate counters (sums over shards)
    # ------------------------------------------------------------------
    @property
    def hits(self):
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self):
        return sum(shard.misses for shard in self._shards)

    @property
    def evictions(self):
        return sum(shard.evictions for shard in self._shards)

    @property
    def invalidated(self):
        return sum(shard.invalidated for shard in self._shards)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def entries(self):
        """All entries, shard by shard (per-shard LRU order within)."""
        items = []
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                items.extend(shard.entries())
        return iter(items)

    def entries_by_recency(self, hottest_first=True):
        """Per-shard recency order, shards concatenated.

        Cross-shard interleaving is unspecified — which is exactly what
        migration needs, because capacity is also per shard: within each
        shard the hottest entries come first.
        """
        items = []
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                items.extend(shard.entries_by_recency(hottest_first))
        return iter(items)

    def __len__(self):
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key):
        shard, lock = self._slot(key[0])
        with lock:
            return key in shard

    def summary_point_count(self):
        # A key lives in exactly one shard (by its node's method), so the
        # per-shard distinct counts are disjoint and sum exactly.
        return sum(shard.summary_point_count() for shard in self._shards)

    def total_facts(self):
        return sum(shard.total_facts() for shard in self._shards)

    def approx_bytes(self):
        return sum(shard.approx_bytes() for shard in self._shards)

    def shard_snapshots(self):
        """Per-shard :class:`CacheStats`, each read under its lock."""
        snapshots = []
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                snapshots.append(shard.stats_snapshot())
        return snapshots

    def stats_snapshot(self):
        """Aggregated :class:`CacheStats` across all shards.

        The per-shard reads are individually atomic, so the aggregate
        always reconciles: ``hits + misses`` equals the probes the
        shards answered, and ``facts``/``entries`` equal the shard sums.
        """
        shards = self.shard_snapshots()
        return CacheStats(
            entries=sum(s.entries for s in shards),
            facts=sum(s.facts for s in shards),
            hits=sum(s.hits for s in shards),
            misses=sum(s.misses for s in shards),
            evictions=sum(s.evictions for s in shards),
            invalidated=sum(s.invalidated for s in shards),
            approx_bytes=sum(s.approx_bytes for s in shards),
            max_entries=self.max_entries,
            max_facts=self.max_facts,
        )

    def __repr__(self):
        caps = []
        if self.max_entries is not None:
            caps.append(f"max_entries={self.max_entries}")
        if self.max_facts is not None:
            caps.append(f"max_facts={self.max_facts}")
        cap = ", ".join(caps) or "unbounded"
        return (
            f"ShardedSummaryCache({self.n_shards} shards, {len(self)} "
            f"summaries, {cap}, hits={self.hits}, misses={self.misses})"
        )
