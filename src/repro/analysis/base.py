"""Shared infrastructure for the demand-driven analyses.

Defines the analysis configuration, the query-result type, the abstract
base class with the Table 2 capability attributes, and the RRP context
operations used when a traversal crosses a global edge.

Context-stack conventions (the RRP language, Figure 3b)
-------------------------------------------------------
Traversing **backward** (state S1): crossing an ``exit_i`` edge descends
into the callee — push ``i``; crossing an ``entry_i`` edge returns to the
caller — pop, where an empty stack matches anything (partially balanced
paths, Algorithm 1 line 11); crossing ``assignglobal`` clears the context
(globals are context-insensitive).  Traversing **forward** (state S2) the
roles swap: ``entry_i`` pushes, ``exit_i`` pops-or-empty, ``assignglobal``
clears.  Call sites marked recursive on the PAG are crossed without
touching the context (SCC collapse, Section 5.1).
"""

import threading

from repro.cfl.budget import DEFAULT_BUDGET, Budget
from repro.cfl.stacks import EMPTY_STACK
from repro.util.errors import IRError

#: Sentinel distinguishing "unrealizable" from "empty context".
UNREALIZABLE = None


class AnalysisConfig:
    """Tunables shared by every analysis.

    Parameters
    ----------
    budget:
        Maximum traversal steps per query (``None`` = unlimited).  The
        paper uses 75,000 (Section 5.2).
    max_field_depth:
        Optional cap on the field-stack depth.  Exceeding it aborts the
        query conservatively (marked incomplete), exactly like budget
        exhaustion; ``None`` leaves the budget as the only safeguard.
    track_heap_contexts:
        When True (default) results pair each object with the calling
        context in which it was reached — the paper's context-sensitive
        heap abstraction.  When False contexts are collapsed to the empty
        stack, halving result sizes for clients that only need objects.
    """

    __slots__ = ("budget", "max_field_depth", "track_heap_contexts")

    def __init__(
        self,
        budget=DEFAULT_BUDGET,
        max_field_depth=None,
        track_heap_contexts=True,
    ):
        self.budget = budget
        self.max_field_depth = max_field_depth
        self.track_heap_contexts = track_heap_contexts

    def new_budget(self):
        return Budget(self.budget)

    def __repr__(self):
        return (
            f"AnalysisConfig(budget={self.budget}, "
            f"max_field_depth={self.max_field_depth}, "
            f"track_heap_contexts={self.track_heap_contexts})"
        )


class QueryResult:
    """Outcome of one points-to query.

    Attributes
    ----------
    query:
        The queried PAG node.
    pairs:
        Frozenset of ``(ObjectNode, context Stack)`` pairs — the paper's
        context-sensitive heap abstraction.
    complete:
        True when the query ran to completion; False when it was
        abandoned (budget or field-depth exhaustion), in which case
        ``pairs`` is a sound-but-partial under-approximation and clients
        must answer conservatively.
    steps:
        Traversal steps consumed.
    stats:
        Analysis-specific counters (e.g. DYNSUM cache hits/misses,
        REFINEPTS refinement iterations).
    """

    __slots__ = ("query", "pairs", "complete", "steps", "stats")

    def __init__(self, query, pairs, complete, steps, stats=None):
        self.query = query
        self.pairs = frozenset(pairs)
        self.complete = complete
        self.steps = steps
        self.stats = dict(stats or {})

    @property
    def objects(self):
        """The objects, with heap contexts projected away."""
        return frozenset(obj for obj, _ctx in self.pairs)

    def __repr__(self):
        status = "complete" if self.complete else "INCOMPLETE"
        return (
            f"QueryResult({self.query!r}, {len(self.objects)} object(s), "
            f"{status}, steps={self.steps})"
        )


class AliasResult:
    """Outcome of a may-alias query.

    ``verdict`` is ``True`` / ``False`` / ``None`` (unknown);
    ``witnesses`` holds the shared objects proving a ``True`` verdict.
    """

    __slots__ = ("var1", "var2", "verdict", "witnesses", "steps")

    def __init__(self, var1, var2, verdict, witnesses, steps):
        self.var1 = var1
        self.var2 = var2
        self.verdict = verdict
        self.witnesses = witnesses
        self.steps = steps

    def __repr__(self):
        return (
            f"AliasResult({self.var1!r}, {self.var2!r}, verdict={self.verdict}, "
            f"{len(self.witnesses)} witness(es))"
        )


class DemandPointsToAnalysis:
    """Abstract base of the four demand analyses.

    Subclasses set the Table 2 capability attributes and implement
    :meth:`_run_query`.  The public entry points are :meth:`points_to`
    (by PAG node) and :meth:`points_to_name` (by method/variable name).
    """

    #: Table 2 row values.
    name = "base"
    full_precision = True
    memoization = "none"  # none | dynamic-within | dynamic-across | static-across
    reuse = "none"  # none | context-dependent | context-independent
    on_demand = "yes"  # yes | partly
    #: Whether ``points_to``'s ``client`` predicate can change the result
    #: (True only for REFINEPTS's refinement loop).  The engine's batch
    #: scheduler consults this when deduplicating queries: predicate-blind
    #: analyses may merge any two queries on the same (node, context).
    uses_client_predicate = False

    def __init__(self, pag, config=None):
        self.pag = pag
        self.config = config or AnalysisConfig()
        #: Cumulative counters across all queries (reset with
        #: :meth:`reset_stats`).  Updates are lock-protected so the
        #: engine's parallel batch executor can issue concurrent
        #: ``points_to`` calls without losing counts — per-query state is
        #: otherwise traversal-local and the PAG is read-only.
        self.total_steps = 0  # guarded-by: _counter_lock
        self.total_queries = 0  # guarded-by: _counter_lock
        self.incomplete_queries = 0  # guarded-by: _counter_lock
        self._counter_lock = threading.Lock()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def points_to(self, var, context=EMPTY_STACK, client=None):
        """Answer ``pointsTo(var, context)``.

        ``client`` is consulted only by analyses that can terminate early
        (REFINEPTS's refinement loop); others ignore it.
        """
        result = self._run_query(var, context, client)
        with self._counter_lock:
            self.total_queries += 1
            self.total_steps += result.steps
            if not result.complete:
                self.incomplete_queries += 1
        return result

    def points_to_name(self, method_qname, var_name, context=EMPTY_STACK, client=None):
        """Convenience wrapper resolving the PAG node by name."""
        node = self.pag.find_local(method_qname, var_name)
        return self.points_to(node, context, client)

    def may_alias(self, var1, var2, context1=EMPTY_STACK, context2=EMPTY_STACK):
        """May-alias query: can the two variables point to one object?

        Following the paper's alias language
        (``x alias y  iff  x flowsToBar o flowsTo y``), two variables may
        alias exactly when their points-to sets share an object.  Returns
        an :class:`AliasResult`: ``True`` (witness object found),
        ``False`` (both queries complete, sets disjoint) or ``None``
        (some query was cut off and no witness appeared — unknown).
        """
        r1 = self.points_to(var1, context1)
        r2 = self.points_to(var2, context2)
        witnesses = r1.objects & r2.objects
        if witnesses:
            verdict = True
        elif r1.complete and r2.complete:
            verdict = False
        else:
            verdict = None
        return AliasResult(
            var1,
            var2,
            verdict,
            frozenset(witnesses),
            r1.steps + r2.steps,
        )

    def reset_stats(self):
        with self._counter_lock:
            self.total_steps = 0
            self.total_queries = 0
            self.incomplete_queries = 0

    # ------------------------------------------------------------------
    # subclass contract
    # ------------------------------------------------------------------
    def _run_query(self, var, context, client):
        raise NotImplementedError

    def _finish_context(self, context):
        """Apply the heap-context configuration to a result context."""
        return context if self.config.track_heap_contexts else EMPTY_STACK

    def capabilities(self):
        """The analysis's Table 2 row."""
        return {
            "analysis": self.name,
            "full_precision": self.full_precision,
            "memoization": self.memoization,
            "reuse": self.reuse,
            "on_demand": self.on_demand,
        }

    def __repr__(self):
        return f"{type(self).__name__}({self.pag!r})"


# ----------------------------------------------------------------------
# RRP context operations over global edges
# ----------------------------------------------------------------------
def cross_exit_backward(pag, context, site_id):
    """S1 crossing ``retvar --exit_i--> here`` backward: descend into the
    callee by pushing ``i`` (recursive sites leave the context alone)."""
    if pag.is_recursive_site(site_id):
        return context
    return context.push(site_id)


def cross_entry_backward(pag, context, site_id):
    """S1 crossing ``actual --entry_i--> here`` backward: return to the
    caller — pop when the top matches ``i``; an empty context matches any
    site.  Returns :data:`UNREALIZABLE` for mismatches."""
    if pag.is_recursive_site(site_id):
        return context
    if context.is_empty:
        return context
    if context.peek() == site_id:
        return context.pop()
    return UNREALIZABLE


def cross_entry_forward(pag, context, site_id):
    """S2 crossing ``here --entry_i--> formal`` forward: descend — push."""
    if pag.is_recursive_site(site_id):
        return context
    return context.push(site_id)


def cross_exit_forward(pag, context, site_id):
    """S2 crossing ``here --exit_i--> target`` forward: return — pop with
    the empty context matching any site; ``None`` when unrealizable."""
    if pag.is_recursive_site(site_id):
        return context
    if context.is_empty:
        return context
    if context.peek() == site_id:
        return context.pop()
    return UNREALIZABLE


def check_query_node(pag, var):
    """Validate a query target: must be a variable node of this PAG."""
    if var.is_object:
        raise IRError(f"cannot issue a points-to query for object node {var!r}")
    return var
