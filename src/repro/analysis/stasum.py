"""STASUM — static whole-program method summaries (Yan et al., ISSTA'11).

STASUM inverts DYNSUM's trade-off: instead of summarising local
reachability *lazily* for the field stacks that queries actually produce,
it precomputes, **offline and for every method**, summaries for every
possible boundary node — every node a demand traversal could enter a
method through (nodes with outgoing global edges for backward/S1 entry,
nodes with incoming global edges for forward/S2 entry).

Because the incoming field stack is unknown offline, summaries are
expressed as **stack deltas**: a sequence of ``pops`` demanded from the
(unknown) incoming stack plus a sequence of ``pushes`` deposited on top.
Summary entries are either

* *object facts* ``(pops, object)`` — the object flows to the entry node
  when the incoming stack is exactly ``pops``; or
* *boundary facts* ``(pops, pushes, node, state)`` — the traversal exits
  the method at ``node`` with the stack rewritten accordingly.

Delta sizes are bounded by a **user-supplied threshold** (the paper
explicitly notes STASUM needs one and that its optimal value is unclear);
summaries that hit the bound are marked truncated and queries consuming
them are answered conservatively (``complete=False``).  Together with the
over-approximate handling of the allocation-site turnaround under an
unknown stack, this is why Table 2 lists STASUM as *not* fully precise.

The summary count exposed by :attr:`StaSum.summary_count` — one summary
per (boundary node, direction) — is the denominator of Figure 5.
"""

from collections import deque

from repro.analysis.base import (
    DemandPointsToAnalysis,
    QueryResult,
    UNREALIZABLE,
    check_query_node,
    cross_entry_backward,
    cross_entry_forward,
    cross_exit_backward,
    cross_exit_forward,
)
from repro.analysis.ppta import run_ppta
from repro.cfl.rsm import FAM_LOAD, FAM_STORE, S1, S2
from repro.cfl.stacks import EMPTY_STACK
from repro.pag.graph import EMPTY_ADJACENCY
from repro.util.errors import BudgetExceededError

#: Pop-demand kinds recorded against the unknown incoming stack: the
#: forward-load closer accepts either stack-entry family, the store-bar
#: closer only family-A (backward-load) entries.
_POP_ANY = "any"
_POP_LOAD_ONLY = "A"

#: Default bound on ``len(pops) + len(pushes)`` per summary path.
DEFAULT_THRESHOLD = 8


class StaticSummary:
    """One offline summary: all delta facts for one (node, direction)."""

    __slots__ = ("objects", "boundaries", "truncated")

    def __init__(self, objects, boundaries, truncated):
        self.objects = tuple(objects)
        self.boundaries = tuple(boundaries)
        self.truncated = truncated

    @property
    def size(self):
        return len(self.objects) + len(self.boundaries)

    def __repr__(self):
        flag = ", truncated" if self.truncated else ""
        return f"StaticSummary({len(self.objects)} obj, {len(self.boundaries)} bnd{flag})"


class StaSum(DemandPointsToAnalysis):
    """Demand queries answered from precomputed whole-program summaries."""

    name = "STASUM"
    full_precision = False
    memoization = "static-across"
    reuse = "context-independent"
    on_demand = "partly"

    def __init__(self, pag, config=None, threshold=DEFAULT_THRESHOLD):
        super().__init__(pag, config)
        self.threshold = threshold
        self._table = {}
        self.offline_steps = 0
        self._precompute()

    # ------------------------------------------------------------------
    # offline phase
    # ------------------------------------------------------------------
    def _precompute(self):
        """Summarise every boundary node of every reachable method."""
        pag = self.pag
        starts = []
        for node in pag.local_var_nodes():
            if not pag.has_local_edges(node):
                continue  # trivial boundary; nothing to precompute
            if pag.has_global_out(node):
                starts.append((node, S1))
            if pag.has_global_in(node):
                starts.append((node, S2))
        for node, state in starts:
            self._table[(node, state)] = self._symbolic_ppta(node, state)

    @property
    def summary_count(self):
        """Number of precomputed summaries — Figure 5's denominator."""
        return len(self._table)

    def total_facts(self):
        return sum(summary.size for summary in self._table.values())

    def _symbolic_ppta(self, start_node, start_state):
        """Local exploration with a symbolic incoming stack."""
        get_record = self.pag.adjacency().get
        empty_record = EMPTY_ADJACENCY
        threshold = self.threshold
        objects = set()
        boundaries = set()
        truncated = False
        start = (start_node, (), (), start_state)
        visited = {start}
        stack = [start]

        def push_state(node, pops, pushes, state):
            nonlocal truncated
            if len(pops) + len(pushes) > threshold:
                truncated = True
                return
            item = (node, pops, pushes, state)
            if item not in visited:
                visited.add(item)
                stack.append(item)

        while stack:
            v, pops, pushes, s = stack.pop()
            self.offline_steps += 1
            rec = get_record(v)
            if rec is None:
                rec = empty_record
            if s == S1:
                new_sources = rec.new_sources
                if new_sources:
                    if pushes:
                        push_state(v, pops, pushes, S2)
                    else:
                        for obj in new_sources:
                            objects.add((pops, obj))
                        # Unknown incoming tail: the stack may be deeper
                        # than `pops`, in which case the turnaround
                        # applies.  Explored unconditionally — one source
                        # of STASUM's imprecision.
                        push_state(v, pops, (), S2)
                for x, _xi in rec.assign_sources:
                    push_state(x, pops, pushes, S1)
                for base, _g, token, _bi in rec.load_into:
                    push_state(base, pops, pushes + (token,), S1)
                if rec.has_global_in:
                    boundaries.add((pops, pushes, v, S1))
            else:
                for x, _xi in rec.assign_targets:
                    push_state(x, pops, pushes, S2)
                for g, x, _xi in rec.load_from:
                    if pushes:
                        if pushes[-1][0] == g:  # either family
                            push_state(x, pops, pushes[:-1], S2)
                    else:
                        push_state(x, pops + ((_POP_ANY, g),), (), S2)
                for x, g, _xi in rec.store_into:
                    if pushes:
                        if pushes[-1] == (g, FAM_LOAD):  # store-bar: A only
                            push_state(x, pops, pushes[:-1], S1)
                    else:
                        push_state(x, pops + ((_POP_LOAD_ONLY, g),), (), S1)
                for _g, b, token, _bi in rec.store_from:
                    push_state(b, pops, pushes + (token,), S1)
                if rec.has_global_out:
                    boundaries.add((pops, pushes, v, S2))

        return StaticSummary(
            sorted(objects, key=lambda e: (e[0], e[1].object_id)),
            sorted(boundaries, key=lambda e: (e[0], e[1], e[2].sort_key, e[3])),
            truncated,
        )

    # ------------------------------------------------------------------
    # query phase (Algorithm 4's worklist consuming static summaries)
    # ------------------------------------------------------------------
    def _run_query(self, var, context, client):
        check_query_node(self.pag, var)
        budget = self.config.new_budget()
        pairs = set()
        complete = True
        try:
            if not self._explore(var, context, pairs, budget):
                complete = False
        except BudgetExceededError:
            complete = False
        return QueryResult(
            var, pairs, complete, budget.steps, {"summaries": self.summary_count}
        )

    def _explore(self, var, context, pairs, budget):
        pag = self.pag
        get_record = pag.adjacency().get
        empty_record = EMPTY_ADJACENCY
        precise = True
        start = (var, EMPTY_STACK, S1, context)
        seen = {start}
        worklist = deque([start])

        def propagate(node, fstack, state, ctx):
            item = (node, fstack, state, ctx)
            if item not in seen:
                seen.add(item)
                worklist.append(item)

        while worklist:
            u, f, s, c = worklist.popleft()
            budget.charge()
            rec = get_record(u)
            if rec is None:
                rec = empty_record
            if not rec.has_local_edges:
                has_boundary = rec.has_global_in if s == S1 else rec.has_global_out
                if has_boundary:
                    self._cross(u, f, s, c, propagate)
                continue
            summary = self._table.get((u, s))
            if summary is None:
                # Non-boundary start (typically the query variable):
                # summarise concretely on the fly, uncached — STASUM's
                # tables only cover method boundaries.
                concrete = run_ppta(
                    pag, u, f, s, budget, self.config.max_field_depth
                )
                ctx = self._finish_context(c)
                for obj in concrete.objects:
                    pairs.add((obj, ctx))
                for x, f1, s1 in concrete.boundaries:
                    self._cross(x, f1, s1, c, propagate)
                continue
            if summary.truncated:
                precise = False
            ctx = self._finish_context(c)
            for pops, obj in summary.objects:
                if _stack_equals(f, pops):
                    pairs.add((obj, ctx))
            for pops, pushes, node, state in summary.boundaries:
                rewritten = _apply_delta(f, pops, pushes)
                if rewritten is not None:
                    self._cross(node, rewritten, state, c, propagate)
        return precise

    def _cross(self, x, f, s, c, propagate):
        pag = self.pag
        rec = pag.adjacency().get(x)
        if rec is None:
            rec = EMPTY_ADJACENCY
        if s == S1:
            for retvar, site in rec.exit_into:
                propagate(retvar, f, S1, cross_exit_backward(pag, c, site))
            for actual, site in rec.entry_into:
                ctx = cross_entry_backward(pag, c, site)
                if ctx is not UNREALIZABLE:
                    propagate(actual, f, S1, ctx)
            for y in rec.global_sources:
                propagate(y, f, S1, EMPTY_STACK)
        else:
            for site, formal in rec.entry_from:
                propagate(formal, f, S2, cross_entry_forward(pag, c, site))
            for site, target in rec.exit_from:
                ctx = cross_exit_forward(pag, c, site)
                if ctx is not UNREALIZABLE:
                    propagate(target, f, S2, ctx)
            for y in rec.global_targets:
                propagate(y, f, S2, EMPTY_STACK)


def _pop_matches(entry, demand):
    """Does a concrete stack entry ``(field, family)`` satisfy a
    recorded pop demand ``(kind, field)``?"""
    kind, field = demand
    if entry[0] != field:
        return False
    return kind == _POP_ANY or entry[1] == FAM_LOAD


def _stack_equals(stack, pops):
    """True when ``stack`` (top first) is consumed exactly by ``pops``."""
    if len(stack) != len(pops):
        return False
    for actual, expected in zip(stack, pops):
        if not _pop_matches(actual, expected):
            return False
    return True


def _apply_delta(stack, pops, pushes):
    """Rewrite ``stack`` by the summary delta, or ``None`` on mismatch."""
    if len(stack) < len(pops):
        return None
    current = stack
    for demand in pops:
        if not _pop_matches(current.peek(), demand):
            return None
        current = current.pop()
    for entry in pushes:
        current = current.push(entry)
    return current
