"""Andersen-style whole-program points-to analysis with on-the-fly call graph.

This is the Spark substitute (Lhoták & Hendren, CC'03): a
context-insensitive, field-sensitive, subset-based points-to analysis that

* discovers the reachable part of the program starting from the entry
  method, resolving virtual calls as receiver points-to sets grow
  (Table 3's caption: "reachable parts ... determined using a call graph
  constructed on the fly with Andersen-style analysis");
* produces the :class:`~repro.callgraph.graph.CallGraph` that the PAG
  builder uses for ``entry_i``/``exit_i`` edges;
* serves as the soundness oracle in tests — every context-sensitive demand
  answer must be a subset of the Andersen answer.

Implementation: a classic difference-propagation worklist.  Variables are
keyed by tuples — ``("L", method, var)`` for locals, ``("G", cls, fld)``
for statics, ``("F", object_id, fld)`` for heap fields — and objects are
``(object_id, class_name)`` pairs.
"""

from collections import deque

from repro.ir.ast import NULL_CLASS, THIS
from repro.ir.types import ClassHierarchy
from repro.util.errors import IRError


def local_key(method_qname, var):
    """Variable key for a local of a method."""
    return ("L", method_qname, var)


def global_key(class_name, field):
    """Variable key for a static field."""
    return ("G", class_name, field)


def field_key(object_id, field):
    """Variable key for an instance field of an abstract object."""
    return ("F", object_id, field)


class AndersenResult:
    """Read-only view of a completed Andersen analysis."""

    def __init__(self, program, hierarchy, pts, call_graph, instantiated):
        self.program = program
        self.hierarchy = hierarchy
        self._pts = pts
        self.call_graph = call_graph
        self.instantiated_classes = instantiated

    def points_to(self, key):
        """Points-to set of a variable key: ``{(object_id, class_name)}``."""
        return set(self._pts.get(key, ()))

    def points_to_local(self, method_qname, var):
        return self.points_to(local_key(method_qname, var))

    def points_to_global(self, class_name, field):
        return self.points_to(global_key(class_name, field))

    def points_to_field(self, object_id, field):
        return self.points_to(field_key(object_id, field))

    @property
    def reachable_methods(self):
        return self.call_graph.reachable_methods

    def variable_keys(self):
        """All variable keys with a (possibly empty) recorded points-to set."""
        return list(self._pts)


class AndersenAnalysis:
    """Run with :meth:`solve`; construct once per program."""

    def __init__(self, program):
        if not program.is_finalized:
            raise IRError("program must be finalized before analysis")
        self.program = program
        self.hierarchy = ClassHierarchy(program)
        self._pts = {}
        self._succ = {}
        self._load_cons = {}
        self._store_cons = {}
        self._vcalls = {}
        self._linked = set()
        self._processed_methods = set()
        self._pending = {}
        self._worklist = deque()
        self._call_graph = CallGraphProxy = None  # set in solve()
        self._instantiated = set()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(self):
        """Run to fixpoint and return an :class:`AndersenResult`."""
        from repro.callgraph.graph import CallGraph

        self._call_graph = CallGraph(self.program.entry)
        entry = self.program.entry_method
        self._call_graph.add_method(entry.qualified_name)
        self._process_method(entry)
        while self._worklist:
            key = self._worklist.popleft()
            delta = self._pending.pop(key, None)
            if not delta:
                continue
            self._propagate_from(key, delta)
        return AndersenResult(
            self.program,
            self.hierarchy,
            self._pts,
            self._call_graph,
            set(self._instantiated),
        )

    # ------------------------------------------------------------------
    # core worklist operations
    # ------------------------------------------------------------------
    def _add_objects(self, key, objects):
        current = self._pts.setdefault(key, set())
        new = objects - current
        if not new:
            return
        current |= new
        pending = self._pending.get(key)
        if pending is None:
            self._pending[key] = set(new)
            self._worklist.append(key)
        else:
            pending |= new

    def _add_edge(self, src, dst):
        successors = self._succ.setdefault(src, set())
        if dst in successors:
            return
        successors.add(dst)
        existing = self._pts.get(src)
        if existing:
            self._add_objects(dst, set(existing))

    def _propagate_from(self, key, delta):
        for successor in self._succ.get(key, ()):
            self._add_objects(successor, delta)
        for field, target in self._load_cons.get(key, ()):
            for obj in delta:
                if obj[1] == NULL_CLASS:
                    continue
                self._add_edge(field_key(obj[0], field), target)
        for field, source in self._store_cons.get(key, ()):
            for obj in delta:
                if obj[1] == NULL_CLASS:
                    continue
                self._add_edge(source, field_key(obj[0], field))
        for caller_method, call in self._vcalls.get(key, ()):
            for obj in delta:
                if obj[1] == NULL_CLASS:
                    continue
                callee = self.hierarchy.dispatch(obj[1], call.method_name)
                if callee is not None:
                    self._link_call(caller_method, call, callee)

    # ------------------------------------------------------------------
    # constraint generation
    # ------------------------------------------------------------------
    def _process_method(self, method):
        qname = method.qualified_name
        if qname in self._processed_methods:
            return
        self._processed_methods.add(qname)
        for stmt in method.statements:
            self._process_statement(method, stmt)

    def _process_statement(self, method, stmt):
        qname = method.qualified_name
        kind = stmt.kind
        if kind in ("alloc", "null"):
            obj = (stmt.object_id, stmt.class_name)
            if kind == "alloc":
                self._instantiated.add(stmt.class_name)
            self._add_objects(local_key(qname, stmt.target), {obj})
        elif kind in ("copy", "cast"):
            self._add_edge(local_key(qname, stmt.source), local_key(qname, stmt.target))
        elif kind == "load":
            base = local_key(qname, stmt.base)
            target = local_key(qname, stmt.target)
            self._load_cons.setdefault(base, []).append((stmt.field, target))
            for obj in set(self._pts.get(base, ())):
                if obj[1] != NULL_CLASS:
                    self._add_edge(field_key(obj[0], stmt.field), target)
        elif kind == "store":
            base = local_key(qname, stmt.base)
            source = local_key(qname, stmt.source)
            self._store_cons.setdefault(base, []).append((stmt.field, source))
            for obj in set(self._pts.get(base, ())):
                if obj[1] != NULL_CLASS:
                    self._add_edge(source, field_key(obj[0], stmt.field))
        elif kind == "staticget":
            self._add_edge(
                global_key(stmt.class_name, stmt.field), local_key(qname, stmt.target)
            )
        elif kind == "staticput":
            self._add_edge(
                local_key(qname, stmt.source), global_key(stmt.class_name, stmt.field)
            )
        elif kind == "call":
            self._process_call(method, stmt)
        elif kind == "return":
            pass  # linked lazily per call site in _link_call
        else:
            raise IRError(f"unknown statement kind {kind!r}")

    def _process_call(self, method, call):
        qname = method.qualified_name
        if call.is_virtual:
            receiver = local_key(qname, call.receiver)
            self._vcalls.setdefault(receiver, []).append((method, call))
            for obj in set(self._pts.get(receiver, ())):
                if obj[1] == NULL_CLASS:
                    continue
                callee = self.hierarchy.dispatch(obj[1], call.method_name)
                if callee is not None:
                    self._link_call(method, call, callee)
        else:
            callee = self.hierarchy.dispatch(call.class_name, call.method_name)
            if callee is not None and callee.is_static:
                self._link_call(method, call, callee)

    def _link_call(self, caller_method, call, callee):
        """Wire actuals to formals and returns to the call target."""
        key = (call.site_id, callee.qualified_name)
        if key in self._linked:
            return
        self._linked.add(key)
        self._call_graph.add_edge(
            call.site_id, caller_method.qualified_name, callee.qualified_name
        )
        self._process_method(callee)

        caller_qname = caller_method.qualified_name
        callee_qname = callee.qualified_name
        if call.is_virtual and not callee.is_static:
            self._add_edge(
                local_key(caller_qname, call.receiver), local_key(callee_qname, THIS)
            )
        for actual, formal in zip(call.args, callee.params):
            self._add_edge(
                local_key(caller_qname, actual), local_key(callee_qname, formal)
            )
        if call.target is not None:
            for ret in callee.return_statements():
                self._add_edge(
                    local_key(callee_qname, ret.source),
                    local_key(caller_qname, call.target),
                )
