"""Call-graph construction substrates.

The paper builds its PAG with Spark: an Andersen-style, context-insensitive,
field-sensitive whole-program points-to analysis that constructs the call
graph on the fly and determines the reachable part of the program (Table 3's
caption).  :mod:`repro.callgraph.andersen` is that substrate;
:mod:`repro.callgraph.cha` is a cheaper RTA-style baseline used for
comparison and testing; :mod:`repro.callgraph.graph` is the shared call-graph
data structure, including the SCC computation used to collapse recursion
(Section 5.1).
"""

from repro.callgraph.andersen import AndersenAnalysis, AndersenResult
from repro.callgraph.cha import rta_call_graph
from repro.callgraph.graph import CallGraph

__all__ = [
    "AndersenAnalysis",
    "AndersenResult",
    "CallGraph",
    "rta_call_graph",
]
