"""RTA-style call-graph construction (cheap baseline).

PIR variables carry no declared types, so classic CHA (dispatch on the
declared type's cone) degenerates to name-based resolution.  We therefore
implement Rapid Type Analysis: a virtual call ``x.m(...)`` is linked to
``C.m``'s resolution for every *instantiated* class ``C`` that understands
``m``.  Instantiation and reachability are discovered together, as in
Bacon & Sweeney's original RTA.

The result over-approximates the Andersen call graph — a containment
checked by the test suite — and is used when a caller wants a PAG without
paying for the whole-program points-to pass.
"""

from collections import deque

from repro.ir.types import ClassHierarchy
from repro.util.errors import IRError


def rta_call_graph(program):
    """Build a :class:`~repro.callgraph.graph.CallGraph` with RTA."""
    from repro.callgraph.graph import CallGraph

    if not program.is_finalized:
        raise IRError("program must be finalized before analysis")
    hierarchy = ClassHierarchy(program)
    call_graph = CallGraph(program.entry)

    entry = program.entry_method
    call_graph.add_method(entry.qualified_name)

    instantiated = set()
    processed = set()
    #: virtual calls seen so far, bucketed by method name, so that a class
    #: instantiated *later* still links earlier call sites.
    pending_vcalls = {}
    worklist = deque([entry])

    def link(caller, call, callee):
        if call_graph.add_edge(call.site_id, caller.qualified_name, callee.qualified_name):
            if callee.qualified_name not in processed:
                worklist.append(program.lookup_method(callee.qualified_name))

    def dispatch_virtual(caller, call, class_name):
        callee = hierarchy.dispatch(class_name, call.method_name)
        if callee is not None and not callee.is_static:
            link(caller, call, callee)

    while worklist:
        method = worklist.popleft()
        if method.qualified_name in processed:
            continue
        processed.add(method.qualified_name)
        call_graph.add_method(method.qualified_name)
        for stmt in method.statements:
            if stmt.kind == "alloc":
                if stmt.class_name not in instantiated:
                    instantiated.add(stmt.class_name)
                    # Re-dispatch every virtual call already seen: the new
                    # class may understand some of them.
                    for name, sites in pending_vcalls.items():
                        for caller, call in sites:
                            dispatch_virtual(caller, call, stmt.class_name)
            elif stmt.kind == "call":
                if stmt.is_virtual:
                    pending_vcalls.setdefault(stmt.method_name, []).append(
                        (method, stmt)
                    )
                    for class_name in sorted(instantiated):
                        dispatch_virtual(method, stmt, class_name)
                else:
                    callee = hierarchy.dispatch(stmt.class_name, stmt.method_name)
                    if callee is not None and callee.is_static:
                        link(method, stmt, callee)
    return call_graph
