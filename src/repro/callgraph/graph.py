"""Call-graph data structure shared by Andersen and RTA construction.

A call graph maps each call site (by its unique id) to the set of target
methods, records which methods are reachable from the entry, and computes
the strongly connected components of the method-level graph.  Call sites
whose caller and callee share an SCC are *recursive*; the demand analyses
treat those sites context-insensitively ("recursion cycles collapsed",
Section 5.1), which keeps context stacks finite.
"""


class CallGraph:
    """Resolved call edges plus reachability and recursion information.

    Methods are identified by their qualified name (``"Class.method"``).
    """

    def __init__(self, entry):
        self.entry = entry
        self._reachable = set()
        self._targets = {}
        self._callers = {}
        self._site_caller = {}
        self._scc_of = None
        self._recursive_sites = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_method(self, qualified_name):
        """Mark ``qualified_name`` reachable."""
        if qualified_name not in self._reachable:
            self._reachable.add(qualified_name)
            self._invalidate()

    def add_edge(self, site_id, caller, callee):
        """Record that call site ``site_id`` (in ``caller``) may invoke
        ``callee``.  Returns True when the edge is new."""
        self._site_caller[site_id] = caller
        targets = self._targets.setdefault(site_id, set())
        if callee in targets:
            return False
        targets.add(callee)
        self._callers.setdefault(callee, set()).add(site_id)
        self.add_method(caller)
        self.add_method(callee)
        self._invalidate()
        return True

    def _invalidate(self):
        self._scc_of = None
        self._recursive_sites = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def reachable_methods(self):
        """Set of reachable method qualified names."""
        return set(self._reachable)

    def is_reachable(self, qualified_name):
        return qualified_name in self._reachable

    def targets(self, site_id):
        """Target methods of a call site (empty when unresolved)."""
        return set(self._targets.get(site_id, ()))

    def caller_of_site(self, site_id):
        return self._site_caller.get(site_id)

    def call_sites_into(self, qualified_name):
        """Call-site ids that may invoke ``qualified_name``."""
        return set(self._callers.get(qualified_name, ()))

    def edges(self):
        """Iterate ``(site_id, caller, callee)`` triples deterministically."""
        for site_id in sorted(self._targets):
            caller = self._site_caller[site_id]
            for callee in sorted(self._targets[site_id]):
                yield site_id, caller, callee

    def method_successors(self, qualified_name):
        """Methods directly called from ``qualified_name``."""
        result = set()
        for site_id, targets in self._targets.items():
            if self._site_caller.get(site_id) == qualified_name:
                result.update(targets)
        return result

    # ------------------------------------------------------------------
    # recursion (SCC collapse)
    # ------------------------------------------------------------------
    def _compute_sccs(self):
        """Iterative Tarjan over the method-level graph."""
        successors = {m: sorted(self.method_successors(m)) for m in self._reachable}
        index_of = {}
        lowlink = {}
        on_stack = set()
        stack = []
        scc_of = {}
        counter = [0]
        scc_count = [0]

        for root in sorted(self._reachable):
            if root in index_of:
                continue
            work = [(root, iter(successors.get(root, ())))]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, child_iter = work[-1]
                advanced = False
                for child in child_iter:
                    if child not in index_of:
                        index_of[child] = lowlink[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(successors.get(child, ()))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    scc_id = scc_count[0]
                    scc_count[0] += 1
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc_of[member] = scc_id
                        if member == node:
                            break
        self._scc_of = scc_of

    def scc_of(self, qualified_name):
        """SCC id of a reachable method."""
        if self._scc_of is None:
            self._compute_sccs()
        return self._scc_of[qualified_name]

    @property
    def recursive_sites(self):
        """Call-site ids participating in recursion (caller and some
        callee in the same SCC, or a self-call)."""
        if self._recursive_sites is None:
            if self._scc_of is None:
                self._compute_sccs()
            sites = set()
            for site_id, targets in self._targets.items():
                caller = self._site_caller[site_id]
                caller_scc = self._scc_of.get(caller)
                for callee in targets:
                    if callee == caller or self._scc_of.get(callee) == caller_scc:
                        sites.add(site_id)
                        break
            self._recursive_sites = sites
        return set(self._recursive_sites)

    def __repr__(self):
        n_edges = sum(len(t) for t in self._targets.values())
        return (
            f"CallGraph(entry={self.entry!r}, methods={len(self._reachable)}, "
            f"edges={n_edges})"
        )
