"""Deterministic wall-clock microbenchmarks: the ``repro-perf`` harness.

Every other artifact in this repo measures *steps* — deterministic, but
blind to constant factors, which are the only lever left on the hot
path (inclusion-based points-to has a cubic lower bound; see
PAPERS.md).  This harness measures **steps per second**:

* **figure4** — the Figure-4 workloads (the paper's per-client query
  streams over the figure benchmarks, one heavier
  :mod:`repro.bench.generator` program, and the generator's adversarial
  stress shapes — deep recursion, a megamorphic call site, a deep field
  chain) replayed ``rounds`` times against one persistent DYNSUM
  instance — the long-running-host regime the paper motivates (round 1
  runs cold, later rounds run on a warm summary cache).  Each workload
  runs under the optimized traversal implementations
  (:func:`repro.analysis.ppta.traversal_impl`): ``fast`` — the
  record-based loop — ``array`` — the CSR-image loop
  (:mod:`repro.pag.csr`) — and ``native`` — the compiled C kernel over
  the same CSR arrays (:mod:`repro.native`, skipped with a log line
  when the kernel cannot load) — against ``reference``, the retained
  pre-optimization loop (accessor-based PPTA + worklist).  Answers are
  asserted element-wise identical and step counts bit-equal across all
  implementations; the ratios of wall times are the speedups each
  optimized loop buys.
* **warmstart** — cold engine construction + queries versus an engine
  warm-started from a CSR-bearing snapshot
  (``save_cache(path, csr=True)``): the warm path must answer from the
  mmapped image with **zero** adjacency or CSR recompiles.
* **eviction** — the heap-backed victim index of
  :class:`~repro.analysis.summaries.CostAwareSummaryCache`: per-eviction
  wall time across store sizes.  O(log n) shows as a near-flat curve;
  the O(n) scan it replaced grows linearly.
* **chaos** — a seeded fault-injection soak: the Figure-4 jython
  workload replayed against live in-process shard servers under
  deterministic fault schedules (:mod:`repro.cacheserver.faults`),
  recording injected-fault and fall-open counts per seed.  ``--check``
  gates on every seed keeping answers element-wise identical to a
  fault-free run while provably injecting — the robustness analogue of
  the identical-answers invariant the figure4 sweep enforces.
* **profile** — cProfile top-N of one fast figure4 run, so the next
  hot-spot hunt starts from data.

Wall-clock numbers vary with the host; the committed baseline
(``benchmarks/BENCH_hotpath.json``) records them for trajectory, while
``--check`` gates only on invariants (identical answers, equal steps,
recorded throughput, sub-linear eviction) — never on absolute times.
"""

import argparse
import cProfile
import json
import os
import pstats
import sys
import tempfile
import time
from dataclasses import replace

from repro.analysis import ppta
from repro.analysis.dynsum import DynSum
from repro.analysis.ppta import PptaResult
from repro.analysis.summaries import CostAwareSummaryCache
from repro.bench.generator import GeneratorConfig
from repro.bench.runner import bench_analysis_config, bench_engine_policy
from repro.bench.suite import load_benchmark
from repro.cfl.rsm import S1
from repro.cfl.stacks import EMPTY_STACK
from repro.clients import ALL_CLIENTS
from repro.engine.core import PointsToEngine
from repro.pag.nodes import LocalNode

#: The Figure-4 benchmarks (paper Section 5.3) the harness replays.
FIGURE_BENCHMARKS = ("soot-c", "bloat", "jython")

#: A heavier synthetic program (bench/generator.py) added to the sweep:
#: deeper delegation layers and fatter worker bodies than the paper
#: suite, so the traversal loops run long enough to time cleanly.
GENERATOR_CONFIG = GeneratorConfig(
    seed=7,
    domain_classes=16,
    data_classes=8,
    workers_per_class=3,
    stmts_per_worker=16,
    layers=3,
    driver_rounds=2,
    cast_density=0.6,
    null_density=0.5,
)

#: The generator's knob-gated adversarial shapes, swept as extra
#: figure4 workloads.  A smaller base program than GENERATOR_CONFIG:
#: the point is the shape's traversal pattern, not bulk.
_STRESS_BASE = GeneratorConfig(
    seed=11,
    domain_classes=6,
    data_classes=4,
    workers_per_class=2,
    stmts_per_worker=8,
    layers=2,
)
STRESS_WORKLOADS = (
    ("gen-recursion", replace(_STRESS_BASE, recursion_depth=12)),
    ("gen-megamorphic", replace(_STRESS_BASE, megamorphic_degree=24)),
    ("gen-fieldchain", replace(_STRESS_BASE, field_chain_depth=16)),
)

#: Optimized traversal implementations the sweep may time against the
#: ``reference`` baseline (which always runs).  ``native`` is dropped
#: from a sweep (with a log line) when the compiled kernel cannot load
#: on the host — timing it there would silently measure the ``array``
#: fallback instead.
OPTIMIZED_IMPLS = ("fast", "array", "native")

#: The loop bodies each optimized impl actually exercises, as
#: ``"<relpath>::<QualName>"`` ids.  CI asserts this equals
#: :func:`repro.devtools.registry.hot_function_ids` — a function cannot
#: be hot for the HOT001 linter yet unmeasured here, or vice versa.
MEASURED_HOT_FUNCTIONS = {
    "fast": (
        "src/repro/analysis/dynsum.py::DynSum._explore",
        "src/repro/analysis/ppta.py::_run_ppta_fast",
    ),
    "array": (
        "src/repro/analysis/dynsum.py::DynSum._explore_array",
        "src/repro/analysis/ppta.py::_run_ppta_array",
    ),
    "native": (
        "src/repro/native/kernel.c::rk_dynsum",
        "src/repro/native/kernel.c::rk_ppta",
    ),
}


def measured_hot_functions(impls=OPTIMIZED_IMPLS):
    """Sorted, de-duplicated hot-function ids the sweep measures."""
    ids = set()
    for impl in impls:
        ids.update(MEASURED_HOT_FUNCTIONS[impl])
    return tuple(sorted(ids))

CLIENTS = {cls.name: cls for cls in ALL_CLIENTS}

#: Eviction microbenchmark store sizes (entries).
EVICTION_SIZES = (1_000, 10_000, 100_000)
EVICTION_SIZES_QUICK = (1_000, 5_000)


class PerfCheckError(AssertionError):
    """An invariant ``--check`` gates on failed."""


def _canonical(results):
    """Order-independent canonical answers for cross-impl comparison."""
    return [
        (
            result.complete,
            sorted(
                (str(obj.object_id), obj.class_name, ctx.to_tuple())
                for obj, ctx in result.pairs
            ),
        )
        for result in results
    ]


def _workload_instances(benchmarks, scale, stress=True):
    instances = []
    for name in benchmarks:
        instances.append((name, load_benchmark(name, scale=scale)))
    instances.append(("generator", load_benchmark("jython", config=GENERATOR_CONFIG)))
    if stress:
        for name, config in STRESS_WORKLOADS:
            instances.append((name, load_benchmark("jython", config=config)))
    return instances


def _replay(instance, nodes, impl, rounds):
    """One timed replay: ``rounds`` passes of the query stream against
    a single persistent DYNSUM under traversal implementation ``impl``.
    Returns (elapsed_sec, total_steps, canonical answers, analysis)."""
    with ppta.traversal_impl(impl):
        analysis = DynSum(instance.pag, bench_analysis_config())
        results = []
        started = time.perf_counter()
        for round_index in range(rounds):
            results = [analysis.points_to(node) for node in nodes]
        elapsed = time.perf_counter() - started
    return elapsed, analysis.total_steps, _canonical(results), analysis


def run_figure4(
    benchmarks, clients, rounds, reps, scale, impls=OPTIMIZED_IMPLS,
    stress=True, log=lambda s: None,
):
    """The optimized-vs-reference sweep; returns the ``figure4`` section.

    ``impls`` selects which optimized loops to time; ``reference``
    always runs as the baseline, and every implementation's answers and
    step counts are asserted identical to it.
    """
    impls = tuple(impls)
    sweep = impls + ("reference",)
    workloads = []
    totals = {impl: 0.0 for impl in sweep}
    for name, instance in _workload_instances(benchmarks, scale, stress=stress):
        # Compile both traversal substrates once, outside every timer.
        instance.pag.adjacency()
        instance.pag.csr()
        for client_name in clients:
            client = CLIENTS[client_name](instance.pag)
            nodes = [query.node(instance.pag) for query in client.queries()]
            if not nodes:
                continue
            best = {}
            outcome = {}
            for _rep in range(reps):
                # Interleave the implementations so drift (thermal,
                # scheduler) hits all of them evenly.
                for impl in sweep:
                    elapsed, steps, canonical, _ = _replay(
                        instance, nodes, impl, rounds
                    )
                    if impl not in best or elapsed < best[impl]:
                        best[impl] = elapsed
                    outcome[impl] = (steps, canonical)
            ref_steps, ref_answers = outcome["reference"]
            for impl in impls:
                impl_steps, impl_answers = outcome[impl]
                if impl_answers != ref_answers:
                    raise PerfCheckError(
                        f"{name}/{client_name}: {impl} and reference "
                        f"answers differ"
                    )
                if impl_steps != ref_steps:
                    raise PerfCheckError(
                        f"{name}/{client_name}: step counts diverge "
                        f"({impl}={impl_steps}, reference={ref_steps})"
                    )
            for impl in sweep:
                totals[impl] += best[impl]
            row = {
                "benchmark": name,
                "client": client_name,
                "queries": len(nodes),
                "rounds": rounds,
                "steps": ref_steps,
            }
            for impl in sweep:
                row[impl] = {
                    "time_sec": round(best[impl], 6),
                    "steps_per_sec": round(ref_steps / best[impl]),
                }
            if "fast" in impls:
                row["speedup"] = round(best["reference"] / best["fast"], 3)
            if "array" in impls:
                row["speedup_array"] = round(best["reference"] / best["array"], 3)
            if "native" in impls:
                row["speedup_native"] = round(
                    best["reference"] / best["native"], 3
                )
            if "fast" in impls and "array" in impls:
                row["array_vs_fast"] = round(best["fast"] / best["array"], 3)
            if "array" in impls and "native" in impls:
                row["native_vs_array"] = round(
                    best["array"] / best["native"], 3
                )
            workloads.append(row)
            log(
                f"  {name:16s} {client_name:10s} steps={ref_steps:8d} "
                + " ".join(
                    f"{impl}={best[impl] * 1000:7.1f}ms" for impl in sweep
                )
            )
    aggregate = {
        f"time_sec_{impl}": round(totals[impl], 6) for impl in sweep
    }
    if "fast" in impls and totals["fast"]:
        aggregate["speedup"] = round(totals["reference"] / totals["fast"], 3)
    if "array" in impls and totals["array"]:
        aggregate["speedup_array"] = round(
            totals["reference"] / totals["array"], 3
        )
    if "native" in impls and totals["native"]:
        aggregate["speedup_native"] = round(
            totals["reference"] / totals["native"], 3
        )
    if "fast" in impls and "array" in impls and totals["array"]:
        aggregate["array_vs_fast"] = round(totals["fast"] / totals["array"], 3)
    if "array" in impls and "native" in impls and totals["native"]:
        aggregate["native_vs_array"] = round(
            totals["array"] / totals["native"], 3
        )
    return {"workloads": workloads, "aggregate": aggregate}


def run_warmstart(rounds=2, log=lambda s: None):
    """Cold engine bring-up versus a CSR warm start; the ``warmstart``
    section.

    Cold: build the PAG's adjacency + CSR and answer the query stream.
    Warm: a fresh engine over the same program, warm-started from the
    cold engine's ``save_cache(path, csr=True)`` snapshot — summaries
    replay into the store and the CSR image maps zero-copy, so the warm
    path must recompile **nothing** (``adjacency_compiles`` and
    ``csr_compiles`` both zero); violations raise
    :class:`PerfCheckError` regardless of ``--check``.
    """
    cold_instance = load_benchmark("jython", config=GENERATOR_CONFIG)
    client = CLIENTS["SafeCast"](cold_instance.pag)
    nodes = [query.node(cold_instance.pag) for query in client.queries()]

    with ppta.traversal_impl("array"):
        cold_engine = cold_instance.engine()
        started = time.perf_counter()
        cold_instance.pag.adjacency()
        cold_instance.pag.csr()
        for _round in range(rounds):
            cold_answers = [cold_engine.query(node) for node in nodes]
        cold_sec = time.perf_counter() - started

    handle, path = tempfile.mkstemp(prefix="repro-warm-", suffix=".snap")
    os.close(handle)
    try:
        snapshot = cold_engine.save_cache(path, csr=True)
        snapshot_bytes = os.path.getsize(path)

        warm_instance = load_benchmark("jython", config=GENERATOR_CONFIG)
        warm_nodes = [query.node(warm_instance.pag) for query in client.queries()]
        with ppta.traversal_impl("array"):
            started = time.perf_counter()
            warm_engine = PointsToEngine(
                warm_instance.pag,
                replace(bench_engine_policy(), warm_start=path),
            )
            warm_load_sec = time.perf_counter() - started
            started = time.perf_counter()
            warm_answers = [warm_engine.query(node) for node in warm_nodes]
            warm_query_sec = time.perf_counter() - started
            warm_sec = warm_load_sec + warm_query_sec
    finally:
        os.unlink(path)

    stats = warm_engine.stats()
    pag = warm_engine.pag
    if not stats.csr_warm:
        raise PerfCheckError("warm start did not adopt the snapshot's CSR image")
    if pag.csr_compiles != 0 or pag.adjacency_compiles != 0:
        raise PerfCheckError(
            f"warm path recompiled (adjacency={pag.adjacency_compiles}, "
            f"csr={pag.csr_compiles}); the mmap image should carry it"
        )
    cold_pairs = [sorted(map(repr, r.pairs)) for r in cold_answers]
    warm_pairs = [sorted(map(repr, r.pairs)) for r in warm_answers]
    if cold_pairs != warm_pairs:
        raise PerfCheckError("warm-start answers differ from cold answers")
    section = {
        "queries": len(nodes),
        "cold_sec": round(cold_sec, 6),
        "warm_sec": round(warm_sec, 6),
        #: Split: snapshot mmap + summary replay vs answering the stream
        #: off the warm store.  The query-phase ratio is the steady-state
        #: win; the load phase amortises across a server's lifetime.
        "warm_load_sec": round(warm_load_sec, 6),
        "warm_query_sec": round(warm_query_sec, 6),
        "speedup": round(cold_sec / warm_sec, 3) if warm_sec else None,
        "query_speedup": round(cold_sec / warm_query_sec, 3)
        if warm_query_sec
        else None,
        "snapshot_bytes": snapshot_bytes,
        "warm_loaded": stats.warm_loaded,
        "csr_warm": stats.csr_warm,
        "adjacency_compiles": pag.adjacency_compiles,
        "csr_compiles": pag.csr_compiles,
    }
    log(
        f"  cold={cold_sec * 1000:7.1f}ms "
        f"warm={warm_load_sec * 1000:.1f}+{warm_query_sec * 1000:.1f}ms "
        f"({section['speedup']}x total, {section['query_speedup']}x serving, "
        f"{snapshot_bytes} bytes, {stats.warm_loaded} summaries, "
        f"0 recompiles)"
    )
    return section


def run_eviction(sizes, inserts=2_000, log=lambda s: None):
    """The victim-index microbenchmark; returns the ``eviction`` section.

    Fills a cost-aware store to ``size`` entries, then times ``inserts``
    further stores — each one forcing exactly one eviction through the
    heap-backed victim index.
    """
    rows = []
    for size in sizes:
        store = CostAwareSummaryCache(max_entries=size)
        for i in range(size):
            store.store(
                LocalNode(f"M{i}.m", "v"),
                EMPTY_STACK,
                S1,
                PptaResult((), (), steps=i % 37),
            )
        started = time.perf_counter()
        for i in range(inserts):
            store.store(
                LocalNode(f"X{i}.m", "v"),
                EMPTY_STACK,
                S1,
                PptaResult((), (), steps=i % 53),
            )
        elapsed = time.perf_counter() - started
        if store.evictions < inserts:
            raise PerfCheckError(
                f"eviction bench at size {size}: expected >= {inserts} "
                f"evictions, saw {store.evictions}"
            )
        per_eviction_us = elapsed / inserts * 1e6
        rows.append({"entries": size, "per_eviction_us": round(per_eviction_us, 3)})
        log(f"  entries={size:7d} per-eviction={per_eviction_us:8.2f}us")
    times = [row["per_eviction_us"] for row in rows]
    flatness = round(max(times) / min(times), 3) if times else None
    return {"inserts": inserts, "sizes": rows, "flatness_ratio": flatness}


#: Chaos soak seeds: each drives one deterministic fault schedule over
#: the shared-cache service (same seed → same faults, forever), with a
#: rule forcing a disconnect at op 1 so every run provably injects.
CHAOS_SEEDS = (11, 12, 13, 14)
CHAOS_SEEDS_QUICK = (11, 12)


def _chaos_schedule(seed):
    from repro.cacheserver.faults import CLIENT_KINDS, FaultRule, FaultSchedule

    return FaultSchedule(
        seed=seed,
        rate=0.25,
        kinds=CLIENT_KINDS,
        rules=(FaultRule("disconnect", 1),),
    )


def run_chaos(quick=False, scale=0.3, log=lambda s: None):
    """Seeded chaos soak over the shared-cache service; the ``chaos``
    section.

    Each seed replays the Figure-4 jython workload against live
    in-process shard servers under a deterministic mixed fault schedule
    (every client-side kind, rate 0.25) and records whether the answers
    stayed element-wise identical to a fault-free run, how many faults
    were injected, and the fall-open accounting.  ``--check`` gates on
    every row being identical with at least one injected fault —
    robustness is an invariant, not a throughput number.
    """
    from repro.cacheserver.faults import RetryPolicy
    from repro.cacheserver.server import ShardServer
    from repro.engine.policy import CachePolicy

    instance = load_benchmark("jython", scale=scale)
    client = CLIENTS["SafeCast"](instance.pag)
    plain = PointsToEngine(instance.pag, bench_engine_policy())
    _verdicts, baseline_batch = client.run_engine(
        plain, dedupe=False, reorder=False
    )
    baseline = _canonical(baseline_batch.results)
    retry = RetryPolicy(initial=0.01, max_delay=0.05)
    rows = []
    for seed in CHAOS_SEEDS_QUICK if quick else CHAOS_SEEDS:
        schedule = _chaos_schedule(seed)
        servers = [ShardServer(i, 2).start() for i in range(2)]
        try:
            policy = bench_engine_policy(
                cache=CachePolicy(
                    remote=tuple(server.address for server in servers),
                    remote_timeout=1.0,
                    retry=retry,
                    fault_schedule=schedule,
                )
            )
            engine = PointsToEngine(instance.pag, policy)
            started = time.perf_counter()
            _verdicts, batch = client.run_engine(
                engine, dedupe=False, reorder=False
            )
            elapsed = time.perf_counter() - started
            remote = engine.stats().remote
        finally:
            for server in servers:
                server.stop()
        identical = _canonical(batch.results) == baseline
        rows.append(
            {
                "seed": seed,
                "spec": schedule.to_spec(),
                "faults": remote.faults,
                "degraded": remote.degraded,
                "breaker_state": list(remote.breaker_state),
                "identical": identical,
                "time_sec": round(elapsed, 6),
            }
        )
        log(
            f"  seed={seed} faults={remote.faults} "
            f"degraded={remote.degraded} identical={identical} "
            f"{elapsed * 1000:7.1f}ms"
        )
    return {
        "workload": "jython",
        "scale": scale,
        "queries": len(baseline),
        "schedules": rows,
    }


def run_profile(benchmarks, scale, top=12):
    """cProfile one fast figure4 pass; returns the top-N rows."""
    name = benchmarks[0]
    instance = load_benchmark(name, scale=scale)
    instance.pag.adjacency()
    client = CLIENTS["SafeCast"](instance.pag)
    nodes = [query.node(instance.pag) for query in client.queries()]
    analysis = DynSum(instance.pag, bench_analysis_config())
    profiler = cProfile.Profile()
    profiler.enable()
    for node in nodes:
        analysis.points_to(node)
    profiler.disable()
    stats = pstats.Stats(profiler)
    rows = []
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][2], reverse=True
    )
    for (filename, lineno, function), row in entries[:top]:
        cc, ncalls, tottime, cumtime, _callers = row
        rows.append(
            {
                "function": f"{filename.rsplit('/', 1)[-1]}:{lineno}({function})",
                "ncalls": ncalls,
                "tottime_sec": round(tottime, 6),
                "cumtime_sec": round(cumtime, 6),
            }
        )
    return rows


def run_perf(
    quick=False,
    check=False,
    rounds=None,
    reps=None,
    scale=1.0,
    benchmarks=None,
    clients=None,
    impls=None,
    profile_top=12,
    log=lambda s: None,
):
    """Run the whole harness; returns the report dict.

    ``check`` additionally gates on the invariants (answers identical,
    steps equal — always asserted — plus recorded throughput, the array
    loop holding the fast baseline, and sub-linear eviction cost).
    """
    benchmarks = tuple(benchmarks or (("jython",) if quick else FIGURE_BENCHMARKS))
    clients = tuple(clients or (("SafeCast",) if quick else ("SafeCast", "NullDeref")))
    impls = tuple(impls or OPTIMIZED_IMPLS)
    if "native" in impls:
        # Timing "native" without a loadable kernel would silently
        # measure the array fallback; drop it from the sweep instead
        # and say why.
        from repro.native import availability

        native_ok, native_reason = availability()
        if not native_ok:
            log(f"native kernel unavailable ({native_reason}); sweeping without it")
            impls = tuple(impl for impl in impls if impl != "native")
    rounds = rounds if rounds is not None else (2 if quick else 3)
    reps = reps if reps is not None else (2 if quick else 7)
    log(f"figure4 workloads ({'/'.join(impls)} vs reference, persistent engine):")
    figure4 = run_figure4(
        benchmarks, clients, rounds, reps, scale, impls=impls, log=log
    )
    log("warmstart (CSR snapshot, zero recompiles):")
    warmstart = run_warmstart(rounds=rounds, log=log)
    log("eviction (heap-backed victim index):")
    eviction = run_eviction(
        EVICTION_SIZES_QUICK if quick else EVICTION_SIZES,
        inserts=500 if quick else 2_000,
        log=log,
    )
    log("chaos (seeded fault schedules vs the shared-cache service):")
    chaos = run_chaos(quick=quick, log=log)
    profile = run_profile(benchmarks, scale, top=profile_top)
    report = {
        "protocol": "repro-perf",
        # Version 3 adds the native-kernel column (speedup_native /
        # native_vs_array) to figure4 rows and aggregates; version 4
        # adds the chaos soak section (seeded fault schedules against
        # the shared-cache service).
        "version": 4,
        "quick": quick,
        "python": sys.version.split()[0],
        "figure4": figure4,
        "warmstart": warmstart,
        "eviction": eviction,
        "chaos": chaos,
        "profile": profile,
    }
    if check:
        _check_report(report)
        report["checked"] = True
    return report


def _check_report(report):
    """The ``--check`` invariants (no absolute-time gating)."""
    workloads = report["figure4"]["workloads"]
    if not workloads:
        raise PerfCheckError("figure4 sweep produced no workloads")
    for row in workloads:
        for impl in OPTIMIZED_IMPLS:
            if impl in row and row[impl]["steps_per_sec"] <= 0:
                raise PerfCheckError(
                    f"{row['benchmark']}: no {impl} throughput recorded"
                )
    aggregate = report["figure4"]["aggregate"]
    speedups = [
        aggregate.get(key) for key in ("speedup", "speedup_array")
        if key in aggregate
    ]
    if not speedups or any(not s or s <= 0 for s in speedups):
        raise PerfCheckError("aggregate speedup not recorded")
    # The array loop must clear the reference interpreter by a wide
    # margin and hold the fast-path baseline measured in the *same* run
    # (same host, interleaved timing): a drop past the noise floor means
    # the CSR backend has regressed against the loop it shipped to beat.
    # Ratio gates only fire on sweeps with enough measured time to make
    # a ratio meaningful — a sub-50ms micro-sweep (single tiny workload
    # at a small --scale) is scheduler jitter, not a regression signal.
    measured = aggregate.get("time_sec_reference") or 0.0
    if measured >= 0.05:
        if "speedup_array" in aggregate and aggregate["speedup_array"] < 1.5:
            raise PerfCheckError(
                f"array speedup over reference fell to "
                f"{aggregate['speedup_array']}x (< 1.5x)"
            )
        if "array_vs_fast" in aggregate and aggregate["array_vs_fast"] < 0.85:
            raise PerfCheckError(
                f"array throughput regressed to {aggregate['array_vs_fast']}x "
                f"of the fast baseline (< 0.85x)"
            )
    # The C kernel's whole reason to exist is clearing the best
    # pure-Python loop by a wide margin in the same interleaved run.
    # Its gate keys on the *array* total: below ~50ms of pure-Python
    # loop time the workloads are so small that the kernel's fixed
    # per-query crossing cost dominates and the ratio measures FFI
    # overhead, not traversal throughput.
    if (aggregate.get("time_sec_array") or 0.0) >= 0.05:
        if "native_vs_array" in aggregate and aggregate["native_vs_array"] < 1.5:
            raise PerfCheckError(
                f"native kernel speedup over the array loop fell to "
                f"{aggregate['native_vs_array']}x (< 1.5x)"
            )
    warmstart = report.get("warmstart")
    if warmstart is not None and (
        not warmstart["csr_warm"]
        or warmstart["csr_compiles"]
        or warmstart["adjacency_compiles"]
    ):
        raise PerfCheckError("warm start recompiled the traversal substrate")
    chaos = report.get("chaos")
    if chaos is not None:
        if not chaos["schedules"]:
            raise PerfCheckError("chaos soak ran no schedules")
        for row in chaos["schedules"]:
            if not row["identical"]:
                raise PerfCheckError(
                    f"chaos seed {row['seed']} changed answers "
                    f"({row['spec']}); faults must only move cost"
                )
            if row["faults"] <= 0:
                raise PerfCheckError(
                    f"chaos seed {row['seed']} injected nothing "
                    f"({row['spec']}); the soak measured a clean run"
                )
    flatness = report["eviction"]["flatness_ratio"]
    # O(log n) over two orders of magnitude of store size stays within
    # a small constant; the O(n) scan this replaced blows through it by
    # orders of magnitude.
    if flatness is None or flatness > 8.0:
        raise PerfCheckError(
            f"eviction cost is not flat across store sizes "
            f"(ratio {flatness}); the victim index has regressed"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="wall-clock perf harness: steps/sec fast/array/native "
        "vs reference, CSR warm starts, eviction scaling, cProfile top-N",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep for CI smoke (one benchmark, fewer reps)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate on invariants (identical answers, equal steps, "
        "recorded throughput, flat eviction); exits non-zero on failure",
    )
    parser.add_argument("--output", metavar="PATH", default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--benchmarks", metavar="NAME,NAME,...", default=None,
        help=f"figure benchmarks to sweep (default: {','.join(FIGURE_BENCHMARKS)})",
    )
    parser.add_argument(
        "--clients", metavar="NAME,NAME,...", default=None,
        help="clients to sweep (default: SafeCast,NullDeref)",
    )
    parser.add_argument(
        "--traversal-impl", metavar="NAME,NAME,...", default=None,
        help="optimized traversal impls to time against reference "
        f"(default: {','.join(OPTIMIZED_IMPLS)})",
    )
    parser.add_argument("--profile-top", type=int, default=12)
    args = parser.parse_args(argv)
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    clients = args.clients.split(",") if args.clients else None
    impls = args.traversal_impl.split(",") if args.traversal_impl else None
    if impls and any(impl not in OPTIMIZED_IMPLS for impl in impls):
        parser.error(
            f"--traversal-impl must name impls from "
            f"{{{','.join(OPTIMIZED_IMPLS)}}}"
        )
    try:
        report = run_perf(
            quick=args.quick,
            check=args.check,
            rounds=args.rounds,
            reps=args.reps,
            scale=args.scale,
            benchmarks=benchmarks,
            clients=clients,
            impls=impls,
            profile_top=args.profile_top,
            log=lambda line: print(line, file=sys.stderr),
        )
    except PerfCheckError as exc:
        print(f"repro-perf: CHECK FAILED: {exc}", file=sys.stderr)
        return 1
    aggregate = report["figure4"]["aggregate"]
    parts = []
    if "speedup" in aggregate:
        parts.append(f"fast {aggregate['speedup']}x")
    if "speedup_array" in aggregate:
        parts.append(f"array {aggregate['speedup_array']}x")
    if "speedup_native" in aggregate:
        parts.append(f"native {aggregate['speedup_native']}x")
    if "array_vs_fast" in aggregate:
        parts.append(f"array/fast {aggregate['array_vs_fast']}x")
    if "native_vs_array" in aggregate:
        parts.append(f"native/array {aggregate['native_vs_array']}x")
    warmstart = report["warmstart"]
    print(
        f"aggregate speedup over reference: {', '.join(parts)}; "
        f"warm start {warmstart['speedup']}x with 0 recompiles; "
        f"eviction flatness {report['eviction']['flatness_ratio']}",
        file=sys.stderr,
    )
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
