"""Deterministic wall-clock microbenchmarks: the ``repro-perf`` harness.

Every other artifact in this repo measures *steps* — deterministic, but
blind to constant factors, which are the only lever left on the hot
path (inclusion-based points-to has a cubic lower bound; see
PAPERS.md).  This harness measures **steps per second**:

* **figure4** — the Figure-4 workloads (the paper's per-client query
  streams over the figure benchmarks, plus one heavier
  :mod:`repro.bench.generator` program) replayed ``rounds`` times
  against one persistent DYNSUM instance — the long-running-host regime
  the paper motivates (round 1 runs cold, later rounds run on a warm
  summary cache).  Each workload runs under both traversal
  implementations (:func:`repro.analysis.ppta.traversal_impl`):
  ``fast`` — the production record-based loop — and ``reference`` — the
  retained pre-optimization loop (accessor-based PPTA + worklist).
  Answers are asserted element-wise identical and step counts
  bit-equal; the ratio of wall times is the speedup the fast path buys.
* **eviction** — the heap-backed victim index of
  :class:`~repro.analysis.summaries.CostAwareSummaryCache`: per-eviction
  wall time across store sizes.  O(log n) shows as a near-flat curve;
  the O(n) scan it replaced grows linearly.
* **profile** — cProfile top-N of one fast figure4 run, so the next
  hot-spot hunt starts from data.

Wall-clock numbers vary with the host; the committed baseline
(``benchmarks/BENCH_hotpath.json``) records them for trajectory, while
``--check`` gates only on invariants (identical answers, equal steps,
recorded throughput, sub-linear eviction) — never on absolute times.
"""

import argparse
import cProfile
import json
import pstats
import sys
import time

from repro.analysis import ppta
from repro.analysis.dynsum import DynSum
from repro.analysis.ppta import PptaResult
from repro.analysis.summaries import CostAwareSummaryCache
from repro.bench.generator import GeneratorConfig
from repro.bench.runner import bench_analysis_config
from repro.bench.suite import load_benchmark
from repro.cfl.rsm import S1
from repro.cfl.stacks import EMPTY_STACK
from repro.clients import ALL_CLIENTS
from repro.pag.nodes import LocalNode

#: The Figure-4 benchmarks (paper Section 5.3) the harness replays.
FIGURE_BENCHMARKS = ("soot-c", "bloat", "jython")

#: A heavier synthetic program (bench/generator.py) added to the sweep:
#: deeper delegation layers and fatter worker bodies than the paper
#: suite, so the traversal loops run long enough to time cleanly.
GENERATOR_CONFIG = GeneratorConfig(
    seed=7,
    domain_classes=16,
    data_classes=8,
    workers_per_class=3,
    stmts_per_worker=16,
    layers=3,
    driver_rounds=2,
    cast_density=0.6,
    null_density=0.5,
)

CLIENTS = {cls.name: cls for cls in ALL_CLIENTS}

#: Eviction microbenchmark store sizes (entries).
EVICTION_SIZES = (1_000, 10_000, 100_000)
EVICTION_SIZES_QUICK = (1_000, 5_000)


class PerfCheckError(AssertionError):
    """An invariant ``--check`` gates on failed."""


def _canonical(results):
    """Order-independent canonical answers for cross-impl comparison."""
    return [
        (
            result.complete,
            sorted(
                (str(obj.object_id), obj.class_name, ctx.to_tuple())
                for obj, ctx in result.pairs
            ),
        )
        for result in results
    ]


def _workload_instances(benchmarks, scale):
    instances = []
    for name in benchmarks:
        instances.append((name, load_benchmark(name, scale=scale)))
    instances.append(("generator", load_benchmark("jython", config=GENERATOR_CONFIG)))
    return instances


def _replay(instance, nodes, impl, rounds):
    """One timed replay: ``rounds`` passes of the query stream against
    a single persistent DYNSUM under traversal implementation ``impl``.
    Returns (elapsed_sec, total_steps, canonical answers, analysis)."""
    with ppta.traversal_impl(impl):
        analysis = DynSum(instance.pag, bench_analysis_config())
        results = []
        started = time.perf_counter()
        for round_index in range(rounds):
            results = [analysis.points_to(node) for node in nodes]
        elapsed = time.perf_counter() - started
    return elapsed, analysis.total_steps, _canonical(results), analysis


def run_figure4(benchmarks, clients, rounds, reps, scale, log=lambda s: None):
    """The fast-vs-reference sweep; returns the ``figure4`` section."""
    workloads = []
    totals = {"fast": 0.0, "reference": 0.0}
    for name, instance in _workload_instances(benchmarks, scale):
        instance.pag.adjacency()  # compile once, outside every timer
        for client_name in clients:
            client = CLIENTS[client_name](instance.pag)
            nodes = [query.node(instance.pag) for query in client.queries()]
            if not nodes:
                continue
            best = {}
            outcome = {}
            for _rep in range(reps):
                # Interleave the two implementations so drift (thermal,
                # scheduler) hits both evenly.
                for impl in ("fast", "reference"):
                    elapsed, steps, canonical, _ = _replay(
                        instance, nodes, impl, rounds
                    )
                    if impl not in best or elapsed < best[impl]:
                        best[impl] = elapsed
                    outcome[impl] = (steps, canonical)
            fast_steps, fast_answers = outcome["fast"]
            ref_steps, ref_answers = outcome["reference"]
            if fast_answers != ref_answers:
                raise PerfCheckError(
                    f"{name}/{client_name}: fast and reference answers differ"
                )
            if fast_steps != ref_steps:
                raise PerfCheckError(
                    f"{name}/{client_name}: step counts diverge "
                    f"(fast={fast_steps}, reference={ref_steps})"
                )
            totals["fast"] += best["fast"]
            totals["reference"] += best["reference"]
            row = {
                "benchmark": name,
                "client": client_name,
                "queries": len(nodes),
                "rounds": rounds,
                "steps": fast_steps,
                "fast": {
                    "time_sec": round(best["fast"], 6),
                    "steps_per_sec": round(fast_steps / best["fast"]),
                },
                "reference": {
                    "time_sec": round(best["reference"], 6),
                    "steps_per_sec": round(ref_steps / best["reference"]),
                },
                "speedup": round(best["reference"] / best["fast"], 3),
            }
            workloads.append(row)
            log(
                f"  {name:10s} {client_name:10s} steps={fast_steps:8d} "
                f"fast={best['fast'] * 1000:7.1f}ms "
                f"ref={best['reference'] * 1000:7.1f}ms "
                f"speedup={row['speedup']:.2f}x"
            )
    aggregate = {
        "time_sec_fast": round(totals["fast"], 6),
        "time_sec_reference": round(totals["reference"], 6),
        "speedup": round(totals["reference"] / totals["fast"], 3)
        if totals["fast"]
        else None,
    }
    return {"workloads": workloads, "aggregate": aggregate}


def run_eviction(sizes, inserts=2_000, log=lambda s: None):
    """The victim-index microbenchmark; returns the ``eviction`` section.

    Fills a cost-aware store to ``size`` entries, then times ``inserts``
    further stores — each one forcing exactly one eviction through the
    heap-backed victim index.
    """
    rows = []
    for size in sizes:
        store = CostAwareSummaryCache(max_entries=size)
        for i in range(size):
            store.store(
                LocalNode(f"M{i}.m", "v"),
                EMPTY_STACK,
                S1,
                PptaResult((), (), steps=i % 37),
            )
        started = time.perf_counter()
        for i in range(inserts):
            store.store(
                LocalNode(f"X{i}.m", "v"),
                EMPTY_STACK,
                S1,
                PptaResult((), (), steps=i % 53),
            )
        elapsed = time.perf_counter() - started
        if store.evictions < inserts:
            raise PerfCheckError(
                f"eviction bench at size {size}: expected >= {inserts} "
                f"evictions, saw {store.evictions}"
            )
        per_eviction_us = elapsed / inserts * 1e6
        rows.append({"entries": size, "per_eviction_us": round(per_eviction_us, 3)})
        log(f"  entries={size:7d} per-eviction={per_eviction_us:8.2f}us")
    times = [row["per_eviction_us"] for row in rows]
    flatness = round(max(times) / min(times), 3) if times else None
    return {"inserts": inserts, "sizes": rows, "flatness_ratio": flatness}


def run_profile(benchmarks, scale, top=12):
    """cProfile one fast figure4 pass; returns the top-N rows."""
    name = benchmarks[0]
    instance = load_benchmark(name, scale=scale)
    instance.pag.adjacency()
    client = CLIENTS["SafeCast"](instance.pag)
    nodes = [query.node(instance.pag) for query in client.queries()]
    analysis = DynSum(instance.pag, bench_analysis_config())
    profiler = cProfile.Profile()
    profiler.enable()
    for node in nodes:
        analysis.points_to(node)
    profiler.disable()
    stats = pstats.Stats(profiler)
    rows = []
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][2], reverse=True
    )
    for (filename, lineno, function), row in entries[:top]:
        cc, ncalls, tottime, cumtime, _callers = row
        rows.append(
            {
                "function": f"{filename.rsplit('/', 1)[-1]}:{lineno}({function})",
                "ncalls": ncalls,
                "tottime_sec": round(tottime, 6),
                "cumtime_sec": round(cumtime, 6),
            }
        )
    return rows


def run_perf(
    quick=False,
    check=False,
    rounds=None,
    reps=None,
    scale=1.0,
    benchmarks=None,
    clients=None,
    profile_top=12,
    log=lambda s: None,
):
    """Run the whole harness; returns the report dict.

    ``check`` additionally gates on the invariants (answers identical,
    steps equal — always asserted — plus recorded throughput and
    sub-linear eviction cost).
    """
    benchmarks = tuple(benchmarks or (("jython",) if quick else FIGURE_BENCHMARKS))
    clients = tuple(clients or (("SafeCast",) if quick else ("SafeCast", "NullDeref")))
    rounds = rounds if rounds is not None else (2 if quick else 3)
    reps = reps if reps is not None else (2 if quick else 7)
    log("figure4 workloads (fast vs reference, persistent engine):")
    figure4 = run_figure4(benchmarks, clients, rounds, reps, scale, log=log)
    log("eviction (heap-backed victim index):")
    eviction = run_eviction(
        EVICTION_SIZES_QUICK if quick else EVICTION_SIZES,
        inserts=500 if quick else 2_000,
        log=log,
    )
    profile = run_profile(benchmarks, scale, top=profile_top)
    report = {
        "protocol": "repro-perf",
        "version": 1,
        "quick": quick,
        "python": sys.version.split()[0],
        "figure4": figure4,
        "eviction": eviction,
        "profile": profile,
    }
    if check:
        _check_report(report)
        report["checked"] = True
    return report


def _check_report(report):
    """The ``--check`` invariants (no absolute-time gating)."""
    workloads = report["figure4"]["workloads"]
    if not workloads:
        raise PerfCheckError("figure4 sweep produced no workloads")
    for row in workloads:
        if row["fast"]["steps_per_sec"] <= 0:
            raise PerfCheckError(f"{row['benchmark']}: no throughput recorded")
    aggregate = report["figure4"]["aggregate"]
    if not aggregate["speedup"] or aggregate["speedup"] <= 0:
        raise PerfCheckError("aggregate speedup not recorded")
    flatness = report["eviction"]["flatness_ratio"]
    # O(log n) over two orders of magnitude of store size stays within
    # a small constant; the O(n) scan this replaced blows through it by
    # orders of magnitude.
    if flatness is None or flatness > 8.0:
        raise PerfCheckError(
            f"eviction cost is not flat across store sizes "
            f"(ratio {flatness}); the victim index has regressed"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="wall-clock perf harness: steps/sec fast-vs-reference, "
        "eviction scaling, cProfile top-N",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep for CI smoke (one benchmark, fewer reps)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate on invariants (identical answers, equal steps, "
        "recorded throughput, flat eviction); exits non-zero on failure",
    )
    parser.add_argument("--output", metavar="PATH", default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--benchmarks", metavar="NAME,NAME,...", default=None,
        help=f"figure benchmarks to sweep (default: {','.join(FIGURE_BENCHMARKS)})",
    )
    parser.add_argument(
        "--clients", metavar="NAME,NAME,...", default=None,
        help="clients to sweep (default: SafeCast,NullDeref)",
    )
    parser.add_argument("--profile-top", type=int, default=12)
    args = parser.parse_args(argv)
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    clients = args.clients.split(",") if args.clients else None
    try:
        report = run_perf(
            quick=args.quick,
            check=args.check,
            rounds=args.rounds,
            reps=args.reps,
            scale=args.scale,
            benchmarks=benchmarks,
            clients=clients,
            profile_top=args.profile_top,
            log=lambda line: print(line, file=sys.stderr),
        )
    except PerfCheckError as exc:
        print(f"repro-perf: CHECK FAILED: {exc}", file=sys.stderr)
        return 1
    aggregate = report["figure4"]["aggregate"]
    print(
        f"aggregate speedup: {aggregate['speedup']}x "
        f"(fast {aggregate['time_sec_fast']}s vs "
        f"reference {aggregate['time_sec_reference']}s); "
        f"eviction flatness {report['eviction']['flatness_ratio']}",
        file=sys.stderr,
    )
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
