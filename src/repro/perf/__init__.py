"""``repro.perf`` — the wall-clock performance harness (``repro-perf``).

Everything else in the repo measures deterministic traversal *steps*;
this package owns the other dimension: steps per second.  See
:mod:`repro.perf.harness` for the protocols and the
``benchmarks/BENCH_hotpath.json`` baseline they produce.
"""

from repro.perf.harness import main, run_perf

__all__ = ["main", "run_perf"]
