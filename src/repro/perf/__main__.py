"""``python -m repro.perf`` — alias for the ``repro-perf`` entry point."""

from repro.perf.harness import main

if __name__ == "__main__":
    raise SystemExit(main())
