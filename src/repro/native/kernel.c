/* The native traversal kernel: PPTA + DYNSUM inner loops over the CSR
 * image's raw int32 arrays.
 *
 * This file is a statement-for-statement C mirror of the two Python
 * array-impl loops — `repro.analysis.ppta._run_ppta_array` and
 * `repro.analysis.dynsum.DynSum._explore_array` — over the exact same
 * memory layout (`repro.pag.csr.CsrImage`): per-node CSR offset/value
 * groups, one flags byte per node (plus the zero sentinel at index n),
 * packed traversal states `t = index * 4 + state`, and cross-edge op
 * lists with the recursive-site bit folded into the op code.  Budget
 * charging, depth cutoffs, LIFO/FIFO discipline, visited-set probe
 * order, cache hit/miss accounting and abort points are all replicated
 * bit-exactly, so per-query answers AND step counts match
 * `run_ppta_reference`.
 *
 * Deliberately no Python.h: the binding layer (`repro.native.binding`)
 * loads this as a plain shared object via ctypes.PyDLL (the GIL stays
 * held for the duration of every call, so the per-process tables below
 * never race) and keeps the backing buffers alive for the lifetime of
 * each RkGraph.
 *
 * Ownership:
 *   RkGraph    — borrows the 26 CSR arrays + flags from Python; owns
 *                copies of the token/rank tables (they grow when the
 *                binding registers synthetic tokens) and the two
 *                hash-consed stack tables (field stacks + context
 *                stacks, shared by every session over the image).
 *   RkSession  — one per (image, SummaryCache) pair; owns the summary
 *                table mirroring the Python cache's `_entries`.
 *   Rk*Result  — malloc'd per call, freed by the matching rk_*_free.
 *
 * Registered in repro.devtools.registry.HOT_FUNCTIONS (impl="native"):
 * rk_ppta and rk_dynsum are the drivers repro-perf measures.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define RK_ABI_VERSION 1

/* RSM states and token families (repro.cfl.rsm). */
#define RK_S1 1
#define RK_S2 2
#define RK_FAM_LOAD 0

/* Cross-op codes (repro.pag.csr). */
#define RK_OP_PUSH 0
#define RK_OP_PUSH_REC 1
#define RK_OP_POP 2
#define RK_OP_POP_REC 3
#define RK_OP_CLEAR 4

/* Flags byte bits. */
#define RK_FLAG_GLOBAL_IN 1
#define RK_FLAG_GLOBAL_OUT 2
#define RK_FLAG_LOCAL 4

/* Statuses shared by both result structs. */
#define RK_OK 0
#define RK_ABORT 1 /* budget or depth cutoff — mirrors BudgetExceededError */
#define RK_ERR_OOM (-2)

/* rk_graph_new error codes (the binding maps them to reason strings). */
#define RK_GERR_OOM 1
#define RK_GERR_OFFSETS 2
#define RK_GERR_RANGE 3

/* The 26 CSR arrays, in repro.pag.csr._ARRAY_NAMES order. */
enum {
    A_NEW_OFF, A_NEW_VAL,
    A_AS_OFF, A_AS_VAL,
    A_LI_OFF, A_LI_TOK, A_LI_VAL,
    A_AT_OFF, A_AT_VAL,
    A_LF_OFF, A_LF_FID, A_LF_VAL,
    A_SI_OFF, A_SI_FID, A_SI_VAL,
    A_SF_OFF, A_SF_TOK, A_SF_VAL,
    A_CB_OFF, A_CB_OP, A_CB_SITE, A_CB_TGT,
    A_CF_OFF, A_CF_OP, A_CF_SITE, A_CF_TGT,
    A_COUNT
};

/* ------------------------------------------------------------------ */
/* growable int32 buffer                                              */
/* ------------------------------------------------------------------ */
typedef struct {
    int32_t *data;
    int32_t len;
    int32_t cap;
    int oom;
} IntBuf;

static void buf_init(IntBuf *b) {
    b->data = NULL;
    b->len = 0;
    b->cap = 0;
    b->oom = 0;
}

static void buf_free(IntBuf *b) {
    free(b->data);
    b->data = NULL;
    b->len = b->cap = 0;
}

static int buf_grow(IntBuf *b, int32_t need) {
    int32_t cap = b->cap ? b->cap : 64;
    int32_t *data;
    while (cap < need) {
        if (cap > INT32_MAX / 2) {
            b->oom = 1;
            return -1;
        }
        cap *= 2;
    }
    data = (int32_t *)realloc(b->data, (size_t)cap * sizeof(int32_t));
    if (!data) {
        b->oom = 1;
        return -1;
    }
    b->data = data;
    b->cap = cap;
    return 0;
}

static int buf_push(IntBuf *b, int32_t v) {
    if (b->len == b->cap && buf_grow(b, b->len + 1) < 0)
        return -1;
    b->data[b->len++] = v;
    return 0;
}

static int buf_push2(IntBuf *b, int32_t a, int32_t c) {
    if (b->len + 2 > b->cap && buf_grow(b, b->len + 2) < 0)
        return -1;
    b->data[b->len++] = a;
    b->data[b->len++] = c;
    return 0;
}

static int buf_push3(IntBuf *b, int32_t a, int32_t c, int32_t d) {
    if (b->len + 3 > b->cap && buf_grow(b, b->len + 3) < 0)
        return -1;
    b->data[b->len++] = a;
    b->data[b->len++] = c;
    b->data[b->len++] = d;
    return 0;
}

/* growable int64 buffer (summary step costs) */
typedef struct {
    int64_t *data;
    int32_t len;
    int32_t cap;
} I64Buf;

static int i64_push(I64Buf *b, int64_t v) {
    if (b->len == b->cap) {
        int32_t cap = b->cap ? b->cap * 2 : 64;
        int64_t *data = (int64_t *)realloc(b->data, (size_t)cap * sizeof(int64_t));
        if (!data)
            return -1;
        b->data = data;
        b->cap = cap;
    }
    b->data[b->len++] = v;
    return 0;
}

/* ------------------------------------------------------------------ */
/* open-addressing set over 96-bit keys (k1: 64 bits, k2: 32 bits)    */
/*                                                                    */
/* Used for every visited set and for the pair dedup:                 */
/*   PPTA visited:   k1 = f << 32 | t,  k2 = 0                        */
/*   DYNSUM seen:    k1 = f << 32 | t,  k2 = ctx                      */
/*   pairs:          k1 = obj,          k2 = ctx                      */
/* The packing is an exact encoding (f, t, ctx are all non-negative   */
/* int32), mirroring the Python impls' injective int-key packings.    */
/* ------------------------------------------------------------------ */
#define SET_EMPTY UINT64_MAX /* k1 is always < 2^63, never all-ones */

typedef struct {
    uint64_t *k1;
    uint32_t *k2;
    uint32_t cap;  /* power of two */
    uint32_t used;
} KSet;

static uint64_t mix64(uint64_t x) {
    /* splitmix64 finalizer */
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

static int kset_init(KSet *s, uint32_t cap) {
    uint32_t i;
    s->k1 = (uint64_t *)malloc((size_t)cap * sizeof(uint64_t));
    s->k2 = (uint32_t *)malloc((size_t)cap * sizeof(uint32_t));
    if (!s->k1 || !s->k2) {
        free(s->k1);
        free(s->k2);
        s->k1 = NULL;
        s->k2 = NULL;
        return -1;
    }
    for (i = 0; i < cap; i++)
        s->k1[i] = SET_EMPTY;
    s->cap = cap;
    s->used = 0;
    return 0;
}

static void kset_free(KSet *s) {
    free(s->k1);
    free(s->k2);
    s->k1 = NULL;
    s->k2 = NULL;
}

static int kset_grow(KSet *s) {
    KSet bigger;
    uint32_t i;
    if (kset_init(&bigger, s->cap * 2) < 0)
        return -1;
    for (i = 0; i < s->cap; i++) {
        if (s->k1[i] != SET_EMPTY) {
            uint64_t k1 = s->k1[i];
            uint32_t k2 = s->k2[i];
            uint32_t j = (uint32_t)mix64(k1 ^ ((uint64_t)k2 << 1)) & (bigger.cap - 1);
            while (bigger.k1[j] != SET_EMPTY)
                j = (j + 1) & (bigger.cap - 1);
            bigger.k1[j] = k1;
            bigger.k2[j] = k2;
        }
    }
    bigger.used = s->used;
    kset_free(s);
    *s = bigger;
    return 0;
}

/* Add-and-compare in one probe: returns 1 if inserted (was absent),
 * 0 if already present, -1 on OOM. */
static int kset_add(KSet *s, uint64_t k1, uint32_t k2) {
    uint32_t j;
    if (s->used * 4 >= s->cap * 3 && kset_grow(s) < 0)
        return -1;
    j = (uint32_t)mix64(k1 ^ ((uint64_t)k2 << 1)) & (s->cap - 1);
    while (s->k1[j] != SET_EMPTY) {
        if (s->k1[j] == k1 && s->k2[j] == k2)
            return 0;
        j = (j + 1) & (s->cap - 1);
    }
    s->k1[j] = k1;
    s->k2[j] = k2;
    s->used++;
    return 1;
}

/* ------------------------------------------------------------------ */
/* open-addressing map: 64-bit key -> int32 value                     */
/* (hash-cons tables and the summary index)                           */
/* ------------------------------------------------------------------ */
typedef struct {
    uint64_t *keys;
    int32_t *vals;
    uint32_t cap;
    uint32_t used;
} KMap;

static int kmap_init(KMap *m, uint32_t cap) {
    uint32_t i;
    m->keys = (uint64_t *)malloc((size_t)cap * sizeof(uint64_t));
    m->vals = (int32_t *)malloc((size_t)cap * sizeof(int32_t));
    if (!m->keys || !m->vals) {
        free(m->keys);
        free(m->vals);
        m->keys = NULL;
        m->vals = NULL;
        return -1;
    }
    for (i = 0; i < cap; i++)
        m->keys[i] = SET_EMPTY;
    m->cap = cap;
    m->used = 0;
    return 0;
}

static void kmap_free(KMap *m) {
    free(m->keys);
    free(m->vals);
    m->keys = NULL;
    m->vals = NULL;
}

static int kmap_grow(KMap *m) {
    KMap bigger;
    uint32_t i;
    if (kmap_init(&bigger, m->cap * 2) < 0)
        return -1;
    for (i = 0; i < m->cap; i++) {
        if (m->keys[i] != SET_EMPTY) {
            uint32_t j = (uint32_t)mix64(m->keys[i]) & (bigger.cap - 1);
            while (bigger.keys[j] != SET_EMPTY)
                j = (j + 1) & (bigger.cap - 1);
            bigger.keys[j] = m->keys[i];
            bigger.vals[j] = m->vals[i];
        }
    }
    bigger.used = m->used;
    kmap_free(m);
    *m = bigger;
    return 0;
}

/* -1 when absent */
static int32_t kmap_get(const KMap *m, uint64_t key) {
    uint32_t j = (uint32_t)mix64(key) & (m->cap - 1);
    while (m->keys[j] != SET_EMPTY) {
        if (m->keys[j] == key)
            return m->vals[j];
        j = (j + 1) & (m->cap - 1);
    }
    return -1;
}

static int kmap_put(KMap *m, uint64_t key, int32_t val) {
    uint32_t j;
    if (m->used * 4 >= m->cap * 3 && kmap_grow(m) < 0)
        return -1;
    j = (uint32_t)mix64(key) & (m->cap - 1);
    while (m->keys[j] != SET_EMPTY) {
        if (m->keys[j] == key) {
            m->vals[j] = val;
            return 0;
        }
        j = (j + 1) & (m->cap - 1);
    }
    m->keys[j] = key;
    m->vals[j] = val;
    m->used++;
    return 0;
}

/* ------------------------------------------------------------------ */
/* hash-consed persistent stacks (field stacks and context stacks)    */
/*                                                                    */
/* The C twin of repro.cfl.stacks.Stack: id 0 is the empty stack,     */
/* push(parent, value) is interned on (parent, value), so equal       */
/* stacks have equal ids — the same canonicity the Python visited     */
/* sets key on via Stack._uid.  The binding rebuilds Python stacks    */
/* from ids via the value/parent accessors (memoised per id).         */
/* ------------------------------------------------------------------ */
typedef struct {
    IntBuf value;  /* entry's top value (token id / call site) */
    IntBuf parent; /* parent stack id */
    IntBuf depth;  /* entry count */
    KMap cons;     /* (parent, value) -> id */
} StackTable;

static int stacks_init(StackTable *t) {
    buf_init(&t->value);
    buf_init(&t->parent);
    buf_init(&t->depth);
    if (kmap_init(&t->cons, 256) < 0)
        return -1;
    /* id 0: the empty stack */
    if (buf_push(&t->value, -1) < 0 || buf_push(&t->parent, -1) < 0 ||
        buf_push(&t->depth, 0) < 0)
        return -1;
    return 0;
}

static void stacks_free(StackTable *t) {
    buf_free(&t->value);
    buf_free(&t->parent);
    buf_free(&t->depth);
    kmap_free(&t->cons);
}

/* canonical push; -1 on OOM */
static int32_t stacks_push(StackTable *t, int32_t parent, int32_t value) {
    uint64_t key = ((uint64_t)(uint32_t)parent << 32) | (uint32_t)value;
    int32_t id = kmap_get(&t->cons, key);
    if (id >= 0)
        return id;
    id = t->value.len;
    if (buf_push(&t->value, value) < 0 || buf_push(&t->parent, parent) < 0 ||
        buf_push(&t->depth, t->depth.data[parent] + 1) < 0)
        return -1;
    if (kmap_put(&t->cons, key, id) < 0)
        return -1;
    return id;
}

/* ------------------------------------------------------------------ */
/* the graph handle                                                   */
/* ------------------------------------------------------------------ */
typedef struct {
    int32_t n;          /* node count (sentinel index is n) */
    const int32_t *a[A_COUNT];
    const uint8_t *flags; /* n + 1 bytes */
    /* token tables — owned copies, growable (synthetic tokens the
     * binding registers for standalone PPTA start stacks) */
    IntBuf tok_fid;
    IntBuf tok_fam;
    IntBuf tok_rank;
    /* node order ranks (by Node.sort_key) — owned copy */
    int32_t *node_rank;
    StackTable fstacks;
    StackTable cstacks;
    int oom; /* poisoned by a failed stack push; binding retires the handle */
} RkGraph;

static int check_offsets(const int32_t *off, int32_t n, int32_t total) {
    int32_t i;
    if (off[0] != 0 || off[n] != total)
        return -1;
    for (i = 0; i < n; i++)
        if (off[i] > off[i + 1])
            return -1;
    return 0;
}

static int check_range(const int32_t *vals, int32_t count, int32_t lo, int32_t hi) {
    int32_t i;
    for (i = 0; i < count; i++)
        if (vals[i] < lo || vals[i] >= hi)
            return -1;
    return 0;
}

int rk_abi_version(void) {
    return RK_ABI_VERSION;
}

/* arrays: the 26 CSR arrays in _ARRAY_NAMES order; counts: their
 * element counts.  All pointers are borrowed — the binding keeps the
 * owning Python objects alive for the handle's lifetime. */
RkGraph *rk_graph_new(int32_t n, const int32_t **arrays, const int32_t *counts,
                      const uint8_t *flags, int32_t n_tokens,
                      const int32_t *tok_fid, const int32_t *tok_fam,
                      const int32_t *tok_rank, const int32_t *node_rank,
                      int32_t *err) {
    static const int off_of_val[A_COUNT] = {
        /* value-array index -> its offsets-array index; offsets map to
         * themselves. */
        A_NEW_OFF, A_NEW_OFF,
        A_AS_OFF, A_AS_OFF,
        A_LI_OFF, A_LI_OFF, A_LI_OFF,
        A_AT_OFF, A_AT_OFF,
        A_LF_OFF, A_LF_OFF, A_LF_OFF,
        A_SI_OFF, A_SI_OFF, A_SI_OFF,
        A_SF_OFF, A_SF_OFF, A_SF_OFF,
        A_CB_OFF, A_CB_OFF, A_CB_OFF, A_CB_OFF,
        A_CF_OFF, A_CF_OFF, A_CF_OFF, A_CF_OFF,
    };
    static const int is_off[A_COUNT] = {
        1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0,
        1, 0, 0, 0, 1, 0, 0, 0,
    };
    /* node-index valued arrays (0 <= v < n) */
    static const int is_node[A_COUNT] = {
        0, 1, 0, 1, 0, 0, 1, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1,
        0, 0, 0, 1, 0, 0, 0, 1,
    };
    RkGraph *g;
    int i;

    *err = 0;
    for (i = 0; i < A_COUNT; i++) {
        if (is_off[i]) {
            if (counts[i] != n + 1) {
                *err = RK_GERR_OFFSETS;
                return NULL;
            }
        } else {
            /* every value array's count must equal its group total */
            if (check_offsets(arrays[off_of_val[i]], n, counts[i]) < 0) {
                *err = RK_GERR_OFFSETS;
                return NULL;
            }
        }
    }
    for (i = 0; i < A_COUNT; i++) {
        if (is_node[i] && check_range(arrays[i], counts[i], 0, n) < 0) {
            *err = RK_GERR_RANGE;
            return NULL;
        }
    }
    if (check_range(arrays[A_LI_TOK], counts[A_LI_TOK], 0, n_tokens) < 0 ||
        check_range(arrays[A_SF_TOK], counts[A_SF_TOK], 0, n_tokens) < 0 ||
        check_range(arrays[A_CB_OP], counts[A_CB_OP], 0, RK_OP_CLEAR + 1) < 0 ||
        check_range(arrays[A_CF_OP], counts[A_CF_OP], 0, RK_OP_CLEAR + 1) < 0) {
        *err = RK_GERR_RANGE;
        return NULL;
    }

    g = (RkGraph *)calloc(1, sizeof(RkGraph));
    if (!g) {
        *err = RK_GERR_OOM;
        return NULL;
    }
    g->n = n;
    for (i = 0; i < A_COUNT; i++)
        g->a[i] = arrays[i];
    g->flags = flags;
    buf_init(&g->tok_fid);
    buf_init(&g->tok_fam);
    buf_init(&g->tok_rank);
    for (i = 0; i < n_tokens; i++) {
        if (buf_push(&g->tok_fid, tok_fid[i]) < 0 ||
            buf_push(&g->tok_fam, tok_fam[i]) < 0 ||
            buf_push(&g->tok_rank, tok_rank[i]) < 0)
            goto oom;
    }
    g->node_rank = (int32_t *)malloc(((size_t)n + 1) * sizeof(int32_t));
    if (!g->node_rank)
        goto oom;
    memcpy(g->node_rank, node_rank, (size_t)n * sizeof(int32_t));
    g->node_rank[n] = n; /* sentinel — never compared, keep it defined */
    if (stacks_init(&g->fstacks) < 0 || stacks_init(&g->cstacks) < 0)
        goto oom;
    return g;
oom:
    *err = RK_GERR_OOM;
    buf_free(&g->tok_fid);
    buf_free(&g->tok_fam);
    buf_free(&g->tok_rank);
    free(g->node_rank);
    stacks_free(&g->fstacks);
    stacks_free(&g->cstacks);
    free(g);
    return NULL;
}

void rk_graph_free(RkGraph *g) {
    if (!g)
        return;
    buf_free(&g->tok_fid);
    buf_free(&g->tok_fam);
    buf_free(&g->tok_rank);
    free(g->node_rank);
    stacks_free(&g->fstacks);
    stacks_free(&g->cstacks);
    free(g);
}

/* Register a token the image's table does not carry (a synthetic start
 * stack element of a standalone PPTA query).  rank is unused for
 * synthetics — they can never appear in a session summary's boundary
 * sort (sessions only traverse image tokens). */
int32_t rk_graph_add_token(RkGraph *g, int32_t fid, int32_t fam) {
    int32_t id = g->tok_fid.len;
    if (buf_push(&g->tok_fid, fid) < 0 || buf_push(&g->tok_fam, fam) < 0 ||
        buf_push(&g->tok_rank, 0) < 0) {
        g->oom = 1;
        return -1;
    }
    return id;
}

int32_t rk_fstack_push(RkGraph *g, int32_t parent, int32_t value) {
    int32_t id = stacks_push(&g->fstacks, parent, value);
    if (id < 0)
        g->oom = 1;
    return id;
}

int32_t rk_cstack_push(RkGraph *g, int32_t parent, int32_t value) {
    int32_t id = stacks_push(&g->cstacks, parent, value);
    if (id < 0)
        g->oom = 1;
    return id;
}

/* Accessors the binding uses to rebuild Python stacks from ids. */
int32_t rk_fstack_value(const RkGraph *g, int32_t id) { return g->fstacks.value.data[id]; }
int32_t rk_fstack_parent(const RkGraph *g, int32_t id) { return g->fstacks.parent.data[id]; }
int32_t rk_cstack_value(const RkGraph *g, int32_t id) { return g->cstacks.value.data[id]; }
int32_t rk_cstack_parent(const RkGraph *g, int32_t id) { return g->cstacks.parent.data[id]; }
int32_t rk_graph_oom(const RkGraph *g) { return g->oom; }

/* ------------------------------------------------------------------ */
/* the session: a summary table mirroring one SummaryCache            */
/* ------------------------------------------------------------------ */
typedef struct {
    RkGraph *g;
    KMap index;      /* (f << 32 | t) -> record number */
    IntBuf rec_t;    /* per record: packed key state */
    IntBuf rec_f;    /* per record: key field-stack id */
    I64Buf rec_steps;
    IntBuf rec_obj_off; /* n_records + 1 offsets into obj_pool */
    IntBuf rec_b_off;   /* n_records + 1 offsets into the boundary pools */
    IntBuf obj_pool;    /* object node indices, per-record emission order */
    IntBuf b_t_pool;    /* boundary packed states, per-record stored order */
    IntBuf b_f_pool;    /* boundary field-stack ids */
    int oom;
} RkSession;

void rk_session_free(RkSession *s);

RkSession *rk_session_new(RkGraph *g) {
    RkSession *s = (RkSession *)calloc(1, sizeof(RkSession));
    if (!s)
        return NULL;
    s->g = g;
    if (kmap_init(&s->index, 1024) < 0) {
        free(s);
        return NULL;
    }
    buf_init(&s->rec_t);
    buf_init(&s->rec_f);
    buf_init(&s->rec_obj_off);
    buf_init(&s->rec_b_off);
    buf_init(&s->obj_pool);
    buf_init(&s->b_t_pool);
    buf_init(&s->b_f_pool);
    if (buf_push(&s->rec_obj_off, 0) < 0 || buf_push(&s->rec_b_off, 0) < 0) {
        rk_session_free(s);
        return NULL;
    }
    return s;
}

void rk_session_free(RkSession *s) {
    if (!s)
        return;
    kmap_free(&s->index);
    buf_free(&s->rec_t);
    buf_free(&s->rec_f);
    free(s->rec_steps.data);
    buf_free(&s->rec_obj_off);
    buf_free(&s->rec_b_off);
    buf_free(&s->obj_pool);
    buf_free(&s->b_t_pool);
    buf_free(&s->b_f_pool);
    free(s);
}

int32_t rk_session_count(const RkSession *s) { return s->rec_t.len; }
int32_t rk_session_oom(const RkSession *s) { return s->oom; }

static uint64_t summary_key(int32_t t, int32_t f) {
    return ((uint64_t)(uint32_t)f << 32) | (uint32_t)t;
}

/* Append one summary record; returns its number or -1 on OOM. */
static int32_t session_commit(RkSession *s, int32_t t, int32_t f, int64_t steps,
                              const int32_t *objs, int32_t n_obj,
                              const int32_t *b_t, const int32_t *b_f,
                              int32_t n_b) {
    int32_t rec = s->rec_t.len;
    int32_t i;
    if (buf_push(&s->rec_t, t) < 0 || buf_push(&s->rec_f, f) < 0 ||
        i64_push(&s->rec_steps, steps) < 0)
        goto oom;
    for (i = 0; i < n_obj; i++)
        if (buf_push(&s->obj_pool, objs[i]) < 0)
            goto oom;
    for (i = 0; i < n_b; i++)
        if (buf_push(&s->b_t_pool, b_t[i]) < 0 || buf_push(&s->b_f_pool, b_f[i]) < 0)
            goto oom;
    if (buf_push(&s->rec_obj_off, s->obj_pool.len) < 0 ||
        buf_push(&s->rec_b_off, s->b_t_pool.len) < 0)
        goto oom;
    if (kmap_put(&s->index, summary_key(t, f), rec) < 0)
        goto oom;
    return rec;
oom:
    s->oom = 1;
    return -1;
}

/* Import one Python cache entry (boundaries already in stored order —
 * the Python side sorted them at creation).  0 on success. */
int32_t rk_summary_put(RkSession *s, int32_t t, int32_t f, int64_t steps,
                       int32_t n_obj, const int32_t *objs, int32_t n_b,
                       const int32_t *b_t, const int32_t *b_f) {
    return session_commit(s, t, f, steps, objs, n_obj, b_t, b_f, n_b) < 0 ? -1 : 0;
}

/* ------------------------------------------------------------------ */
/* boundary ordering (repro.analysis.ppta._boundary_order)            */
/*                                                                    */
/* Python sorts boundary tuples by (node.sort_key, state,             */
/* field_stack.to_tuple()).  node_rank / tok_rank are the Python-     */
/* computed ranks of those sort keys, so rank comparison here is      */
/* order-isomorphic; stack tuples compare bottom-to-top with the      */
/* shorter-prefix-first rule, exactly like Python tuple comparison.   */
/* ------------------------------------------------------------------ */
static int cmp_fstack_seq(const RkGraph *g, int32_t a, int32_t b) {
    const int32_t *parent = g->fstacks.parent.data;
    const int32_t *value = g->fstacks.value.data;
    const int32_t *depth = g->fstacks.depth.data;
    const int32_t *rank = g->tok_rank.data;
    int c;
    if (a == b)
        return 0;
    if (depth[a] < depth[b]) {
        /* compare a against b's prefix of equal length */
        int32_t bb = b;
        while (depth[bb] > depth[a])
            bb = parent[bb];
        c = cmp_fstack_seq(g, a, bb);
        return c ? c : -1; /* equal prefix: shorter sorts first */
    }
    if (depth[a] > depth[b]) {
        int32_t aa = a;
        while (depth[aa] > depth[b])
            aa = parent[aa];
        c = cmp_fstack_seq(g, aa, b);
        return c ? c : 1;
    }
    /* equal depths: bottom part first, then the tops */
    c = cmp_fstack_seq(g, parent[a], parent[b]);
    if (c)
        return c;
    return rank[value[a]] < rank[value[b]] ? -1 : 1;
}

typedef struct {
    int32_t t;
    int32_t f;
} Boundary;

static const RkGraph *g_sort_graph; /* PyDLL calls are serialized by the GIL */

static int cmp_boundary(const void *pa, const void *pb) {
    const Boundary *a = (const Boundary *)pa;
    const Boundary *b = (const Boundary *)pb;
    const RkGraph *g = g_sort_graph;
    int32_t ra = g->node_rank[a->t >> 2], rb = g->node_rank[b->t >> 2];
    int32_t sa, sb;
    if (ra != rb)
        return ra < rb ? -1 : 1;
    sa = a->t & 3;
    sb = b->t & 3;
    if (sa != sb)
        return sa < sb ? -1 : 1;
    return cmp_fstack_seq(g, a->f, b->f);
}

/* ------------------------------------------------------------------ */
/* PPTA — the C mirror of _run_ppta_array                             */
/* ------------------------------------------------------------------ */
/* Expand helper shared by both prologue branches is deliberately NOT
 * factored out: the code below keeps the exact statement order of the
 * Python template so the two stay reviewable side by side. */

/* try_push: add-and-compare on the visited set, then LIFO push. */
#define TRY_PUSH(t2, f2)                                                   \
    do {                                                                   \
        int added = kset_add(&visited, ((uint64_t)(uint32_t)(f2) << 32) |  \
                                           (uint32_t)(t2),                 \
                             0);                                           \
        if (added < 0)                                                     \
            goto oom;                                                      \
        if (added && buf_push2(&lifo, (t2), (f2)) < 0)                     \
            goto oom;                                                      \
    } while (0)

/* Runs one DSPOINTSTO over the image.  *ptotal is the absolute step
 * mirror of budget.steps; limit < 0 means unlimited, depth_limit < 0
 * means no k-limit.  Emission-order facts land in out_objs /
 * out_bt+out_bf; *out_steps gets the run's own step count.  Returns
 * RK_OK / RK_ABORT / RK_ERR_OOM. */
static int ppta_core(RkGraph *g, int32_t start_t, int32_t f0, int64_t *ptotal,
                     int64_t limit, int32_t depth_limit, IntBuf *out_objs,
                     IntBuf *out_bt, IntBuf *out_bf, int64_t *out_steps) {
    const int32_t n = g->n;
    const int32_t *new_off = g->a[A_NEW_OFF], *new_val = g->a[A_NEW_VAL];
    const int32_t *as_off = g->a[A_AS_OFF], *as_val = g->a[A_AS_VAL];
    const int32_t *li_off = g->a[A_LI_OFF], *li_tok = g->a[A_LI_TOK],
                  *li_val = g->a[A_LI_VAL];
    const int32_t *at_off = g->a[A_AT_OFF], *at_val = g->a[A_AT_VAL];
    const int32_t *lf_off = g->a[A_LF_OFF], *lf_fid = g->a[A_LF_FID],
                  *lf_val = g->a[A_LF_VAL];
    const int32_t *si_off = g->a[A_SI_OFF], *si_fid = g->a[A_SI_FID],
                  *si_val = g->a[A_SI_VAL];
    const int32_t *sf_off = g->a[A_SF_OFF], *sf_tok = g->a[A_SF_TOK],
                  *sf_val = g->a[A_SF_VAL];
    const uint8_t *flags = g->flags;
    StackTable *fstacks = &g->fstacks;
    const int64_t steps_before = *ptotal;
    int64_t steps;
    int32_t si = start_t >> 2;
    int32_t state = start_t & 3;
    IntBuf lifo; /* interleaved (t, f) pairs; the prologue's pending list
                  * seeds it in push order, preserving LIFO discipline */
    KSet visited;
    int status = RK_OK;
    int32_t i, j;

    *out_steps = 0;
    buf_init(&lifo);
    visited.k1 = NULL;
    visited.k2 = NULL;

    if (limit >= 0 && steps_before >= limit) {
        *ptotal = steps_before + 1;
        return RK_ABORT;
    }

    /* --- single-expansion prologue (si == n: every row is empty) --- */
    if (si < n) {
        if (state == RK_S1) {
            if (new_off[si] != new_off[si + 1]) {
                if (f0 == 0) {
                    for (j = new_off[si]; j < new_off[si + 1]; j++)
                        if (buf_push(out_objs, new_val[j]) < 0)
                            goto oom;
                } else {
                    /* "new new-bar" turnaround */
                    if (buf_push2(&lifo, start_t + 1, f0) < 0)
                        goto oom;
                }
            }
            for (j = as_off[si]; j < as_off[si + 1]; j++) {
                int32_t t = as_val[j] * 4 + RK_S1;
                if (t == start_t)
                    continue; /* self-assign: equals the start state */
                if (buf_push2(&lifo, t, f0) < 0)
                    goto oom;
            }
            if (li_off[si] != li_off[si + 1]) {
                if (depth_limit >= 0 && fstacks->depth.data[f0] >= depth_limit) {
                    *ptotal = steps_before + 1;
                    status = RK_ABORT;
                    goto done_prologue_abort;
                }
                for (j = li_off[si]; j < li_off[si + 1]; j++) {
                    int32_t pushed = stacks_push(fstacks, f0, li_tok[j]);
                    if (pushed < 0)
                        goto oom;
                    if (buf_push2(&lifo, li_val[j] * 4 + RK_S1, pushed) < 0)
                        goto oom;
                }
            }
            if (flags[si] & RK_FLAG_GLOBAL_IN)
                if (buf_push(out_bt, start_t) < 0 || buf_push(out_bf, f0) < 0)
                    goto oom;
        } else {
            for (j = at_off[si]; j < at_off[si + 1]; j++) {
                int32_t t = at_val[j] * 4 + RK_S2;
                if (t == start_t)
                    continue; /* self-assign: equals the start state */
                if (buf_push2(&lifo, t, f0) < 0)
                    goto oom;
            }
            if (f0 != 0) {
                int32_t top = fstacks->value.data[f0];
                int32_t rest = fstacks->parent.data[f0];
                int32_t top_fid = g->tok_fid.data[top];
                for (j = lf_off[si]; j < lf_off[si + 1]; j++)
                    if (lf_fid[j] == top_fid)
                        if (buf_push2(&lifo, lf_val[j] * 4 + RK_S2, rest) < 0)
                            goto oom;
                if (g->tok_fam.data[top] == RK_FAM_LOAD)
                    for (j = si_off[si]; j < si_off[si + 1]; j++)
                        if (si_fid[j] == top_fid)
                            if (buf_push2(&lifo, si_val[j] * 4 + RK_S1, rest) < 0)
                                goto oom;
            }
            if (sf_off[si] != sf_off[si + 1]) {
                if (depth_limit >= 0 && fstacks->depth.data[f0] >= depth_limit) {
                    *ptotal = steps_before + 1;
                    status = RK_ABORT;
                    goto done_prologue_abort;
                }
                for (j = sf_off[si]; j < sf_off[si + 1]; j++) {
                    int32_t pushed = stacks_push(fstacks, f0, sf_tok[j]);
                    if (pushed < 0)
                        goto oom;
                    if (buf_push2(&lifo, sf_val[j] * 4 + RK_S1, pushed) < 0)
                        goto oom;
                }
            }
            if (flags[si] & RK_FLAG_GLOBAL_OUT)
                if (buf_push(out_bt, start_t) < 0 || buf_push(out_bf, f0) < 0)
                    goto oom;
        }
    }
    if (lifo.len == 0) {
        *ptotal = steps_before + 1;
        *out_steps = 1;
        buf_free(&lifo);
        return RK_OK;
    }

    /* --- general phase --- */
    if (kset_init(&visited, 256) < 0)
        goto oom;
    if (kset_add(&visited, ((uint64_t)(uint32_t)f0 << 32) | (uint32_t)start_t, 0) < 0)
        goto oom;
    for (i = 0; i < lifo.len; i += 2)
        if (kset_add(&visited,
                     ((uint64_t)(uint32_t)lifo.data[i + 1] << 32) |
                         (uint32_t)lifo.data[i],
                     0) < 0)
            goto oom;
    {
        const int64_t allowed = limit < 0 ? -1 : limit - steps_before;
        steps = 1; /* the prologue's start expansion */
        while (lifo.len) {
            int32_t f = lifo.data[--lifo.len];
            int32_t t = lifo.data[--lifo.len];
            int32_t vi = t >> 2;
            steps += 1;
            if (allowed >= 0 && steps > allowed) {
                status = RK_ABORT;
                break;
            }
            if (t & 1) { /* S1 — states are 1 and 2, bit 0 distinguishes */
                if (new_off[vi] != new_off[vi + 1]) {
                    if (f == 0) { /* empty stack: emit the objects */
                        for (j = new_off[vi]; j < new_off[vi + 1]; j++)
                            if (buf_push(out_objs, new_val[j]) < 0)
                                goto oom;
                    } else {
                        /* "new new-bar" turnaround (Algorithm 3 line 10) */
                        TRY_PUSH(t + 1, f);
                    }
                }
                for (j = as_off[vi]; j < as_off[vi + 1]; j++)
                    TRY_PUSH(as_val[j] * 4 + RK_S1, f);
                if (li_off[vi] != li_off[vi + 1]) {
                    if (depth_limit >= 0 &&
                        g->fstacks.depth.data[f] >= depth_limit) {
                        status = RK_ABORT;
                        break;
                    }
                    for (j = li_off[vi]; j < li_off[vi + 1]; j++) {
                        int32_t pushed = stacks_push(&g->fstacks, f, li_tok[j]);
                        if (pushed < 0)
                            goto oom;
                        TRY_PUSH(li_val[j] * 4 + RK_S1, pushed);
                    }
                }
                if (flags[vi] & RK_FLAG_GLOBAL_IN)
                    if (buf_push(out_bt, t) < 0 || buf_push(out_bf, f) < 0)
                        goto oom;
            } else {
                for (j = at_off[vi]; j < at_off[vi + 1]; j++)
                    TRY_PUSH(at_val[j] * 4 + RK_S2, f);
                if (f != 0) {
                    int32_t top = g->fstacks.value.data[f];
                    int32_t rest = g->fstacks.parent.data[f];
                    int32_t top_fid = g->tok_fid.data[top];
                    for (j = lf_off[vi]; j < lf_off[vi + 1]; j++)
                        if (lf_fid[j] == top_fid) /* forward load closes either family */
                            TRY_PUSH(lf_val[j] * 4 + RK_S2, rest);
                    if (g->tok_fam.data[top] == RK_FAM_LOAD)
                        for (j = si_off[vi]; j < si_off[vi + 1]; j++)
                            if (si_fid[j] == top_fid)
                                /* store-bar: only a pending backward load may
                                 * be closed here */
                                TRY_PUSH(si_val[j] * 4 + RK_S1, rest);
                }
                if (sf_off[vi] != sf_off[vi + 1]) {
                    /* tracked object stored into b.g — aliases of the base
                     * backward, with g pending */
                    if (depth_limit >= 0 &&
                        g->fstacks.depth.data[f] >= depth_limit) {
                        status = RK_ABORT;
                        break;
                    }
                    for (j = sf_off[vi]; j < sf_off[vi + 1]; j++) {
                        int32_t pushed = stacks_push(&g->fstacks, f, sf_tok[j]);
                        if (pushed < 0)
                            goto oom;
                        TRY_PUSH(sf_val[j] * 4 + RK_S1, pushed);
                    }
                }
                if (flags[vi] & RK_FLAG_GLOBAL_OUT)
                    if (buf_push(out_bt, t) < 0 || buf_push(out_bf, f) < 0)
                        goto oom;
            }
        }
        *ptotal = steps_before + steps;
        *out_steps = steps;
    }
    buf_free(&lifo);
    kset_free(&visited);
    return status;

done_prologue_abort:
    buf_free(&lifo);
    return status;

oom:
    buf_free(&lifo);
    kset_free(&visited);
    return RK_ERR_OOM;
}

/* Probe-or-compute against the session table.  On a computed summary,
 * boundaries with more than one entry are sorted into _boundary_order
 * before the commit (matching what the Python loops store).  Returns
 * the record number, or -1 with *pstatus set (RK_ABORT / RK_ERR_OOM).
 * *pnew is set to 1 when the summary was computed (a cache miss). */
static int32_t session_summarize(RkSession *s, int32_t t, int32_t f,
                                 int64_t *ptotal, int64_t limit,
                                 int32_t depth_limit, int *pstatus, int *pnew) {
    RkGraph *g = s->g;
    IntBuf objs, bt, bf;
    int64_t own_steps = 0;
    int status;
    int32_t rec;

    *pnew = 0;
    rec = kmap_get(&s->index, summary_key(t, f));
    if (rec >= 0)
        return rec;
    *pnew = 1;

    buf_init(&objs);
    buf_init(&bt);
    buf_init(&bf);
    status = ppta_core(g, t, f, ptotal, limit, depth_limit, &objs, &bt, &bf,
                       &own_steps);
    if (status != RK_OK) {
        /* budget/depth abort or OOM: the partial summary is discarded,
         * exactly as the Python loops do (the raise skips the insert). */
        buf_free(&objs);
        buf_free(&bt);
        buf_free(&bf);
        *pstatus = status;
        return -1;
    }
    if (bt.len > 1) {
        Boundary *tmp = (Boundary *)malloc((size_t)bt.len * sizeof(Boundary));
        int32_t i;
        if (!tmp) {
            buf_free(&objs);
            buf_free(&bt);
            buf_free(&bf);
            *pstatus = RK_ERR_OOM;
            return -1;
        }
        for (i = 0; i < bt.len; i++) {
            tmp[i].t = bt.data[i];
            tmp[i].f = bf.data[i];
        }
        g_sort_graph = g;
        qsort(tmp, (size_t)bt.len, sizeof(Boundary), cmp_boundary);
        for (i = 0; i < bt.len; i++) {
            bt.data[i] = tmp[i].t;
            bf.data[i] = tmp[i].f;
        }
        free(tmp);
    }
    rec = session_commit(s, t, f, own_steps, objs.data, objs.len, bt.data,
                         bf.data, bt.len);
    buf_free(&objs);
    buf_free(&bt);
    buf_free(&bf);
    if (rec < 0) {
        *pstatus = RK_ERR_OOM;
        return -1;
    }
    return rec;
}

/* ------------------------------------------------------------------ */
/* result structs (mirrored as ctypes.Structure in the binding)       */
/* ------------------------------------------------------------------ */
typedef struct {
    int32_t status;
    int32_t n_objects;
    int32_t n_boundaries;
    int32_t _pad;
    int64_t total; /* absolute value for budget.steps */
    int32_t *objects;
    int32_t *b_t;
    int32_t *b_f;
} RkPptaResult;

typedef struct {
    int32_t status;
    int32_t hits;
    int32_t misses;
    int32_t n_pairs;
    int32_t n_new; /* summary records created by this call */
    int32_t _pad;
    int64_t total; /* absolute value for budget.steps */
    int32_t *pair_obj;
    int32_t *pair_ctx;
    int32_t *new_t;       /* per new record: key state / key stack */
    int32_t *new_f;
    int64_t *new_steps;
    int32_t *new_obj_off; /* n_new + 1 offsets into new_obj */
    int32_t *new_obj;
    int32_t *new_b_off;   /* n_new + 1 offsets into new_b_t / new_b_f */
    int32_t *new_b_t;
    int32_t *new_b_f;
} RkDynResult;

static int32_t *steal_i32(IntBuf *b) {
    /* hand the buffer's storage to a result struct (freed by rk_*_free);
     * NULL stays NULL for empty buffers */
    int32_t *data = b->data;
    b->data = NULL;
    b->len = b->cap = 0;
    return data;
}

void rk_ppta_free(RkPptaResult *r) {
    if (!r)
        return;
    free(r->objects);
    free(r->b_t);
    free(r->b_f);
    free(r);
}

void rk_dyn_free(RkDynResult *r) {
    if (!r)
        return;
    free(r->pair_obj);
    free(r->pair_ctx);
    free(r->new_t);
    free(r->new_f);
    free(r->new_steps);
    free(r->new_obj_off);
    free(r->new_obj);
    free(r->new_b_off);
    free(r->new_b_t);
    free(r->new_b_f);
    free(r);
}

/* Standalone PPTA (the run_ppta("native") driver).  Facts come back in
 * emission order — the Python wrapper applies the same
 * sorted-if-more-than-one policy as _run_ppta_array. */
RkPptaResult *rk_ppta(RkGraph *g, int32_t start_t, int32_t f0,
                      int64_t steps_before, int64_t limit,
                      int32_t depth_limit) {
    RkPptaResult *r = (RkPptaResult *)calloc(1, sizeof(RkPptaResult));
    IntBuf objs, bt, bf;
    int64_t own_steps = 0;
    int64_t total = steps_before;
    int status;
    if (!r)
        return NULL;
    buf_init(&objs);
    buf_init(&bt);
    buf_init(&bf);
    status = ppta_core(g, start_t, f0, &total, limit, depth_limit, &objs, &bt,
                       &bf, &own_steps);
    r->status = status;
    r->total = total;
    r->n_objects = objs.len;
    r->n_boundaries = bt.len;
    r->objects = steal_i32(&objs);
    r->b_t = steal_i32(&bt);
    r->b_f = steal_i32(&bf);
    return r;
}

/* ------------------------------------------------------------------ */
/* DYNSUM — the C mirror of DynSum._explore_array                     */
/* ------------------------------------------------------------------ */
RkDynResult *rk_dynsum(RkSession *sess, int32_t t0, int32_t ctx0,
                       int64_t steps_before, int64_t limit,
                       int32_t depth_limit, int32_t track) {
    RkGraph *g = sess->g;
    const int32_t n = g->n;
    const int32_t *cb_off = g->a[A_CB_OFF], *cb_op = g->a[A_CB_OP],
                  *cb_site = g->a[A_CB_SITE], *cb_tgt = g->a[A_CB_TGT];
    const int32_t *cf_off = g->a[A_CF_OFF], *cf_op = g->a[A_CF_OP],
                  *cf_site = g->a[A_CF_SITE], *cf_tgt = g->a[A_CF_TGT];
    const uint8_t *flags = g->flags;
    StackTable *cstacks = &g->cstacks;
    const int32_t new_base = sess->rec_t.len;
    RkDynResult *r = (RkDynResult *)calloc(1, sizeof(RkDynResult));
    IntBuf fifo;       /* interleaved (t, f, ctx) triples */
    int32_t fifo_head = 0;
    KSet seen, pairset;
    IntBuf pair_obj, pair_ctx;
    int64_t total = steps_before;
    const int64_t ceiling = limit; /* < 0: unlimited */
    int status = RK_OK;
    int32_t hits = 0, misses = 0;
    int32_t j;

    if (!r)
        return NULL;
    buf_init(&fifo);
    buf_init(&pair_obj);
    buf_init(&pair_ctx);
    seen.k1 = NULL;
    seen.k2 = NULL;
    pairset.k1 = NULL;
    pairset.k2 = NULL;
    if (kset_init(&seen, 256) < 0 || kset_init(&pairset, 64) < 0)
        goto oom;
    if (kset_add(&seen, ((uint64_t)0 << 32) | (uint32_t)t0, (uint32_t)ctx0) < 0)
        goto oom;
    if (buf_push3(&fifo, t0, 0, ctx0) < 0) /* start stack is EMPTY (id 0) */
        goto oom;

    while (fifo_head < fifo.len) {
        int32_t t = fifo.data[fifo_head];
        int32_t f = fifo.data[fifo_head + 1];
        int32_t c = fifo.data[fifo_head + 2];
        int32_t s, ui, flag;
        int32_t rec = -1;
        int32_t b_lo = 0, b_hi = 0; /* boundary range in the session pools */
        int32_t triv_t = 0, triv_f = 0;
        int use_pools;
        fifo_head += 3;
        total += 1;
        if (ceiling >= 0 && total > ceiling) {
            status = RK_ABORT;
            break;
        }
        s = t & 3;
        ui = t >> 2;
        flag = flags[ui]; /* sentinel index n reads the zero byte */
        if (flag & RK_FLAG_LOCAL) {
            int is_new = 0;
            rec = session_summarize(sess, t, f, &total, limit, depth_limit,
                                    &status, &is_new);
            if (is_new)
                misses += 1;
            if (rec < 0) {
                if (status == RK_ERR_OOM)
                    goto oom;
                break; /* RK_ABORT: total already carries the ppta charge */
            }
            if (!is_new)
                hits += 1;
            /* objects -> pairs under the item's context */
            {
                int32_t o_lo = sess->rec_obj_off.data[rec];
                int32_t o_hi = sess->rec_obj_off.data[rec + 1];
                int32_t ctx = track ? c : 0;
                for (j = o_lo; j < o_hi; j++) {
                    int32_t obj = sess->obj_pool.data[j];
                    int added = kset_add(&pairset, (uint64_t)(uint32_t)obj,
                                         (uint32_t)ctx);
                    if (added < 0)
                        goto oom;
                    if (added && buf_push2(&pair_obj, obj, ctx) < 0)
                        goto oom;
                }
            }
            b_lo = sess->rec_b_off.data[rec];
            b_hi = sess->rec_b_off.data[rec + 1];
            if (b_lo == b_hi)
                continue;
            use_pools = 1;
        } else if (flag & s) { /* FLAG_GLOBAL_IN gates S1, _OUT gates S2 */
            /* Section 4.3: no local edges — the node is its own
             * (trivial) boundary */
            triv_t = t;
            triv_f = f;
            b_lo = 0;
            b_hi = 1;
            use_pools = 0;
        } else {
            continue;
        }
        for (; b_lo < b_hi; b_lo++) {
            int32_t bt = use_pools ? sess->b_t_pool.data[b_lo] : triv_t;
            int32_t bf = use_pools ? sess->b_f_pool.data[b_lo] : triv_f;
            int32_t s1 = bt & 3;
            int32_t xi = bt >> 2;
            int32_t lo, hi;
            const int32_t *r_op, *r_site, *r_tgt;
            int32_t pack_state;
            if (xi >= n)
                continue; /* sentinel: no crossing rows */
            if (s1 == RK_S1) {
                lo = cb_off[xi];
                hi = cb_off[xi + 1];
                r_op = cb_op;
                r_site = cb_site;
                r_tgt = cb_tgt;
                pack_state = RK_S1;
            } else {
                lo = cf_off[xi];
                hi = cf_off[xi + 1];
                r_op = cf_op;
                r_site = cf_site;
                r_tgt = cf_tgt;
                pack_state = RK_S2;
            }
            for (j = lo; j < hi; j++) {
                int32_t op = r_op[j];
                int32_t ctx;
                int32_t t1;
                if (op == RK_OP_PUSH) {
                    ctx = stacks_push(cstacks, c, r_site[j]);
                    if (ctx < 0)
                        goto oom;
                } else if (op == RK_OP_POP) {
                    if (c == 0)
                        ctx = c;
                    else if (cstacks->value.data[c] == r_site[j])
                        ctx = cstacks->parent.data[c];
                    else
                        continue; /* unrealizable */
                } else if (op == RK_OP_CLEAR) {
                    ctx = 0;
                } else { /* OP_PUSH_REC / OP_POP_REC: context unchanged */
                    ctx = c;
                }
                t1 = r_tgt[j] * 4 + pack_state;
                {
                    int added = kset_add(
                        &seen,
                        ((uint64_t)(uint32_t)bf << 32) | (uint32_t)t1,
                        (uint32_t)ctx);
                    if (added < 0)
                        goto oom;
                    if (added && buf_push3(&fifo, t1, bf, ctx) < 0)
                        goto oom;
                }
            }
        }
    }

    r->status = status;
    r->total = total;
    r->hits = hits;
    r->misses = misses;
    goto package;

oom:
    r->status = RK_ERR_OOM;
    r->total = total;
    r->hits = hits;
    r->misses = misses;

package:
    buf_free(&fifo);
    kset_free(&seen);
    kset_free(&pairset);
    if (r->status == RK_ERR_OOM) {
        buf_free(&pair_obj);
        buf_free(&pair_ctx);
        return r;
    }
    /* de-interleave the pairs */
    r->n_pairs = pair_obj.len / 2;
    if (r->n_pairs) {
        int32_t i;
        r->pair_obj = (int32_t *)malloc((size_t)r->n_pairs * sizeof(int32_t));
        r->pair_ctx = (int32_t *)malloc((size_t)r->n_pairs * sizeof(int32_t));
        if (!r->pair_obj || !r->pair_ctx) {
            r->status = RK_ERR_OOM;
            buf_free(&pair_obj);
            return r;
        }
        for (i = 0; i < r->n_pairs; i++) {
            r->pair_obj[i] = pair_obj.data[2 * i];
            r->pair_ctx[i] = pair_obj.data[2 * i + 1];
        }
    }
    buf_free(&pair_obj);
    buf_free(&pair_ctx);
    /* export the records this call created, in computation order */
    r->n_new = sess->rec_t.len - new_base;
    if (r->n_new) {
        int32_t i;
        int32_t obj_base = sess->rec_obj_off.data[new_base];
        int32_t b_base = sess->rec_b_off.data[new_base];
        int32_t n_obj = sess->obj_pool.len - obj_base;
        int32_t n_b = sess->b_t_pool.len - b_base;
        r->new_t = (int32_t *)malloc((size_t)r->n_new * sizeof(int32_t));
        r->new_f = (int32_t *)malloc((size_t)r->n_new * sizeof(int32_t));
        r->new_steps = (int64_t *)malloc((size_t)r->n_new * sizeof(int64_t));
        r->new_obj_off = (int32_t *)malloc(((size_t)r->n_new + 1) * sizeof(int32_t));
        r->new_b_off = (int32_t *)malloc(((size_t)r->n_new + 1) * sizeof(int32_t));
        r->new_obj = n_obj ? (int32_t *)malloc((size_t)n_obj * sizeof(int32_t)) : NULL;
        r->new_b_t = n_b ? (int32_t *)malloc((size_t)n_b * sizeof(int32_t)) : NULL;
        r->new_b_f = n_b ? (int32_t *)malloc((size_t)n_b * sizeof(int32_t)) : NULL;
        if (!r->new_t || !r->new_f || !r->new_steps || !r->new_obj_off ||
            !r->new_b_off || (n_obj && !r->new_obj) || (n_b && !r->new_b_t) ||
            (n_b && !r->new_b_f)) {
            r->status = RK_ERR_OOM;
            return r;
        }
        for (i = 0; i < r->n_new; i++) {
            r->new_t[i] = sess->rec_t.data[new_base + i];
            r->new_f[i] = sess->rec_f.data[new_base + i];
            r->new_steps[i] = sess->rec_steps.data[new_base + i];
            r->new_obj_off[i] = sess->rec_obj_off.data[new_base + i] - obj_base;
            r->new_b_off[i] = sess->rec_b_off.data[new_base + i] - b_base;
        }
        r->new_obj_off[r->n_new] = n_obj;
        r->new_b_off[r->n_new] = n_b;
        if (n_obj)
            memcpy(r->new_obj, sess->obj_pool.data + obj_base,
                   (size_t)n_obj * sizeof(int32_t));
        if (n_b) {
            memcpy(r->new_b_t, sess->b_t_pool.data + b_base,
                   (size_t)n_b * sizeof(int32_t));
            memcpy(r->new_b_f, sess->b_f_pool.data + b_base,
                   (size_t)n_b * sizeof(int32_t));
        }
    }
    return r;
}
