"""The native traversal kernel (``traversal_impl("native")``).

A small C kernel (``kernel.c``) runs the PPTA and DYNSUM inner loops
directly over the CSR image's dense ``int32`` arrays — bit-equal to
``run_ppta_reference`` in answers *and* step counts, gated by the
differential batteries in ``tests/test_ppta_fastpath.py`` and
``tests/test_native.py``.  When the kernel cannot load (no compiler,
ABI mismatch, ``REPRO_NATIVE=0``) the dispatch layer silently falls
back to the pure-Python ``array`` impl and engine stats report the
reason as ``native_unavailable``.
"""

from repro.native.binding import RK_ABI_VERSION, availability


def available():
    """Whether the native kernel can be loaded in this process."""
    return availability()[0]


def unavailable_reason():
    """Why the kernel cannot load, or ``None`` when it can."""
    return availability()[1]


__all__ = ["RK_ABI_VERSION", "availability", "available", "unavailable_reason"]
